"""Provenance for monotonic chase runs: which trigger created an atom,
and the full derivation tree behind it.

For monotonic derivations (oblivious, semi-oblivious, restricted,
frugal — every variant whose simplifications fix the pre-existing
terms), each atom of the final instance has a well-defined creation
step, and the body atoms its trigger matched are themselves final-
instance atoms.  That makes "why is this atom here?" answerable by a
simple recursive expansion — the classical *derivation tree* of Datalog
provenance, generalized to existential rules.

Non-monotonic (core-chase) runs rename atoms through retractions; their
provenance is not well-defined at the atom level, and
:class:`ProvenanceIndex` refuses them up front rather than answer
misleadingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..logic.atoms import Atom
from .derivation import Derivation

__all__ = ["ProvenanceIndex", "DerivationTree"]


@dataclass(frozen=True)
class DerivationTree:
    """One node of a derivation tree.

    ``rule_name`` is None for base facts.  ``premises`` are the trees of
    the body atoms the creating trigger matched.
    """

    atom: Atom
    rule_name: Optional[str]
    step: int
    premises: tuple["DerivationTree", ...] = ()

    @property
    def is_fact(self) -> bool:
        return self.rule_name is None

    def depth(self) -> int:
        """Height of the tree (facts have depth 0)."""
        if not self.premises:
            return 0
        return 1 + max(premise.depth() for premise in self.premises)

    def render(self, indent: int = 0) -> str:
        """A readable multi-line rendering."""
        label = "fact" if self.is_fact else f"{self.rule_name}@{self.step}"
        lines = [f"{'  ' * indent}{self.atom}  [{label}]"]
        for premise in self.premises:
            lines.append(premise.render(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class ProvenanceIndex:
    """Creation metadata for every atom of a monotonic derivation."""

    def __init__(self, derivation: Derivation):
        if not derivation.is_monotonic():
            raise ValueError(
                "provenance requires a monotonic derivation "
                "(core-chase retractions rename atoms away)"
            )
        self.derivation = derivation
        # atom -> (step index, rule name, matched body atoms)
        self._creators: dict[Atom, tuple[int, Optional[str], tuple[Atom, ...]]] = {}
        for at in derivation.instance(0):
            self._creators[at] = (0, None, ())
        for index in range(1, len(derivation)):
            step = derivation.steps[index]
            trigger = step.trigger
            assert trigger is not None
            body_image = tuple(
                sorted(
                    trigger.mapping.apply_atom(at)
                    for at in trigger.rule.body.sorted_atoms()
                )
            )
            previous = derivation.instance(index - 1)
            for at in step.instance:
                if at not in self._creators and at not in previous:
                    self._creators[at] = (index, trigger.rule.name, body_image)

    def creator(self, at: Atom) -> tuple[int, Optional[str]]:
        """The (step, rule name) that created *at* (rule None = fact)."""
        step, rule_name, _ = self._creators[at]
        return (step, rule_name)

    def created_at_step(self, index: int) -> frozenset[Atom]:
        """All atoms first created at the given step."""
        return frozenset(
            at for at, (step, _, _) in self._creators.items() if step == index
        )

    def explain(self, at: Atom, max_depth: int = 50) -> DerivationTree:
        """The derivation tree of *at* — each node a rule application,
        leaves the base facts.

        Premise steps are strictly decreasing toward the facts, so the
        recursion terminates; ``max_depth`` is a belt-and-braces guard.
        """
        if at not in self._creators:
            raise KeyError(f"{at} was never derived in this run")
        return self._explain(at, max_depth)

    def _explain(self, at: Atom, fuel: int) -> DerivationTree:
        step, rule_name, body = self._creators[at]
        if rule_name is None or fuel <= 0:
            return DerivationTree(at, rule_name, step)
        premises = tuple(
            self._explain(premise, fuel - 1) for premise in body
        )
        return DerivationTree(at, rule_name, step, premises)

    def __len__(self) -> int:
        return len(self._creators)

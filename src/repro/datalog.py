"""Semi-naive Datalog evaluation.

Existential-free rules (Datalog) are the degenerate case of the chase:
every variant terminates and computes the same minimal model.  This
module provides a dedicated fixpoint evaluator with the classical
*semi-naive* optimization — each round only joins rule bodies against
tuples derived in the previous round — which is both a useful substrate
in its own right and an **independent oracle** for the chase engine on
Datalog workloads (see ``tests/test_datalog.py``: the chase and the
fixpoint must agree atom-for-atom).
"""

from __future__ import annotations

from typing import Iterable, Union

from .logic.atomset import AtomSet
from .logic.homomorphism import homomorphisms
from .logic.rules import ExistentialRule, RuleSet

__all__ = ["DatalogProgram", "naive_fixpoint", "seminaive_fixpoint"]


class DatalogProgram:
    """A rule set guaranteed existential-free."""

    __slots__ = ("rules",)

    def __init__(self, rules: Union[RuleSet, Iterable[ExistentialRule]]):
        rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
        for rule in rule_set:
            if rule.has_existential():
                raise ValueError(
                    f"rule {rule.name} has existential variables; "
                    "use the chase for existential rules"
                )
        object.__setattr__(self, "rules", rule_set)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("DatalogProgram is immutable")

    def __len__(self) -> int:
        return len(self.rules)


def naive_fixpoint(program: DatalogProgram, facts: AtomSet) -> AtomSet:
    """The naive bottom-up fixpoint: re-derive everything each round
    until nothing new appears.  Quadratic rounds; kept as the reference
    implementation."""
    instance = facts.copy()
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            for hom in homomorphisms(rule.body, instance):
                for head_atom in rule.head:
                    derived = hom.apply_atom(head_atom)
                    if instance.add(derived):
                        changed = True
    return instance


def seminaive_fixpoint(program: DatalogProgram, facts: AtomSet) -> AtomSet:
    """The semi-naive fixpoint: per round, only consider body matches
    that use at least one atom derived in the previous round.

    Implemented by the standard delta expansion: for each rule and each
    body-atom position, join that atom against the delta and the rest
    against the full instance.  Correctness: every new derivation must
    use some new atom, so it is found through the position holding it.
    """
    instance = facts.copy()
    delta = facts.copy()
    while delta:
        new_delta = AtomSet()
        for rule in program.rules:
            body_atoms = rule.body.sorted_atoms()
            for position, pivot in enumerate(body_atoms):
                # pivot must match inside delta: enumerate its matches
                # there, then complete the rest of the body over the
                # whole instance with the partial assignment pinned.
                for pivot_hom in homomorphisms([pivot], delta):
                    rest = [at for index, at in enumerate(body_atoms) if index != position]
                    for hom in homomorphisms(rest, instance, partial=pivot_hom):
                        combined = pivot_hom.merge(hom)
                        for head_atom in rule.head:
                            derived = combined.apply_atom(head_atom)
                            if derived not in instance:
                                new_delta.add(derived)
        instance.update(new_delta)
        delta = new_delta
    return instance

"""E1 — Figure 1: the Venn diagram of decidable classes, as a verdict
matrix over the four protagonist KBs.

Per KB, the bench establishes:

* **fes** — does the core chase terminate within budget (exact
  certificate: the core chase terminates iff a finite universal model
  exists)?
* **tw-bounded rc** (bts evidence) — the uniform treewidth bound of the
  measured restricted-chase prefix, *strengthened* for the two paper KBs
  by grid lower bounds inside the closed-form restricted-chase limits
  (``I^h`` / ``I^v``): a 4×4 grid in the limit refutes any bound ≤ 3 for
  every fair restricted sequence (Propositions 3/5 and 6).
* **tw-bounded cc** (core-bts evidence) — the uniform treewidth bound of
  the measured core-chase prefix (for K_v the series grows past the
  bound within budget; for K_h it provably never does).
* **tw-finite universal model** — from the paper's constructions
  (``I^v_*`` has treewidth 1; Prop. 5 rules any such model out for K_h).

Expected shape — exactly the paper's Figure 1:

=================  ====  ====  ========  ==========================
KB                 fes   bts   core-bts  tw-finite universal model
=================  ====  ====  ========  ==========================
bts-not-fes        no    yes   yes       yes
fes-not-bts        yes   no    yes       yes (finite)
steepening K_h     no    no    **yes**   **no**
inflating K_v      no    no    **no**    **yes**
=================  ====  ====  ========  ==========================
"""

from repro.analysis import TREEWIDTH, certify_fes, profile_chase
from repro.chase.engine import ChaseVariant
from repro.kbs import elevator as el
from repro.kbs import staircase as sc
from repro.kbs.witnesses import bts_not_fes_kb, fes_not_bts_kb
from repro.treewidth import grid_from_coordinates, treewidth
from repro.util import Table

from conftest import save_table

BOUND = 2  # the paper's uniform bounds are 1 (chain/elevator) and 2 (staircase)


def staircase_rc_lower_bound() -> int:
    """Grid lower bound inside I^h — the restricted-chase limit of K_h
    (Prop. 3), witnessing unbounded treewidth (Prop. 5)."""
    window = sc.universal_model_window(9)
    coords = sc.coordinates(window)
    best = 0
    for n in (2, 3, 4):
        if grid_from_coordinates(window, coords, n, origin=(n + 1, 0)):
            best = n
    return best


def elevator_rc_lower_bound() -> int:
    """Grid lower bound inside I^v — the restricted-chase limit of K_v
    (Prop. 6): consecutive columns overlap in ever more rows."""
    window = el.universal_model_window(9)
    coords = el.coordinates(window)
    best = 0
    for n in (2, 3, 4):
        if grid_from_coordinates(window, coords, n, origin=(n + 2, n + 3)):
            best = n
    return best


CASES = [
    # (factory, rc steps, cc steps, rc-limit lower bound fn, tw-finite
    #  universal model?, expected (fes, bts, core-bts))
    (bts_not_fes_kb, 12, 12, None, True, (False, True, True)),
    (fes_not_bts_kb, 22, 100, None, True, (True, False, True)),
    (staircase_kb := sc.staircase_kb, 20, 40, staircase_rc_lower_bound, False, (False, False, True)),
    (el.elevator_kb, 20, 35, elevator_rc_lower_bound, True, (False, False, False)),
]


def classify_all() -> list[tuple]:
    rows = []
    for factory, rc_budget, cc_budget, rc_limit_fn, has_model, expected in CASES:
        kb = factory()
        fes = certify_fes(kb, max_steps=cc_budget) is not None
        rc_profile = profile_chase(
            kb,
            variant=ChaseVariant.RESTRICTED,
            measure=TREEWIDTH,
            max_steps=rc_budget,
        )
        cc_profile = profile_chase(
            kb, variant=ChaseVariant.CORE, measure=TREEWIDTH, max_steps=cc_budget
        )
        rc_width = rc_profile.uniform
        if rc_limit_fn is not None:
            rc_width = max(rc_width, rc_limit_fn())
        # Any *finite* (terminating) sequence is trivially uniformly
        # bounded — Prop. 13's subsumption argument — so fes implies
        # bounded-cc regardless of the numeric bound.
        cc_bounded = cc_profile.terminated or cc_profile.uniform <= BOUND
        rows.append(
            (kb.name, fes, rc_width <= BOUND, rc_width, cc_bounded,
             cc_profile.uniform, has_model, expected)
        )
    return rows


def bench_fig1_class_landscape(benchmark):
    rows = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    table = Table(
        [
            "KB",
            "fes",
            "tw-bounded rc (bts)",
            "rc width evidence",
            "tw-bounded cc (core-bts)",
            "cc width evidence",
            "tw-finite univ model",
        ],
        title="Figure 1 — class landscape over the witness KBs",
    )
    for name, fes, rc_b, rc_w, cc_b, cc_w, has_model, expected in rows:
        table.add_row(name, fes, rc_b, rc_w, cc_b, cc_w, has_model)
        assert (fes, rc_b, cc_b) == expected, name
    extra = (
        "shape checks (all hold): K_h is core-bts yet has no tw-finite\n"
        "universal model; K_v has one (tw(I^v_*) = %d) yet is not core-bts;\n"
        "fes and bts are incomparable; core-bts covers both."
        % treewidth(el.diagonal_model(4))
    )
    save_table("fig1_class_landscape", table, extra)

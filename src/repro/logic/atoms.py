"""Predicates and atoms.

An *atom* over a schema ``S`` is an expression ``p(t_1, ..., t_k)`` with
``p ∈ S`` of arity ``k`` and the ``t_i`` terms (Section 2 of the paper).
Atoms are immutable and hashable so that an instance can be a genuine set
of atoms; this is the representation the whole chase machinery relies on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

from .terms import Constant, Term, Variable, is_variable

__all__ = ["Predicate", "Atom", "atom", "make_term"]


class Predicate:
    """A relation symbol with a fixed arity.

    Two predicates are equal iff they share name *and* arity; a schema in
    which the same name appears with two arities is thereby rejected at
    the earliest possible point (atoms built from the clashing predicates
    never compare equal).
    """

    __slots__ = ("name", "arity")

    def __init__(self, name: str, arity: int):
        if not isinstance(name, str) or not name:
            raise ValueError(f"predicate name must be a non-empty string, got {name!r}")
        if not isinstance(arity, int) or arity < 0:
            raise ValueError(f"predicate arity must be a non-negative int, got {arity!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arity", arity)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Predicate is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and other.name == self.name
            and other.arity == self.arity
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((self.name, self.arity))

    def __lt__(self, other: "Predicate") -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return (self.name, self.arity) < (other.name, other.arity)

    def __repr__(self) -> str:
        return f"Predicate({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __call__(self, *args: Union[Term, str]) -> "Atom":
        """Build an atom over this predicate: ``p(x, y)``."""
        return Atom(self, tuple(make_term(a) for a in args))


def make_term(value: Union[Term, str]) -> Term:
    """Coerce *value* to a term.

    Strings follow the classical logic-programming convention: names whose
    first character is an uppercase letter or an underscore denote
    variables, everything else denotes constants.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value:
        first = value[0]
        if first.isupper() or first == "_":
            return Variable(value)
        return Constant(value)
    raise TypeError(f"cannot interpret {value!r} as a term")


class Atom:
    """An immutable atom ``p(t_1, ..., t_k)``."""

    __slots__ = ("predicate", "args", "_hash", "_key", "_enc")

    predicate: Predicate
    args: tuple[Term, ...]

    def __init__(self, predicate: Predicate, args: Sequence[Term]):
        args = tuple(args)
        if len(args) != predicate.arity:
            raise ValueError(
                f"predicate {predicate} expects {predicate.arity} arguments, "
                f"got {len(args)}: {args!r}"
            )
        for position, term in enumerate(args):
            if not isinstance(term, Term):
                raise TypeError(
                    f"argument {position} of {predicate} is not a Term: {term!r}"
                )
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((predicate, args)))
        object.__setattr__(self, "_key", None)
        object.__setattr__(self, "_enc", None)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Atom is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other._hash == self._hash
            and other.predicate == self.predicate
            and other.args == self.args
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Atom") -> bool:
        """A deterministic (arbitrary) total order used to stabilize
        iteration orders in the chase engine and in tests."""
        if not isinstance(other, Atom):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """Key for the deterministic atom order.

        Computed once and cached on the (immutable) atom: candidate-pool
        ordering in the homomorphism search sorts the same atoms over and
        over, and this key used to dominate whole core-chase profiles.
        """
        key = self._key
        if key is None:
            key = (
                self.predicate.name,
                self.predicate.arity,
                tuple((is_variable(t), t.name) for t in self.args),
            )
            object.__setattr__(self, "_key", key)
        return key

    def terms(self) -> Iterator[Term]:
        """Iterate over the argument terms (with repetitions)."""
        return iter(self.args)

    def term_set(self) -> frozenset[Term]:
        """The set ``terms(at)`` of distinct terms occurring in the atom."""
        return frozenset(self.args)

    def variables(self) -> frozenset[Variable]:
        """The set of variables occurring in the atom."""
        return frozenset(t for t in self.args if isinstance(t, Variable))

    def constants(self) -> frozenset[Constant]:
        """The set of constants occurring in the atom."""
        return frozenset(t for t in self.args if isinstance(t, Constant))

    def is_ground(self) -> bool:
        """True iff the atom mentions no variable."""
        return not any(isinstance(t, Variable) for t in self.args)

    def __repr__(self) -> str:
        return f"Atom({self!s})"

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate.name}({inner})"


def atom(predicate_name: str, *args: Union[Term, str]) -> Atom:
    """Convenience constructor: ``atom("p", "X", "a")`` builds ``p(X, a)``
    with the string-to-term convention of :func:`make_term` (leading
    uppercase/underscore means variable).
    """
    terms = tuple(make_term(a) for a in args)
    return Atom(Predicate(predicate_name, len(terms)), terms)


def atoms_terms(atoms: Iterable[Atom]) -> set[Term]:
    """The set of terms occurring in a collection of atoms."""
    result: set[Term] = set()
    for at in atoms:
        result.update(at.args)
    return result

"""Chase machinery: triggers, derivations (Definition 1), the four chase
variants, and the natural/robust aggregations (Sections 3 and 8)."""

from .aggregation import RobustSequence, default_variable_key, robust_aggregation
from .derivation import Derivation, DerivationStep
from .provenance import DerivationTree, ProvenanceIndex
from .egds import (
    EGD,
    ChaseFailure,
    EgdChaseResult,
    parse_egd,
    parse_egds,
    standard_chase,
)
from .engine import ChaseEngine, ChaseResult, ChaseVariant, run_chase
from .trigger import Trigger, apply_trigger, triggers, unsatisfied_triggers
from .variants import (
    core_chase,
    frugal_chase,
    oblivious_chase,
    restricted_chase,
    semi_oblivious_chase,
)

__all__ = [
    "ChaseEngine",
    "ChaseFailure",
    "EGD",
    "EgdChaseResult",
    "parse_egd",
    "parse_egds",
    "standard_chase",
    "ChaseResult",
    "ChaseVariant",
    "Derivation",
    "DerivationStep",
    "DerivationTree",
    "ProvenanceIndex",
    "RobustSequence",
    "Trigger",
    "apply_trigger",
    "core_chase",
    "default_variable_key",
    "frugal_chase",
    "oblivious_chase",
    "restricted_chase",
    "robust_aggregation",
    "run_chase",
    "semi_oblivious_chase",
    "triggers",
    "unsatisfied_triggers",
]

"""A content-addressed store of resumable chase checkpoints.

The serving system's warm-start path: after answering a job the worker
exports the engine's :class:`~repro.chase.engine.ChaseState` and files
it here; the next job over the same KB (and chase configuration)
restores it and resumes instead of re-chasing from the facts.  Because
:meth:`~repro.chase.engine.ChaseEngine.restore_state` continues the
derivation *exactly*, answers computed from a snapshot are
indistinguishable from cold ones (the differential suite in
``tests/test_service_snapshots.py`` checks this on every KB family).

Keys and invalidation
---------------------
A snapshot is valid only for the precise KB it was exported under, so
the key bakes in everything that shapes the derivation:

``key = sha256(schema | variant | core_every | kb_fingerprint)``

where :func:`kb_fingerprint` hashes the canonical text of the facts
(sorted atoms) and rules.  Editing a fact or a rule changes the
fingerprint, which changes the key — stale snapshots are never *read*,
they are simply orphaned (and overwritten only by their own
configuration).  A schema-version bump orphans every older snapshot the
same way.  Corrupt or torn files are discarded on load and reported via
the :meth:`~repro.obs.Observer.snapshot_access` telemetry event.

Storage format
--------------
One JSON file per key under the store root: a small envelope
(``schema``, ``kb_fingerprint`` for a defense-in-depth recheck) around
the tagged-object serialization of the state
(:mod:`repro.logic.serialization` — the text DSL cannot express
engine-invented nulls, the tagged form can).  Writes go through a
temp-file + :func:`os.replace` so readers never observe a half-written
snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Optional, Union

from ..chase.engine import ChaseState
from ..logic.kb import KnowledgeBase
from ..logic.serialization import (
    atom_from_obj,
    atom_to_obj,
    dump_instance,
    dump_ruleset,
    instance_from_obj,
    instance_to_obj,
    term_from_obj,
    term_to_obj,
)
from ..obs import observer as _observer_state

__all__ = [
    "SNAPSHOT_SCHEMA",
    "kb_fingerprint",
    "snapshot_key",
    "chase_state_to_obj",
    "chase_state_from_obj",
    "SnapshotStore",
]

#: Bump when the on-disk layout changes; old snapshots are then orphaned
#: (never mis-read) because the schema participates in the key.
SNAPSHOT_SCHEMA = 1

PathLike = Union[str, pathlib.Path]


def kb_fingerprint(kb: KnowledgeBase) -> str:
    """A canonical content hash of *kb* (facts + rules, order-free).

    The fingerprint is over the deterministic text serialization —
    sorted atoms, rules in declaration order — so two KBs with the same
    facts and rules hash identically however they were constructed.
    The KB's display ``name`` deliberately does not participate.
    """
    text = dump_instance(kb.facts) + "\n" + dump_ruleset(kb.rules)
    return hashlib.sha256(text.encode()).hexdigest()


def snapshot_key(kb: KnowledgeBase, variant: str, core_every: int = 1) -> str:
    """The store key for chasing *kb* with *variant* / *core_every*."""
    tag = f"{SNAPSHOT_SCHEMA}|{variant}|{core_every}|{kb_fingerprint(kb)}"
    return hashlib.sha256(tag.encode()).hexdigest()


# ---------------------------------------------------------------------------
# ChaseState <-> JSON objects
# ---------------------------------------------------------------------------


def _trigger_key_to_obj(key) -> list:
    rule_name, image = key
    return [rule_name, [[var.name, term_to_obj(term)] for var, term in image]]


def _trigger_key_from_obj(obj):
    from ..logic.terms import Variable

    rule_name, image = obj
    return (
        rule_name,
        tuple((Variable(name), term_from_obj(term)) for name, term in image),
    )


def chase_state_to_obj(state: ChaseState) -> dict:
    """Serialize a :class:`ChaseState` as a JSON-ready dict.

    Trigger keys (``applied_keys`` entries and ``ages`` keys) are
    ``(rule_name, ((Variable, Term), ...))`` tuples; they serialize
    through the tagged term objects and are emitted in sorted order so
    the output is deterministic."""
    applied = sorted(map(_trigger_key_to_obj, state.applied_keys))
    ages = sorted(
        [_trigger_key_to_obj(key), age] for key, age in state.ages.items()
    )
    return {
        "variant": state.variant,
        "core_every": state.core_every,
        "fresh_prefix": state.fresh_prefix,
        "fresh_count": state.fresh_count,
        "instance": instance_to_obj(state.instance),
        "applied_keys": applied,
        "ages": ages,
        "terminated": state.terminated,
        "applications": state.applications,
        "applications_since_core": state.applications_since_core,
        "delta_since_core": [atom_to_obj(at) for at in state.delta_since_core],
    }


def chase_state_from_obj(obj: dict) -> ChaseState:
    """Parse a state serialized by :func:`chase_state_to_obj`."""
    return ChaseState(
        variant=obj["variant"],
        core_every=obj["core_every"],
        fresh_prefix=obj["fresh_prefix"],
        fresh_count=obj["fresh_count"],
        instance=instance_from_obj(obj["instance"]),
        applied_keys={
            _trigger_key_from_obj(item) for item in obj["applied_keys"]
        },
        ages={
            _trigger_key_from_obj(key): age for key, age in obj["ages"]
        },
        terminated=obj["terminated"],
        applications=obj["applications"],
        applications_since_core=obj["applications_since_core"],
        delta_since_core=[
            atom_from_obj(item) for item in obj["delta_since_core"]
        ],
    )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class SnapshotStore:
    """Filesystem store of chase snapshots, one JSON file per key.

    Safe for concurrent use by multiple worker processes: writes are
    atomic replacements, loads treat anything unreadable as a miss (the
    offending file is discarded), and two workers racing to save the
    same key simply leave whichever finished last — both states are
    valid checkpoints of the same deterministic derivation.
    """

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # -- save ----------------------------------------------------------

    def save(self, kb: KnowledgeBase, state: ChaseState) -> pathlib.Path:
        """File *state* under the key for (*kb*, its chase config)."""
        started = time.perf_counter()
        key = snapshot_key(kb, state.variant, state.core_every)
        payload = {
            "schema": SNAPSHOT_SCHEMA,
            "kb_fingerprint": kb_fingerprint(kb),
            "state": chase_state_to_obj(state),
        }
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            dir=self.root,
            prefix=f".{key[:16]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        observer = _observer_state.current
        if observer is not None:
            observer.snapshot_access(
                op="save",
                hit=True,
                atoms=len(state.instance),
                seconds=time.perf_counter() - started,
            )
        return path

    # -- load ----------------------------------------------------------

    def load(
        self, kb: KnowledgeBase, variant: str, core_every: int = 1
    ) -> Optional[ChaseState]:
        """The stored state for (*kb*, *variant*, *core_every*), or None.

        Misses, schema/fingerprint mismatches, and unparseable files all
        come back as None; corrupt files are deleted so they are paid
        for only once."""
        started = time.perf_counter()
        key = snapshot_key(kb, variant, core_every)
        path = self.path_for(key)
        state: Optional[ChaseState] = None
        corrupt = False
        try:
            text = path.read_text()
        except OSError:
            text = None
        if text is not None:
            try:
                payload = json.loads(text)
                if payload["schema"] != SNAPSHOT_SCHEMA:
                    raise ValueError("snapshot schema mismatch")
                if payload["kb_fingerprint"] != kb_fingerprint(kb):
                    raise ValueError("snapshot fingerprint mismatch")
                state = chase_state_from_obj(payload["state"])
                if state.variant != variant or state.core_every != core_every:
                    raise ValueError("snapshot config mismatch")
            except (ValueError, KeyError, TypeError, IndexError):
                corrupt = True
                state = None
                try:
                    path.unlink()
                except OSError:
                    pass
        observer = _observer_state.current
        if observer is not None:
            observer.snapshot_access(
                op="load",
                hit=state is not None,
                corrupt=corrupt,
                atoms=len(state.instance) if state is not None else 0,
                seconds=time.perf_counter() - started,
            )
        return state

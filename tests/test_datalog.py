"""Tests for the Datalog fixpoint evaluator, including cross-validation
against the chase engine (two independent implementations must agree)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase import restricted_chase
from repro.datalog import DatalogProgram, naive_fixpoint, seminaive_fixpoint
from repro.kbs.witnesses import transitive_closure_kb
from repro.logic.atoms import atom
from repro.logic.atomset import AtomSet
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atoms, parse_rules
from repro.logic.terms import Constant


class TestProgramValidation:
    def test_existential_rules_rejected(self):
        with pytest.raises(ValueError):
            DatalogProgram(parse_rules("[R] p(X) -> q(X, Y)"))

    def test_datalog_accepted(self):
        program = DatalogProgram(parse_rules("[R] p(X, Y) -> q(Y, X)"))
        assert len(program) == 1


class TestFixpoints:
    def test_transitive_closure(self):
        program = DatalogProgram(parse_rules("[T] e(X, Y), e(Y, Z) -> e(X, Z)"))
        facts = parse_atoms("e(a, b), e(b, c), e(c, d)")
        result = seminaive_fixpoint(program, facts)
        assert len(result) == 6
        assert atom("e", "a", "d") in result

    def test_naive_and_seminaive_agree(self):
        program = DatalogProgram(
            parse_rules(
                """
                [T] e(X, Y), e(Y, Z) -> e(X, Z)
                [Sym] e(X, Y) -> u(X, Y), u(Y, X)
                [Reach] u(X, Y) -> reach(Y)
                """
            )
        )
        facts = parse_atoms("e(a, b), e(b, c)")
        assert naive_fixpoint(program, facts) == seminaive_fixpoint(program, facts)

    def test_facts_not_mutated(self):
        program = DatalogProgram(parse_rules("[R] p(X) -> q(X)"))
        facts = parse_atoms("p(a)")
        seminaive_fixpoint(program, facts)
        assert facts == parse_atoms("p(a)")

    def test_no_applicable_rules(self):
        program = DatalogProgram(parse_rules("[R] z(X) -> w(X)"))
        facts = parse_atoms("p(a)")
        assert seminaive_fixpoint(program, facts) == facts

    def test_multi_round_propagation(self):
        program = DatalogProgram(
            parse_rules("[Step] succ(X, Y), even(X) -> odd(Y)\n[Back] succ(X, Y), odd(X) -> even(Y)")
        )
        facts = parse_atoms("succ(n0, n1), succ(n1, n2), succ(n2, n3), even(n0)")
        result = seminaive_fixpoint(program, facts)
        assert atom("odd", "n1") in result
        assert atom("even", "n2") in result
        assert atom("odd", "n3") in result


class TestCrossValidationWithChase:
    def test_agrees_with_chase_on_closure(self):
        kb = transitive_closure_kb(4)
        chase = restricted_chase(kb, max_steps=500)
        assert chase.terminated
        fixpoint = seminaive_fixpoint(DatalogProgram(kb.rules), kb.facts)
        assert fixpoint == chase.final_instance

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([Constant(c) for c in "abcd"]),
                st.sampled_from([Constant(c) for c in "abcd"]),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_random_graphs_agree(self, edges):
        facts = AtomSet(atom("e", u, v) for u, v in edges)
        rules = parse_rules(
            """
            [T] e(X, Y), e(Y, Z) -> e(X, Z)
            [Mark] e(X, X) -> cyclic(X)
            """
        )
        kb = KnowledgeBase(facts, rules)
        chase = restricted_chase(kb, max_steps=500)
        assert chase.terminated
        fixpoint = seminaive_fixpoint(DatalogProgram(rules), facts)
        assert fixpoint == chase.final_instance

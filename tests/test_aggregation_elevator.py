"""Robust aggregation on the *elevator* core chase — the complementary
case to the staircase: K_v's core chase is NOT treewidth-bounded, so
Proposition 12's bound transfer does not apply, but Propositions 10–11
still do: the robust sequence stays isomorphic to the chase, variables
stabilize, and the stable part is finitely universal."""

import pytest

from repro.chase import RobustSequence
from repro.kbs import elevator as el
from repro.logic.homomorphism import maps_into
from repro.logic.isomorphism import isomorphic


@pytest.fixture(scope="module")
def robust(elevator_core_run):
    return RobustSequence(elevator_core_run.derivation)


class TestRobustSequenceOnElevator:
    def test_g_isomorphic_to_f(self, robust, elevator_core_run):
        last = len(robust) - 1
        for index in (0, last // 2, last):
            assert isomorphic(
                robust.instances[index],
                elevator_core_run.derivation.instance(index),
            ), index

    def test_tau_chains_compose(self, robust):
        last = len(robust) - 1
        composed = robust.tau_between(0, last)
        assert composed.is_homomorphism(
            robust.instances[0], robust.instances[last]
        )

    def test_stability_grows(self, robust):
        report = robust.stabilization_report()
        assert report["terms_stable_half_run"] >= 1

    def test_stable_part_maps_into_capped_model(self, robust):
        """Finite universality (Prop. 11): the stable part must map into
        every finite model of K_v, capped windows included."""
        stable = robust.stable_part(patience=len(robust) // 2)
        assert maps_into(stable, el.capped_model(4))

    def test_stable_part_contains_the_start(self, robust):
        """The original facts' images stabilize early: some d/c atoms
        are present from the first steps on."""
        stable = robust.stable_part(patience=len(robust) // 2)
        names = {at.predicate.name for at in stable}
        assert "c" in names or "d" in names


class TestNaturalAggregationUniversality:
    def test_prefix_universal_for_kv(self, elevator_core_run):
        """Proposition 1(1) on the prefix: D* maps into every model."""
        aggregation = elevator_core_run.derivation.natural_aggregation()
        assert maps_into(aggregation, el.capped_model(5))

    def test_prefix_not_a_model(self, elevator_core_run, elevator_kb_fixture):
        """Proposition 1's caveat for non-monotonic chases: D* need not
        be (and here, mid-construction, is not) a model."""
        aggregation = elevator_core_run.derivation.natural_aggregation()
        assert not elevator_kb_fixture.is_model(aggregation)

"""Property-based tests (hypothesis) for the analyzer and planner over
randomly generated rulesets.

Two invariant families:

* **Monotonicity under rule deletion** — every syntactic class the
  analyzer detects (guardedness, linearity, stickiness, weak
  acyclicity) is closed under taking subsets of the ruleset, so a class
  that holds for the full set must hold after deleting any single rule.
* **Probe/planner determinism** — the breadth probe's fixpoint level is
  stable when the level cap grows past it, and the planner is a pure
  function of the ruleset fingerprint: equal fingerprints always route
  to the identical strategy.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Planner,
    is_guarded,
    is_linear,
    is_sticky,
    is_weakly_acyclic,
    plan,
    probe_k_bound,
    ruleset_fingerprint,
)
from repro.kbs.generators import random_kb
from repro.logic.kb import KnowledgeBase
from repro.logic.rules import RuleSet

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

kb_seeds = st.integers(min_value=0, max_value=400)


def generated_kb(seed: int) -> KnowledgeBase:
    return random_kb(rule_count=4, fact_count=6, seed=seed)


def without_rule(kb: KnowledgeBase, index: int) -> RuleSet:
    rules = list(kb.rules)
    del rules[index % len(rules)]
    return RuleSet(rules)


MONOTONE_CLASSES = (is_guarded, is_linear, is_sticky, is_weakly_acyclic)


@SETTINGS
@given(seed=kb_seeds, index=st.integers(min_value=0, max_value=3))
def test_classes_preserved_under_rule_deletion(seed, index):
    kb = generated_kb(seed)
    smaller = without_rule(kb, index)
    for criterion in MONOTONE_CLASSES:
        if criterion(kb.rules):
            assert criterion(smaller), (
                f"{criterion.__name__} lost by deleting rule {index}"
            )


@SETTINGS
@given(seed=kb_seeds, k_extra=st.integers(min_value=1, max_value=6))
def test_k_bound_verdict_monotone_in_k(seed, k_extra):
    kb = generated_kb(seed)
    small = probe_k_bound(kb, k_max=3, atom_budget=400)
    if small.fixpoint_level is None:
        return  # nothing certified; a larger cap may or may not settle it
    large = probe_k_bound(kb, k_max=3 + k_extra, atom_budget=400)
    assert large.fixpoint_level == small.fixpoint_level


@SETTINGS
@given(seed=kb_seeds)
def test_planner_is_deterministic_per_fingerprint(seed):
    kb = generated_kb(seed)
    twin = KnowledgeBase(kb.facts, kb.rules, name="renamed-twin")
    assert ruleset_fingerprint(kb.rules) == ruleset_fingerprint(twin.rules)
    options = dict(fes_budget=10, k_max=3, k_atom_budget=300)
    first = Planner(**options).decide(kb)
    second = Planner(**options).decide(twin)
    assert first[0] == second[0]  # verdict
    assert first[1] == second[1]  # strategy
    # plan() itself is pure: replanning the cached verdict changes nothing
    assert plan(first[0]) == first[1]

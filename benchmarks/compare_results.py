"""Perf-regression gate: diff benchmark result tables against baselines.

Compares the machine-readable tables archived by the perf benches
(``benchmarks/results/<name>.json``) against committed reference tables
(``benchmarks/baselines/<name>.json``) and **fails** — exit code 1 —
when any row's metric regressed beyond the threshold (default: 2x
slower).  Rows are matched on their non-float fields (workload,
variant, step budget, iteration count, ...), so a behavioural drift
that changes an application count also fails the gate, loudly — and
when the only difference from the baseline row is in the count fields
(``applications``, ``retractions``, ``atoms_out``), the failure is
reported as **semantic drift** rather than a missing row: the engine
changed *what it computes*, not how fast.

Usage (local or CI — stdlib only, no package install needed)::

    python benchmarks/compare_results.py                  # all baselines
    python benchmarks/compare_results.py perf_chase       # one table
    python benchmarks/compare_results.py --threshold 1.5  # stricter

Regenerating a table after an intentional change::

    PYTHONPATH=src REPRO_NAIVE=1 python -m pytest \
        "benchmarks/bench_perf_chase.py::bench_perf_chase_table" -q
    cp benchmarks/results/perf_chase.json benchmarks/baselines/

(The committed baselines are naive-path timings — ``REPRO_NAIVE=1`` —
so the gate also documents the indexed engine's speedup: the printed
ratios are the fraction of the naive time each row now takes.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
DEFAULT_BASELINES = HERE / "baselines"
DEFAULT_RESULTS = HERE / "results"

#: Row-identity fields that record the run's *behaviour* (what the
#: engine computed) rather than which workload was measured.  A current
#: row that matches a baseline row everywhere except here is the same
#: measurement of a semantically different run.
COUNT_FIELDS = frozenset({"applications", "retractions", "atoms_out"})


def load_table(path: pathlib.Path) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    for field in ("headers", "rows"):
        if field not in payload:
            raise SystemExit(f"{path}: not a results table (missing {field!r})")
    return payload


def row_key(row: dict, metric: str) -> tuple:
    """The identity of a row: every non-float field except the metric.
    Floats are measurements; everything else (names, variants, step
    budgets, iteration counts) pins down *what* was measured."""
    return tuple(
        (field, value)
        for field, value in row.items()
        if field != metric and not isinstance(value, float)
    )


def _without_counts(key: tuple) -> tuple:
    return tuple((field, value) for field, value in key if field not in COUNT_FIELDS)


def find_count_drift(key: tuple, current_keys) -> dict | None:
    """If some current row matches *key* on every identity field except
    the count fields, return ``{field: (baseline, current)}`` for the
    fields that moved — the signature of semantic drift."""
    loose = _without_counts(key)
    base_fields = dict(key)
    for candidate in current_keys:
        if candidate == key or _without_counts(candidate) != loose:
            continue
        cand_fields = dict(candidate)
        if set(cand_fields) != set(base_fields):
            continue
        return {
            field: (base_fields[field], cand_fields[field])
            for field in sorted(COUNT_FIELDS & set(base_fields))
            if base_fields[field] != cand_fields[field]
        }
    return None


def compare_table(name: str, baseline: dict, current: dict, metric: str, threshold: float):
    """Yield (key, base_value, cur_value, ratio, ok, drift) per baseline
    row; a row missing from the current table yields cur_value=None,
    ok=False, and — when a current row differs only in count fields —
    drift maps each moved count field to its (baseline, current) pair."""
    current_rows = {row_key(row, metric): row for row in current["rows"]}
    for base_row in baseline["rows"]:
        key = row_key(base_row, metric)
        base_value = base_row.get(metric)
        if not isinstance(base_value, (int, float)):
            raise SystemExit(f"{name}: baseline row {key} has no numeric {metric!r}")
        cur_row = current_rows.get(key)
        if cur_row is None:
            drift = find_count_drift(key, current_rows)
            yield key, base_value, None, None, False, drift
            continue
        cur_value = cur_row.get(metric)
        if not isinstance(cur_value, (int, float)):
            yield key, base_value, None, None, False, None
            continue
        ratio = cur_value / max(base_value, 1e-9)
        yield key, base_value, cur_value, ratio, ratio <= threshold, None


def describe(key: tuple) -> str:
    return " ".join(str(value) for _, value in key)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark rows regressed beyond a threshold"
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="table names (default: every *.json in the baselines dir)",
    )
    parser.add_argument("--baselines", type=pathlib.Path, default=DEFAULT_BASELINES)
    parser.add_argument("--results", type=pathlib.Path, default=DEFAULT_RESULTS)
    parser.add_argument(
        "--metric", default="seconds", help="row field to compare (default: seconds)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current/baseline exceeds this (default: 2.0)",
    )
    args = parser.parse_args(argv)

    names = args.names or sorted(
        path.stem for path in args.baselines.glob("*.json")
    )
    if not names:
        print(f"no baselines found under {args.baselines}", file=sys.stderr)
        return 1

    failures = 0
    for name in names:
        baseline_path = args.baselines / f"{name}.json"
        results_path = args.results / f"{name}.json"
        if not baseline_path.exists():
            print(f"FAIL {name}: no baseline {baseline_path}", file=sys.stderr)
            failures += 1
            continue
        if not results_path.exists():
            print(
                f"FAIL {name}: no results {results_path} (run the bench first)",
                file=sys.stderr,
            )
            failures += 1
            continue
        baseline = load_table(baseline_path)
        current = load_table(results_path)
        print(f"== {name} (metric: {args.metric}, threshold: {args.threshold}x) ==")
        for key, base_value, cur_value, ratio, ok, drift in compare_table(
            name, baseline, current, args.metric, args.threshold
        ):
            label = describe(key)
            if cur_value is None:
                if drift:
                    moved = ", ".join(
                        f"{field} {before} -> {after}"
                        for field, (before, after) in drift.items()
                    )
                    print(
                        f"  FAIL {label}: SEMANTIC DRIFT ({moved}) — the "
                        "engine changed what it computes, not how fast; "
                        "fix the behaviour or re-baseline deliberately"
                    )
                else:
                    print(f"  FAIL {label}: row missing from current results")
                failures += 1
            elif not ok:
                print(
                    f"  FAIL {label}: {base_value:g} -> {cur_value:g} "
                    f"({ratio:.2f}x, over {args.threshold}x)"
                )
                failures += 1
            else:
                print(
                    f"  ok   {label}: {base_value:g} -> {cur_value:g} ({ratio:.2f}x)"
                )
    if failures:
        print(f"{failures} regression(s) beyond {args.threshold}x", file=sys.stderr)
        return 1
    print("perf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

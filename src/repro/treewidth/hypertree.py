"""Generalized hypertree width — upper bounds via edge covers.

Section 5 of the paper remarks that the staircase/elevator
counterexamples "immediately work for other measures, such as
cliquewidth or (generalized) hypertreewidth", because they are grid
based.  To make that remark checkable we provide an executable upper
bound for *generalized hypertree width* (ghw): take a tree decomposition
and cover each bag with as few atoms (hyperedges) as possible; the
maximum cover size over the bags is the width of the resulting
generalized hypertree decomposition, hence ``ghw ≤`` that maximum.

Covers are computed exactly for small bags (branch and bound over the
candidate atoms) with a greedy fallback; both directions are sound for
an *upper* bound.  Terms covered by no atom cannot occur (every term of
an atomset lives in an atom), so covers always exist.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from .decomposition import TreeDecomposition
from .elimination import decomposition_from_order, min_fill_order
from .gaifman import gaifman_graph

__all__ = ["bag_cover_number", "hypertree_width_upper_bound"]

AtomsLike = Union[AtomSet, Iterable[Atom]]


def bag_cover_number(
    bag: frozenset,
    atoms: AtomSet,
    exact_limit: int = 12,
) -> int:
    """The minimum number of atoms whose terms jointly cover *bag*.

    Exact branch-and-bound when the candidate pool is at most
    ``exact_limit`` atoms; greedy set cover otherwise (still an upper
    bound).  An empty bag costs 0.
    """
    targets = set(bag)
    if not targets:
        return 0
    candidates = []
    seen_coverages: set[frozenset] = set()
    for term in targets:
        for at in atoms.containing(term):
            coverage = frozenset(at.term_set() & targets)
            if coverage and coverage not in seen_coverages:
                seen_coverages.add(coverage)
                candidates.append(coverage)
    if not candidates:
        raise ValueError("bag contains terms absent from the atomset")
    # drop dominated candidates
    candidates = [
        c
        for c in candidates
        if not any(c < other for other in candidates)
    ]
    candidates.sort(key=len, reverse=True)

    greedy = _greedy_cover(targets, candidates)
    if len(candidates) > exact_limit:
        return greedy
    best = [greedy]

    def search(remaining: frozenset, used: int, start: int) -> None:
        if not remaining:
            best[0] = min(best[0], used)
            return
        if used + 1 >= best[0]:
            return
        for index in range(start, len(candidates)):
            coverage = candidates[index]
            if coverage & remaining:
                search(remaining - coverage, used + 1, index + 1)

    search(frozenset(targets), 0, 0)
    return best[0]


def _greedy_cover(targets: set, candidates: list[frozenset]) -> int:
    remaining = set(targets)
    used = 0
    while remaining:
        chosen = max(candidates, key=lambda c: len(c & remaining))
        gained = chosen & remaining
        if not gained:
            raise ValueError("cover does not exist")  # pragma: no cover
        remaining -= gained
        used += 1
    return used


def hypertree_width_upper_bound(
    atoms: AtomsLike,
    decomposition: Optional[TreeDecomposition] = None,
) -> int:
    """An upper bound on the generalized hypertree width of an atomset.

    Uses the min-fill tree decomposition of the Gaifman graph unless one
    is supplied, and covers each bag with atoms.  ``ghw(A) ≤`` the
    returned value; for the treewidth-1 structures of the paper (the
    diagonal ``I^v_*``, the column ``Ĩ^h``) the bound is 1, while the
    grid-bearing windows grow — the Section 5 remark, executably.
    """
    atom_set = atoms if isinstance(atoms, AtomSet) else AtomSet(atoms)
    if not atom_set:
        return 0
    if decomposition is None:
        graph = gaifman_graph(atom_set)
        decomposition = decomposition_from_order(graph, min_fill_order(graph))
    width = 0
    for bag in decomposition.bags:
        width = max(width, bag_cover_number(bag, atom_set))
    return width

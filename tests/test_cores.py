"""Tests for repro.logic.cores."""

from repro.kbs.generators import path_with_shortcut, star_instance
from repro.logic.cores import core_of, core_retraction, is_core, retracts_to
from repro.logic.homomorphism import homomorphically_equivalent
from repro.logic.parser import parse_atoms


class TestIsCore:
    def test_single_ground_atom_is_core(self):
        assert is_core(parse_atoms("p(a)"))

    def test_single_variable_atom_is_core(self):
        assert is_core(parse_atoms("p(X)"))

    def test_duplicate_pattern_is_not_core(self):
        assert not is_core(parse_atoms("p(X), p(Y)"))

    def test_directed_null_path_is_a_core(self):
        # a directed path cannot fold onto itself: no endomorphism
        # avoids an endpoint, so it is a core despite being all nulls
        assert is_core(parse_atoms("e(X, Y), e(Y, Z)"))

    def test_fork_is_not_core(self):
        # two parallel rays fold onto one
        assert not is_core(parse_atoms("e(X, Y), e(X, Z)"))

    def test_path_of_constants_is_core(self):
        assert is_core(parse_atoms("e(a, b), e(b, c)"))

    def test_odd_cycle_is_core(self):
        assert is_core(parse_atoms("e(X, Y), e(Y, Z), e(Z, X)"))

    def test_loop_plus_tail_is_not_core(self):
        assert not is_core(parse_atoms("e(X, X), e(X, Y)"))

    def test_shortcut_path_is_not_core(self):
        assert not is_core(path_with_shortcut(4))

    def test_star_is_not_core(self):
        assert not is_core(star_instance(5))


class TestCoreComputation:
    def test_core_is_core(self):
        atoms = path_with_shortcut(5)
        assert is_core(core_of(atoms))

    def test_core_is_hom_equivalent(self):
        atoms = path_with_shortcut(5)
        assert homomorphically_equivalent(atoms, core_of(atoms))

    def test_core_of_star_is_single_ray(self):
        core = core_of(star_instance(6))
        assert len(core) == 1

    def test_core_of_core_is_identity(self):
        atoms = parse_atoms("e(a, b), e(b, c)")
        retraction = core_retraction(atoms)
        assert len(retraction) == 0  # identity substitution

    def test_retraction_is_retraction(self):
        atoms = path_with_shortcut(5)
        retraction = core_retraction(atoms)
        assert retraction.is_retraction_of(atoms)

    def test_retraction_image_matches_core(self):
        atoms = path_with_shortcut(5)
        retraction = core_retraction(atoms)
        assert retraction.apply(atoms) == core_of(atoms)

    def test_retraction_idempotent(self):
        atoms = star_instance(4)
        retraction = core_retraction(atoms)
        assert retraction.compose(retraction).drop_trivial() == retraction

    def test_core_preserves_constants(self):
        atoms = parse_atoms("e(a, X), e(X, b)")
        core = core_of(atoms)
        assert {t.name for t in core.constants()} == {"a", "b"}

    def test_core_deterministic(self):
        atoms = path_with_shortcut(4)
        assert core_of(atoms) == core_of(atoms)

    def test_core_of_subsumed_query_pattern(self):
        # p(X,Y) subsumed by p(a,Y'): the core keeps the more specific atom
        atoms = parse_atoms("p(a, Y), p(X, Z)")
        core = core_of(atoms)
        assert len(core) == 1
        assert next(iter(core)).args[0].name == "a"


class TestRetractsTo:
    def test_null_path_retracts_to_constant_path(self):
        atoms = path_with_shortcut(3)
        target = atoms.induced(atoms.constants())
        retraction = retracts_to(atoms, target)
        assert retraction is not None
        assert retraction.apply(atoms) == target

    def test_no_retraction_to_non_subset(self):
        atoms = parse_atoms("e(X, Y)")
        assert retracts_to(atoms, parse_atoms("e(a, b)")) is None

    def test_no_retraction_to_disconnected_part(self):
        atoms = parse_atoms("e(a, b), e(c, d)")
        target = parse_atoms("e(a, b)")
        assert retracts_to(atoms, target) is None

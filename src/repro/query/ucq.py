"""Unions of conjunctive queries.

UCQs are preserved under homomorphisms just like CQs, so everything the
library does with a single CQ lifts disjunct-wise: a UCQ holds in an
instance iff some disjunct does, and ``K ⊨ Q₁ ∨ ... ∨ Qₙ`` over a
universal (or finitely universal) model reduces to per-disjunct tests.

Note the asymmetry for the decision race: the "yes" side is settled by
any single disjunct hitting, while a countermodel must avoid **all**
disjuncts simultaneously — :func:`decide_union_entailment` wires both
sides correctly instead of naively OR-ing per-disjunct verdicts (a
per-disjunct countermodel would be unsound: different disjuncts could be
refuted by different models while the union is still entailed).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..chase.engine import ChaseVariant, run_chase
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from .cq import ConjunctiveQuery
from .entailment import EntailmentVerdict
from .modelfinder import find_finite_model

__all__ = ["UnionQuery", "decide_union_entailment"]


class UnionQuery:
    """A finite union (disjunction) of Boolean conjunctive queries."""

    __slots__ = ("disjuncts", "name")

    def __init__(
        self, disjuncts: Sequence[ConjunctiveQuery], name: Optional[str] = None
    ):
        disjunct_list = list(disjuncts)
        if not disjunct_list:
            raise ValueError("a union query needs at least one disjunct")
        for disjunct in disjunct_list:
            if not disjunct.is_boolean:
                raise ValueError("union queries are Boolean; drop answer variables")
        object.__setattr__(self, "disjuncts", tuple(disjunct_list))
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("UnionQuery is immutable")

    def __len__(self) -> int:
        return len(self.disjuncts)

    def holds_in(self, instance: AtomSet) -> bool:
        """True iff some disjunct maps into *instance*."""
        return any(disjunct.holds_in(instance) for disjunct in self.disjuncts)

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"UCQ({label}{' OR '.join(str(d.atoms) for d in self.disjuncts)})"


def decide_union_entailment(
    kb: KnowledgeBase,
    query: UnionQuery,
    chase_budget: int = 200,
    model_domain_budget: int = 8,
    chase_variant: str = ChaseVariant.RESTRICTED,
    should_stop: Optional[Callable[[], bool]] = None,
) -> EntailmentVerdict:
    """Decide ``K ⊨ ⋁ disjuncts`` by the Theorem-1 race, lifted to UCQs.

    "Yes" side: ONE fair chase, shared by every disjunct — each step's
    growing aggregation is tested against all still-open disjuncts, so
    the budget (and the per-step observability traffic) does not scale
    with the disjunct count.  A terminated chase is a finite universal
    model: if no disjunct maps into it the whole union is refuted
    exactly, with no countermodel search.  "No" side (budget exhausted
    only): one finite model avoiding **every** disjunct at once refutes
    it — per-disjunct countermodels would be unsound.

    ``should_stop`` (e.g. a service deadline) cuts the run short exactly
    as in :func:`~repro.query.entailment.decide_entailment`: a stop
    before any verdict returns an undecided result flagged
    ``incomplete``, and the countermodel side is skipped.
    """
    aggregation = AtomSet()
    hit = [False]
    steps_until_hit = [0]

    def on_step(step) -> None:
        if hit[0]:
            return
        added = aggregation.update(step.instance)
        if added == 0 and step.index > 0:
            # unchanged aggregation: the previous per-disjunct tests
            # still stand (and repeats are memoized anyway)
            return
        if query.holds_in(aggregation):
            hit[0] = True
            steps_until_hit[0] = step.index

    def stopper() -> bool:
        return hit[0] or (should_stop is not None and should_stop())

    result = run_chase(
        kb,
        variant=chase_variant,
        max_steps=chase_budget,
        on_step=on_step,
        should_stop=stopper,
    )
    if hit[0]:
        return EntailmentVerdict(True, "chase-prefix-hit", steps_until_hit[0])
    if result.terminated:
        # The fixpoint is a finite universal model avoiding every
        # disjunct (the per-step test covered them all): exact "no".
        return EntailmentVerdict(
            False,
            "chase-fixpoint-miss",
            result.applications,
            witness_instance=result.final_instance,
        )
    if result.stopped:
        return EntailmentVerdict(
            None, "chase-stopped", result.applications, incomplete=True
        )
    if should_stop is not None and should_stop():
        return EntailmentVerdict(
            None, "chase-stopped", result.applications, incomplete=True
        )
    # "no" side: a model avoiding all disjuncts simultaneously; emulate
    # by searching with a combined avoidance predicate
    for budget in range(1, model_domain_budget + 1):
        result_model = _find_model_avoiding_all(kb, query, budget)
        if result_model is not None:
            return EntailmentVerdict(
                False,
                "finite-countermodel",
                result.applications,
                countermodel=result_model,
            )
    return EntailmentVerdict(None, "race-undecided", result.applications)


class _UnionAvoidance:
    """Adapter giving :func:`find_finite_model` a single ``holds_in``."""

    def __init__(self, query: UnionQuery):
        self._query = query

    def holds_in(self, instance: AtomSet) -> bool:
        return self._query.holds_in(instance)


def _find_model_avoiding_all(
    kb: KnowledgeBase, query: UnionQuery, domain_budget: int
) -> Optional[AtomSet]:
    result = find_finite_model(
        kb,
        domain_budget=domain_budget,
        avoid=_UnionAvoidance(query),  # type: ignore[arg-type]
    )
    return result.model

"""repro — a reproduction of "Bounded Treewidth and the Infinite Core
Chase: Complications and Workarounds toward Decidable Querying"
(Baget, Mugnier & Rudolph, PODS 2023).

The library implements, from first principles:

* the first-order substrate of existential rules (atoms, atomsets,
  homomorphisms, cores, rules) — :mod:`repro.logic`;
* derivations and the four chase variants with fair scheduling, plus the
  natural and *robust* aggregations of Sections 3 and 8 —
  :mod:`repro.chase`;
* the treewidth toolbox (tree decompositions, exact/heuristic widths,
  grid lower bounds) — :mod:`repro.treewidth`;
* rule-set analysis (weak acyclicity, guardedness, structural-measure
  boundedness) — :mod:`repro.analysis`;
* CQ entailment procedures including the Theorem-1-style race —
  :mod:`repro.query`;
* the paper's counterexample KBs (steepening staircase, inflating
  elevator) with closed-form model generators — :mod:`repro.kbs`.

Quickstart::

    from repro import staircase_kb, core_chase, treewidth

    kb = staircase_kb()
    result = core_chase(kb, max_steps=50)
    widths = [treewidth(step.instance) for step in result.derivation]
    assert max(widths) <= 2      # Proposition 4
"""

from .analysis import (
    certify_fes,
    is_frontier_guarded,
    is_guarded,
    is_weakly_acyclic,
    profile_chase,
)
from .chase import (
    ChaseEngine,
    ChaseResult,
    ChaseVariant,
    Derivation,
    RobustSequence,
    core_chase,
    frugal_chase,
    oblivious_chase,
    restricted_chase,
    robust_aggregation,
    run_chase,
    semi_oblivious_chase,
)
from .kbs import (
    bts_not_fes_kb,
    elevator_kb,
    fes_not_bts_kb,
    staircase_kb,
)
from .logic import (
    Atom,
    AtomSet,
    Constant,
    ExistentialRule,
    Predicate,
    RuleSet,
    Substitution,
    Variable,
    atom,
    core_of,
    core_retraction,
    find_homomorphism,
    homomorphically_equivalent,
    is_core,
    isomorphic,
    maps_into,
    parse_atom,
    parse_atoms,
    parse_rule,
    parse_rules,
)
from .logic.kb import KnowledgeBase
from .obs import (
    JsonlTracer,
    MetricsRegistry,
    Observer,
    TracingObserver,
    get_observer,
    observing,
    set_observer,
)
from .query import (
    ConjunctiveQuery,
    boolean_cq,
    decide_entailment,
    entails_via_terminating_chase,
    find_countermodel,
)
from .treewidth import (
    TreeDecomposition,
    contains_grid,
    grid_lower_bound,
    treewidth,
    treewidth_bounds,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "AtomSet",
    "ChaseEngine",
    "ChaseResult",
    "ChaseVariant",
    "ConjunctiveQuery",
    "Constant",
    "Derivation",
    "ExistentialRule",
    "JsonlTracer",
    "KnowledgeBase",
    "MetricsRegistry",
    "Observer",
    "Predicate",
    "RobustSequence",
    "RuleSet",
    "Substitution",
    "TracingObserver",
    "TreeDecomposition",
    "Variable",
    "atom",
    "boolean_cq",
    "bts_not_fes_kb",
    "certify_fes",
    "contains_grid",
    "core_chase",
    "core_of",
    "core_retraction",
    "decide_entailment",
    "elevator_kb",
    "entails_via_terminating_chase",
    "fes_not_bts_kb",
    "find_countermodel",
    "find_homomorphism",
    "frugal_chase",
    "get_observer",
    "grid_lower_bound",
    "homomorphically_equivalent",
    "is_core",
    "is_frontier_guarded",
    "is_guarded",
    "is_weakly_acyclic",
    "isomorphic",
    "maps_into",
    "oblivious_chase",
    "observing",
    "parse_atom",
    "parse_atoms",
    "parse_rule",
    "parse_rules",
    "profile_chase",
    "restricted_chase",
    "robust_aggregation",
    "run_chase",
    "semi_oblivious_chase",
    "set_observer",
    "staircase_kb",
    "treewidth",
    "treewidth_bounds",
]

"""P1e — query evaluation: backtracking vs tree-decomposition DP.

The decomposition-based evaluator (repro.query.decomposed) exists
because of the paper's treewidth theme; this bench compares it with the
plain backtracking evaluator on path queries over path instances —
a family where both are fast — and on a crafted query whose naive
variable order is bad, where the DP's bag-local joins shine.
"""

import pytest

from repro.kbs.generators import grid_instance, path_instance
from repro.logic.homomorphism import maps_into
from repro.query import boolean_cq
from repro.query.decomposed import DecomposedQuery

PATH_QUERY = boolean_cq("e(A, B), e(B, C), e(C, D), e(D, E), e(E, F)")
GRID_QUERY = boolean_cq(
    "h(A, B), v(A, C), h(C, D), v(B, D), h(B, E), v(E, G), h(D, G)"
)


@pytest.mark.parametrize("size", [30, 100])
def bench_backtracking_path_query(benchmark, size):
    instance = path_instance(size)
    assert benchmark(lambda: maps_into(PATH_QUERY.atoms, instance))


@pytest.mark.parametrize("size", [30, 100])
def bench_decomposed_path_query(benchmark, size):
    instance = path_instance(size)
    compiled = DecomposedQuery(PATH_QUERY)
    assert benchmark(lambda: compiled.holds_in(instance))


def bench_decomposed_compilation(benchmark):
    compiled = benchmark(lambda: DecomposedQuery(GRID_QUERY))
    assert compiled.width >= 1


@pytest.mark.parametrize("n", [4, 6])
def bench_decomposed_grid_query(benchmark, n):
    instance = grid_instance(n)
    compiled = DecomposedQuery(GRID_QUERY)
    result = benchmark(lambda: compiled.holds_in(instance))
    assert result == maps_into(GRID_QUERY.atoms, instance)

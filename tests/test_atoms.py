"""Tests for repro.logic.atoms."""

import pytest

from repro.logic.atoms import Atom, Predicate, atom, make_term
from repro.logic.terms import Constant, Variable


class TestPredicate:
    def test_equality(self):
        assert Predicate("p", 2) == Predicate("p", 2)

    def test_arity_distinguishes(self):
        assert Predicate("p", 2) != Predicate("p", 3)

    def test_callable_builds_atom(self):
        p = Predicate("p", 2)
        at = p("X", "a")
        assert at.predicate == p
        assert at.args == (Variable("X"), Constant("a"))

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Predicate("p", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Predicate("", 1)

    def test_str(self):
        assert str(Predicate("p", 2)) == "p/2"

    def test_order_deterministic(self):
        assert Predicate("a", 1) < Predicate("b", 1)
        assert Predicate("a", 1) < Predicate("a", 2)


class TestMakeTerm:
    def test_uppercase_is_variable(self):
        assert make_term("X") == Variable("X")

    def test_underscore_is_variable(self):
        assert make_term("_n3") == Variable("_n3")

    def test_lowercase_is_constant(self):
        assert make_term("alice") == Constant("alice")

    def test_term_passthrough(self):
        v = Variable("X")
        assert make_term(v) is v

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            make_term(3.14)  # type: ignore[arg-type]


class TestAtom:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Atom(Predicate("p", 2), (Variable("X"),))

    def test_non_term_argument_rejected(self):
        with pytest.raises(TypeError):
            Atom(Predicate("p", 1), ("X",))  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        a1 = atom("p", "X", "a")
        a2 = atom("p", "X", "a")
        assert a1 == a2
        assert hash(a1) == hash(a2)

    def test_argument_order_matters(self):
        assert atom("p", "X", "Y") != atom("p", "Y", "X")

    def test_terms_with_repetition(self):
        at = atom("p", "X", "X")
        assert list(at.terms()) == [Variable("X"), Variable("X")]
        assert at.term_set() == {Variable("X")}

    def test_variables_and_constants(self):
        at = atom("p", "X", "a")
        assert at.variables() == {Variable("X")}
        assert at.constants() == {Constant("a")}

    def test_is_ground(self):
        assert atom("p", "a", "b").is_ground()
        assert not atom("p", "a", "X").is_ground()

    def test_zero_ary_atom(self):
        at = Atom(Predicate("halt", 0), ())
        assert at.is_ground()
        assert at.term_set() == frozenset()

    def test_str_rendering(self):
        assert str(atom("p", "X", "a")) == "p(X, a)"

    def test_sort_key_total_order(self):
        atoms = [atom("q", "X"), atom("p", "Y"), atom("p", "X")]
        ordered = sorted(atoms)
        assert ordered[0].predicate.name == "p"
        assert ordered[-1].predicate.name == "q"

    def test_immutable(self):
        at = atom("p", "X")
        with pytest.raises(AttributeError):
            at.args = ()

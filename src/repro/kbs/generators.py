"""Synthetic workload generators for tests and performance benchmarks.

The paper has no benchmark datasets; the scaling benches need
parameterized families of instances and KBs with known structure:
paths, cycles, grids, stars, random sparse instances, and layered KBs
whose chase depth is controlled.  All generators are deterministic
(seeded) so runs are reproducible.
"""

from __future__ import annotations

import random

from ..logic.atoms import atom
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.parser import parse_rules
from ..logic.terms import Constant, Variable

__all__ = [
    "path_instance",
    "cycle_instance",
    "grid_instance",
    "star_instance",
    "random_instance",
    "random_kb",
    "layered_kb",
    "path_with_shortcut",
]


def path_instance(length: int, predicate: str = "e", null_nodes: bool = False) -> AtomSet:
    """A directed path of *length* edges; nodes are constants unless
    ``null_nodes`` (then homomorphisms may fold the path)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    make = (lambda i: Variable(f"N{i}")) if null_nodes else (lambda i: Constant(f"n{i}"))
    return AtomSet(
        atom(predicate, make(i), make(i + 1)) for i in range(length)
    )


def cycle_instance(length: int, predicate: str = "e", null_nodes: bool = True) -> AtomSet:
    """A directed cycle of *length* edges."""
    if length < 1:
        raise ValueError("length must be >= 1")
    make = (lambda i: Variable(f"C{i}")) if null_nodes else (lambda i: Constant(f"c{i}"))
    return AtomSet(
        atom(predicate, make(i), make((i + 1) % length)) for i in range(length)
    )


def grid_instance(n: int, horizontal: str = "h", vertical: str = "v") -> AtomSet:
    """An n × n grid over null nodes — treewidth exactly n and an n×n
    grid witness in the sense of Definition 5 (used to calibrate the
    treewidth and grid-detection substrates)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    nodes = [[Variable(f"G{i}_{j}") for j in range(n)] for i in range(n)]
    atoms = AtomSet()
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                atoms.add(atom(horizontal, nodes[i][j], nodes[i + 1][j]))
            if j + 1 < n:
                atoms.add(atom(vertical, nodes[i][j], nodes[i][j + 1]))
    if n == 1:
        atoms.add(atom("node", nodes[0][0]))
    return atoms


def star_instance(rays: int, predicate: str = "e") -> AtomSet:
    """A star: one hub with *rays* out-edges to nulls (treewidth 1,
    highly foldable — a stress case for core computation)."""
    if rays < 1:
        raise ValueError("rays must be >= 1")
    hub = Constant("hub")
    return AtomSet(atom(predicate, hub, Variable(f"R{i}")) for i in range(rays))


def random_instance(
    atom_count: int,
    term_pool: int,
    predicates: tuple[str, ...] = ("p", "q"),
    arity: int = 2,
    seed: int = 0,
) -> AtomSet:
    """A random instance: *atom_count* atoms over a pool of *term_pool*
    nulls, uniform predicate/argument choice with the given *seed*."""
    rng = random.Random(seed)
    pool = [Variable(f"T{i}") for i in range(term_pool)]
    atoms = AtomSet()
    while len(atoms) < atom_count:
        predicate = rng.choice(predicates)
        args = [rng.choice(pool) for _ in range(arity)]
        atoms.add(atom(predicate, *args))
    return atoms


def random_kb(
    rule_count: int = 3,
    fact_count: int = 6,
    term_pool: int = 4,
    predicates: tuple[str, ...] = ("p", "q", "e"),
    arity: int = 2,
    seed: int = 0,
) -> KnowledgeBase:
    """A random KB: *fact_count* facts over a mixed constant/null pool
    and *rule_count* random existential rules.

    Rule bodies draw 1–2 atoms over the variables X, Y, Z; heads draw
    1–2 atoms over the body variables plus the head-only (therefore
    existential) variables U, W.  Termination is *not* guaranteed —
    consumers chase with a step budget.  Deterministic in *seed*; the
    differential index tests fuzz over seeds.
    """
    if rule_count < 1:
        raise ValueError("rule_count must be >= 1")
    if fact_count < 1:
        raise ValueError("fact_count must be >= 1")
    rng = random.Random(seed)
    constants = [Constant(f"c{i}") for i in range(max(term_pool, 1))]
    nulls = [Variable(f"N{i}") for i in range(max(term_pool // 2, 1))]
    pool = constants + nulls
    facts = AtomSet()
    while len(facts) < fact_count:
        predicate = rng.choice(predicates)
        facts.add(atom(predicate, *(rng.choice(pool) for _ in range(arity))))
    body_vars = ("X", "Y", "Z")
    head_vars = body_vars + ("U", "W")
    lines = []
    for i in range(rule_count):
        body = ", ".join(
            f"{rng.choice(predicates)}"
            f"({', '.join(rng.choice(body_vars) for _ in range(arity))})"
            for _ in range(rng.randint(1, 2))
        )
        head = ", ".join(
            f"{rng.choice(predicates)}"
            f"({', '.join(rng.choice(head_vars) for _ in range(arity))})"
            for _ in range(rng.randint(1, 2))
        )
        lines.append(f"[R{i}] {body} -> {head}")
    rules = parse_rules("\n".join(lines))
    return KnowledgeBase(facts, rules, name=f"random-{seed}")


def layered_kb(layers: int, fanout: int = 1) -> KnowledgeBase:
    """A KB whose chase performs exactly ``layers`` waves of existential
    rule applications: ``l0(a)`` and rules ``l_i(X) → ∃Y. r(X,Y) ∧
    l_{i+1}(Y)`` (× *fanout* parallel rules per layer).  Weakly acyclic,
    so every variant terminates; total applications scale as
    ``fanout ** layers``-ish for the oblivious variants — a scaling dial
    for the engine benches."""
    if layers < 1:
        raise ValueError("layers must be >= 1")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    lines = []
    for i in range(layers):
        for k in range(fanout):
            lines.append(f"[L{i}f{k}] l{i}(X) -> r{k}(X,Y), l{i + 1}(Y)")
    rules = parse_rules("\n".join(lines))
    return KnowledgeBase(
        AtomSet([atom("l0", Constant("a"))]), rules, name=f"layered-{layers}x{fanout}"
    )


def path_with_shortcut(length: int) -> AtomSet:
    """Two parallel directed paths of *length* edges from ``s`` to ``t``:
    one over constants, one over nulls.  The canonical non-core — the
    null path folds edge-by-edge onto the constant path, so the core is
    the constant path alone.  Used by core computation tests and benches
    (the core must remove exactly ``length - 1`` nulls)."""
    if length < 2:
        raise ValueError("length must be >= 2")
    start = Constant("s")
    end = Constant("t")
    rigid = [start] + [Constant(f"m{i}") for i in range(1, length)] + [end]
    foldable = [start] + [Variable(f"P{i}") for i in range(1, length)] + [end]
    atoms = AtomSet()
    for i in range(length):
        atoms.add(atom("e", rigid[i], rigid[i + 1]))
        atoms.add(atom("e", foldable[i], foldable[i + 1]))
    return atoms

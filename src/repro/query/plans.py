"""Compiled query plans, cached across requests.

A *plan* here is the saturated UCQ rewriting of a Boolean CQ through a
ruleset (:mod:`.rewriting`): evaluating it is a handful of homomorphism
tests against the base facts, each of which routes through the
``repro.logic.compiled`` interner/join-plan machinery and memoizes its
compiled join plan on the disjunct's :class:`~repro.logic.atomset.
AtomSet`.  Holding the disjunct objects across requests therefore reuses
the compiled plans — the point of this cache.

Keying: ``(ruleset_fingerprint, query_shape)``.  The fingerprint is the
same sha256 the verdict cache and snapshot catalog use, so a ruleset
change rolls every dependent plan at once.  :func:`query_shape` renames
variables by first occurrence over the deterministic sorted atom order,
so equal shapes imply alpha-equivalent queries — a shared cache entry is
always sound; alpha-variants that sort differently merely miss.

Two tiers, like the PR-9 verdict cache: an in-process LRU (plan objects,
compiled joins warm) in front of a ``query_plans`` table in the snapshot
catalog (JSON, shared across pool workers and restarts).  Non-rewritable
rulesets are memoized too — a negative plan spares the fragment check
and the budgeted saturation on every subsequent request.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis.planner import ruleset_fingerprint
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.terms import Variable
from ..obs import observer as _observer_state
from ..obs.spans import span as _span
from .cq import ConjunctiveQuery, boolean_cq
from .rewriting import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_DISJUNCTS,
    DEFAULT_MAX_WORK,
    rewritable_fragment,
    rewrite_ucq,
)

__all__ = [
    "CompiledQueryPlan",
    "QueryPlanCache",
    "query_shape",
    "default_plan_cache",
]

#: Default capacity of the in-process plan LRU.
DEFAULT_MEMORY_LIMIT = 256


def query_shape(atoms: AtomSet) -> str:
    """The canonical shape of a Boolean CQ — the plan-cache key part.

    Variables are renamed by first occurrence over the sorted atom
    order, constants keep their names.  Equal shapes imply the queries
    are identical up to variable renaming (the string determines the
    atoms up to that renaming), which is exactly the equivalence under
    which a Boolean plan may be shared.
    """
    names: Dict[Variable, str] = {}
    parts = []
    for at in atoms.sorted_atoms():
        rendered = []
        for term in at.args:
            if isinstance(term, Variable):
                if term not in names:
                    names[term] = f"V{len(names)}"
                rendered.append(names[term])
            else:
                rendered.append(f"c:{term.name}")
        parts.append(f"{at.predicate.name}({','.join(rendered)})")
    return ";".join(parts)


@dataclass(frozen=True)
class CompiledQueryPlan:
    """A cached rewriting for one ``(ruleset, CQ shape)`` pair.

    ``fragment`` is None when the ruleset is not rewritable (a memoized
    negative).  ``complete`` marks an exact saturation: only then is an
    all-disjunct miss a sound "no".
    """

    fragment: Optional[str]
    complete: bool
    disjuncts: Tuple[ConjunctiveQuery, ...]
    generated: int = 0
    pruned: int = 0

    @property
    def rewritable(self) -> bool:
        return self.fragment is not None

    def evaluate(self, facts: AtomSet) -> Optional[bool]:
        """Answer ``K ⊨ Q`` from base facts alone, or None.

        True on any disjunct hit (sound even when incomplete: one
        backward rewriting step is one forward chase step).  False only
        from a complete saturation.  None demands the Theorem-1 race.
        """
        if self.fragment is None:
            return None
        if any(disjunct.holds_in(facts) for disjunct in self.disjuncts):
            return True
        return False if self.complete else None

    def to_obj(self) -> dict:
        return {
            "fragment": self.fragment,
            "complete": self.complete,
            "generated": self.generated,
            "pruned": self.pruned,
            "disjuncts": [
                ", ".join(str(a) for a in d.atoms.sorted_atoms())
                for d in self.disjuncts
            ],
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "CompiledQueryPlan":
        """Rebuild a plan from its catalog JSON; raises ValueError on a
        malformed payload (callers treat that as a cache miss)."""
        try:
            disjuncts = tuple(
                boolean_cq(text) for text in obj.get("disjuncts", ())
            )
            return cls(
                fragment=obj.get("fragment"),
                complete=bool(obj.get("complete", False)),
                disjuncts=disjuncts,
                generated=int(obj.get("generated", 0)),
                pruned=int(obj.get("pruned", 0)),
            )
        except (TypeError, KeyError) as exc:
            raise ValueError(f"malformed query plan payload: {exc}") from exc


class QueryPlanCache:
    """Two-tier plan cache: in-process LRU over the snapshot catalog.

    Thread-safe; the store tier is optional (None keeps the cache purely
    in-process).  Every lookup emits one ``query_rewrite`` observer
    event carrying its source tier, so `repro stats` can report hit
    ratios without the cache keeping its own counters.
    """

    def __init__(
        self,
        store=None,
        memory_limit: int = DEFAULT_MEMORY_LIMIT,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_work: int = DEFAULT_MAX_WORK,
    ):
        self.store = store
        self.memory_limit = memory_limit
        self.max_disjuncts = max_disjuncts
        self.max_depth = max_depth
        self.max_work = max_work
        self._memory: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def plan_for(
        self,
        kb: KnowledgeBase,
        query: ConjunctiveQuery,
        observer=None,
    ) -> CompiledQueryPlan:
        """The plan for (*kb*'s ruleset, *query*), computing on miss.

        *observer* overrides the ambient observer for the lookup's
        ``query_rewrite`` event — service jobs pass their per-job
        observer, which in-process executors never install globally.
        """
        rules_fp = ruleset_fingerprint(kb.rules)
        shape = query_shape(query.atoms)
        key = (rules_fp, shape)
        source = "computed"
        plan: Optional[CompiledQueryPlan] = None

        with self._lock:
            self.lookups += 1
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                plan, source = cached, "memory"
        if plan is None and self.store is not None:
            payload = self.store.load_query_plan(rules_fp, shape)
            if payload is not None:
                try:
                    plan = CompiledQueryPlan.from_obj(payload)
                    source = "store"
                except ValueError:
                    plan = None
            if plan is not None:
                with self._lock:
                    self.hits += 1
                    self._remember(key, plan)
        if plan is None:
            plan = self._compute(kb.rules, query)
            with self._lock:
                self._remember(key, plan)
            if self.store is not None:
                self.store.save_query_plan(rules_fp, shape, plan.to_obj())

        if observer is None:
            observer = _observer_state.current
        if observer is not None:
            observer.query_rewrite(
                source=source,
                fragment=plan.fragment or "",
                complete=plan.complete,
                disjuncts=len(plan.disjuncts),
                pruned=plan.pruned,
            )
        return plan

    # -- internals -----------------------------------------------------

    def _remember(self, key, plan: CompiledQueryPlan) -> None:
        self._memory[key] = plan
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_limit:
            self._memory.popitem(last=False)

    def _compute(self, rules, query: ConjunctiveQuery) -> CompiledQueryPlan:
        fragment = rewritable_fragment(rules)
        if fragment is None:
            return CompiledQueryPlan(None, False, ())
        with _span("query-plan", fragment=fragment):
            result = rewrite_ucq(
                rules,
                query,
                max_disjuncts=self.max_disjuncts,
                max_depth=self.max_depth,
                max_work=self.max_work,
            )
        return CompiledQueryPlan(
            fragment=fragment,
            complete=result.complete,
            disjuncts=result.disjuncts,
            generated=result.generated,
            pruned=result.pruned,
        )


_DEFAULT: Optional[QueryPlanCache] = None


def default_plan_cache() -> QueryPlanCache:
    """The process-wide plan cache (no store tier until one is bound)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = QueryPlanCache()
    return _DEFAULT

"""Tests for the chase-snapshot store (repro.service.snapshots).

The differential suite at the bottom is the load-bearing part: on every
KB family it proves that a chase warm-started from a snapshot produces
the same final instance as an uninterrupted cold chase — atom-for-atom
equal (fresh-null numbering resumes exactly), hence in particular
isomorphic.
"""

import json
import os
import time

import pytest

from repro import elevator_kb, staircase_kb
from repro.chase.engine import ChaseEngine, ChaseVariant, run_chase
from repro.kbs.generators import random_kb
from repro.logic.isomorphism import isomorphic
from repro.logic.serialization import dump_kb, load_kb
from repro.obs.observer import Observer, observing
from repro.service.snapshots import (
    SNAPSHOT_SCHEMA,
    SnapshotStore,
    chase_state_from_obj,
    chase_state_to_obj,
    kb_fingerprint,
    snapshot_key,
)


class TestKbFingerprint:
    def test_reparse_invariant(self):
        kb = staircase_kb()
        reparsed = load_kb(dump_kb(kb))
        assert kb_fingerprint(kb) == kb_fingerprint(reparsed)

    def test_name_does_not_participate(self):
        from repro.logic.kb import KnowledgeBase

        kb = staircase_kb()
        renamed = KnowledgeBase(kb.facts, kb.rules, name="other")
        assert kb_fingerprint(kb) == kb_fingerprint(renamed)

    def test_distinct_kbs_distinct_fingerprints(self):
        assert kb_fingerprint(staircase_kb()) != kb_fingerprint(elevator_kb())

    def test_key_depends_on_configuration(self):
        kb = staircase_kb()
        assert snapshot_key(kb, "core", 1) != snapshot_key(kb, "restricted", 1)
        assert snapshot_key(kb, "core", 1) != snapshot_key(kb, "core", 2)


class TestChaseStateJson:
    @pytest.mark.parametrize("variant", ["restricted", "core", "oblivious"])
    def test_round_trip_preserves_everything(self, variant):
        engine = ChaseEngine(staircase_kb(), variant=variant)
        engine.run(8)
        state = engine.export_state()
        obj = json.loads(json.dumps(chase_state_to_obj(state)))
        back = chase_state_from_obj(obj)
        assert back.variant == state.variant
        assert back.core_every == state.core_every
        assert back.fresh_prefix == state.fresh_prefix
        assert back.fresh_count == state.fresh_count
        assert back.instance == state.instance
        assert back.applied_keys == state.applied_keys
        assert back.ages == state.ages
        assert back.terminated == state.terminated
        assert back.applications == state.applications
        assert back.applications_since_core == state.applications_since_core
        assert back.delta_since_core == state.delta_since_core

    def test_round_trip_is_deterministic(self):
        engine = ChaseEngine(staircase_kb(), variant="core")
        engine.run(6)
        state = engine.export_state()
        assert json.dumps(chase_state_to_obj(state)) == json.dumps(
            chase_state_to_obj(state)
        )


class TestSnapshotStore:
    def test_save_then_load(self, tmp_path):
        kb = staircase_kb()
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(5)
        store = SnapshotStore(tmp_path)
        store.save(kb, engine.export_state())
        loaded = store.load(kb, "restricted", 1)
        assert loaded is not None
        assert loaded.instance == engine.current_instance
        assert loaded.applications == 5

    def test_miss_returns_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load(staircase_kb(), "restricted", 1) is None

    def test_wrong_config_misses(self, tmp_path):
        kb = staircase_kb()
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(5)
        store = SnapshotStore(tmp_path)
        store.save(kb, engine.export_state())
        assert store.load(kb, "core", 1) is None
        assert store.load(elevator_kb(), "restricted", 1) is None

    def test_corrupt_record_discarded(self, tmp_path):
        kb = staircase_kb()
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(3)
        store = SnapshotStore(tmp_path)
        path = store.save(kb, engine.export_state())
        path.write_text("{ torn mid-wri")
        assert store.load(kb, "restricted", 1) is None
        assert store.entry_count() == 0  # paid for only once
        assert not path.exists()

    def test_tampered_record_discarded(self, tmp_path):
        # Records are content-addressed: any byte that changes no
        # longer hashes to the file's name, so tampering is detected
        # even when the result is perfectly well-formed JSON.
        kb = staircase_kb()
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(3)
        store = SnapshotStore(tmp_path)
        path = store.save(kb, engine.export_state())
        payload = json.loads(path.read_text())
        payload["state"]["fresh_count"] = 999
        path.write_text(json.dumps(payload))
        assert store.load(kb, "restricted", 1) is None
        assert not path.exists()

    def test_schema_mismatch_discarded(self, tmp_path):
        # A record written by a *future* store hashes correctly but
        # carries an unknown schema number; reading it must classify
        # it as broken, not crash or mis-decode.
        import hashlib

        from repro.service.snapshots import _ChainBroken, _dump_record

        store = SnapshotStore(tmp_path)
        blob = _dump_record(
            {"schema": SNAPSHOT_SCHEMA + 1, "kind": "base", "state": {}}
        )
        record_hash = hashlib.sha256(blob).hexdigest()
        store._write_blob(record_hash, blob)
        with pytest.raises(_ChainBroken):
            store._read_record(record_hash)


def _saved(store, make_kb, steps=4, variant="restricted"):
    kb = make_kb()
    engine = ChaseEngine(kb, variant=variant)
    engine.run(steps)
    return kb, store.save(kb, engine.export_state())


def _backdate(path, seconds_ago):
    stamp = time.time() - seconds_ago
    os.utime(path, (stamp, stamp))


class TestAdversarialCorruption:
    def test_out_of_family_decoder_exception_is_a_miss(
        self, tmp_path, monkeypatch
    ):
        # Regression: the load path used to catch only (ValueError,
        # KeyError, TypeError, IndexError); an adversarially-shaped
        # state can raise essentially anything out of the decoder, and
        # that exception crashed the worker instead of missing.
        kb = staircase_kb()
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(3)
        store = SnapshotStore(tmp_path)
        path = store.save(kb, engine.export_state())

        def hostile(obj):
            raise AttributeError("mistyped node")

        monkeypatch.setattr(
            "repro.service.snapshots.instance_from_obj", hostile
        )
        assert store.load(kb, "restricted", 1) is None
        assert not path.exists()  # paid for only once

    def test_corrupt_load_reported_to_observer(self, tmp_path):
        events = []

        class Spy(Observer):
            def snapshot_access(self, **kw):
                events.append(kw)

        kb = staircase_kb()
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(3)
        store = SnapshotStore(tmp_path)
        path = store.save(kb, engine.export_state())
        path.write_text("{}")
        with observing(Spy()):
            assert store.load(kb, "restricted", 1) is None
        assert events[-1]["op"] == "load"
        assert events[-1]["corrupt"] and not events[-1]["hit"]
        assert events[-1]["chain_broken"]


class TestStoreHygiene:
    def test_orphan_tmp_files_collected_on_startup(self, tmp_path):
        old = tmp_path / ".dead-writer.tmp"
        old.write_text("half a snapshot")
        _backdate(old, seconds_ago=3600)
        young = tmp_path / ".live-writer.tmp"
        young.write_text("a save in progress")
        SnapshotStore(tmp_path)
        assert not old.exists()  # crashed writer's droppings collected
        assert young.exists()  # a sibling mid-save is left alone

    def test_entry_bound_evicts_least_recently_used(self, tmp_path):
        # Recency is the catalog's monotonic access counter — save
        # order alone determines the victim, no clock involved.
        store = SnapshotStore(tmp_path, max_entries=2)
        kb1, _ = _saved(store, staircase_kb)
        kb2, _ = _saved(store, elevator_kb)
        kb3, _ = _saved(store, lambda: random_kb(seed=0))
        assert store.load(kb1, "restricted", 1) is None  # LRU, evicted
        assert store.load(kb2, "restricted", 1) is not None
        assert store.load(kb3, "restricted", 1) is not None

    def test_byte_bound_evicts_down_to_size(self, tmp_path):
        probe = SnapshotStore(tmp_path / "probe")
        _, probe_path = _saved(probe, staircase_kb)
        size = probe_path.stat().st_size

        store = SnapshotStore(tmp_path / "real", max_bytes=int(size * 1.5))
        kb1, _ = _saved(store, staircase_kb)
        kb2, _ = _saved(store, elevator_kb)
        assert store.load(kb1, "restricted", 1) is None
        assert store.load(kb2, "restricted", 1) is not None

    def test_load_refreshes_recency(self, tmp_path):
        store = SnapshotStore(tmp_path, max_entries=2)
        kb1, _ = _saved(store, staircase_kb)
        kb2, _ = _saved(store, elevator_kb)
        # kb1 was saved first, but a load bumps its access counter …
        assert store.load(kb1, "restricted", 1) is not None
        kb3, _ = _saved(store, lambda: random_kb(seed=0))
        # … so the eviction falls on kb2 instead.
        assert store.load(kb1, "restricted", 1) is not None
        assert store.load(kb2, "restricted", 1) is None
        assert store.load(kb3, "restricted", 1) is not None

    def test_evictions_reported_to_observer(self, tmp_path):
        events = []

        class Spy(Observer):
            def snapshot_access(self, **kw):
                events.append(kw)

        store = SnapshotStore(tmp_path, max_entries=1)
        with observing(Spy()):
            _saved(store, staircase_kb)
            _saved(store, elevator_kb)
        assert sum(1 for e in events if e["op"] == "evict") == 1

    def test_oversized_snapshot_is_not_self_evicted(self, tmp_path):
        # Regression: a single snapshot larger than max_bytes used to be
        # evicted immediately after every save (it is the newest file
        # and the store is still over the bound), silently disabling
        # warm starts for that store.  The just-written entry is now
        # protected; the unmeetable bound is counted instead.
        store = SnapshotStore(tmp_path, max_bytes=1)
        kb, path = _saved(store, staircase_kb)
        assert path.exists()
        assert store.load(kb, "restricted", 1) is not None
        assert store.eviction_shortfalls == 1

    def test_oversized_newest_still_evicts_older_entries(self, tmp_path):
        # The protection covers only the newest file — older snapshots
        # still drain out so the store gets as close to the bound as it
        # can.
        store = SnapshotStore(tmp_path, max_bytes=1)
        kb1, _ = _saved(store, staircase_kb)
        kb2, _ = _saved(store, elevator_kb)
        assert store.load(kb1, "restricted", 1) is None  # older: evicted
        assert store.load(kb2, "restricted", 1) is not None  # newest: kept

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = SnapshotStore(tmp_path)
        kbs = [
            _saved(store, make)[0]
            for make in (staircase_kb, elevator_kb, lambda: random_kb(seed=0))
        ]
        for kb in kbs:
            assert store.load(kb, "restricted", 1) is not None


FAMILIES = [
    ("staircase", staircase_kb, "core", 6, 14),
    ("staircase", staircase_kb, "restricted", 6, 14),
    ("elevator", elevator_kb, "core", 5, 12),
    ("random-0", lambda: random_kb(seed=0), "restricted", 3, 10),
    ("random-7", lambda: random_kb(seed=7), "core", 3, 10),
    ("random-13", lambda: random_kb(seed=13), "restricted", 4, 12),
]


class TestWarmColdDifferential:
    """Snapshot-resumed chases match uninterrupted cold ones exactly."""

    @pytest.mark.parametrize(
        "label, make_kb, variant, cut, total",
        FAMILIES,
        ids=[f"{f[0]}-{f[2]}-{f[3]}+{f[4]}" for f in FAMILIES],
    )
    def test_resume_equals_cold(self, tmp_path, label, make_kb, variant, cut, total):
        kb = make_kb()
        cold = run_chase(kb, variant=variant, max_steps=total)

        store = SnapshotStore(tmp_path)
        first = ChaseEngine(kb, variant=variant)
        first.run(cut)
        store.save(kb, first.export_state())

        warm = ChaseEngine(kb, variant=variant)
        state = store.load(kb, variant, 1)
        assert state is not None
        warm.restore_state(state)
        result = warm.resume(total - cut)

        assert warm.current_instance == cold.final_instance
        assert isomorphic(warm.current_instance, cold.final_instance)
        assert state.applications + result.applications == cold.applications
        assert result.terminated == cold.terminated

    @pytest.mark.parametrize("variant", ["restricted", "core"])
    def test_terminated_snapshot_resumes_to_zero_work(self, tmp_path, variant):
        kb = random_kb(seed=3)
        cold = run_chase(kb, variant=variant, max_steps=400)
        assert cold.terminated

        store = SnapshotStore(tmp_path)
        engine = ChaseEngine(kb, variant=variant)
        engine.run(400)
        store.save(kb, engine.export_state())

        warm = ChaseEngine(kb, variant=variant)
        warm.restore_state(store.load(kb, variant, 1))
        result = warm.resume(100)
        assert result.applications == 0
        assert result.terminated
        assert warm.current_instance == cold.final_instance

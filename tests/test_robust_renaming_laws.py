"""Property-based tests for the robust renaming (Definition 14) laws,
using genuine retractions obtained from core computations on random
atomsets."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.aggregation import RobustSequence, default_variable_key
from repro.chase.derivation import Derivation, DerivationStep
from repro.logic.atoms import Atom, Predicate
from repro.logic.atomset import AtomSet
from repro.logic.cores import core_retraction
from repro.logic.isomorphism import isomorphic
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_rules
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

VARIABLES = [Variable(f"R{i}") for i in range(5)]
CONSTANTS = [Constant(c) for c in "ab"]
PREDICATES = [Predicate("p", 1), Predicate("e", 2)]

SETTINGS = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def atomsets(draw):
    atoms = draw(
        st.lists(
            st.builds(
                lambda pred, args: Atom(pred, tuple(args[: pred.arity])),
                st.sampled_from(PREDICATES),
                st.lists(
                    st.sampled_from(VARIABLES + CONSTANTS),
                    min_size=2,
                    max_size=2,
                ),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return AtomSet(atoms)


def robust_renaming_of(retraction: Substitution, pre_instance: AtomSet):
    """Expose the Definition 14 renaming through a one-step derivation."""
    kb = KnowledgeBase(pre_instance, parse_rules("[Noop] p(X) -> p(X)"))
    image = retraction.apply(pre_instance)
    step0 = DerivationStep(0, None, pre_instance, retraction, image)
    sequence = RobustSequence(Derivation(kb, [step0]))
    return sequence


@SETTINGS
@given(atomsets())
def test_g0_isomorphic_to_f0(atoms):
    """ρ_σ is an isomorphism from σ(A) to τ_σ(A)."""
    retraction = core_retraction(atoms)
    sequence = robust_renaming_of(retraction, atoms)
    assert isomorphic(sequence.instances[0], retraction.apply(atoms))


@SETTINGS
@given(atomsets())
def test_renaming_never_increases_the_order(atoms):
    """For any variable X of A: τ_σ(X) is a constant or τ_σ(X) ≤_X X."""
    retraction = core_retraction(atoms)
    sequence = robust_renaming_of(retraction, atoms)
    tau0 = sequence.tau[0]
    for var in atoms.variables():
        image = tau0.apply_term(var)
        if isinstance(image, Variable):
            assert default_variable_key(image) <= default_variable_key(var)


@SETTINGS
@given(atomsets())
def test_renamed_image_variables_are_fiber_minima(atoms):
    """ρ_σ(X) is the <_X-smallest variable of σ⁻¹(X)."""
    retraction = core_retraction(atoms)
    image = retraction.apply(atoms)
    sequence = robust_renaming_of(retraction, atoms)
    tau0 = sequence.tau[0]
    fibers: dict = {}
    for var in atoms.variables():
        fibers.setdefault(retraction.apply_term(var), []).append(var)
    for image_var, fiber in fibers.items():
        if not isinstance(image_var, Variable):
            continue
        expected = min(fiber, key=default_variable_key)
        assert tau0.apply_term(image_var) == expected


@SETTINGS
@given(atomsets())
def test_rho_is_isomorphism_witness(atoms):
    """ρ_0 maps F_0 exactly onto G_0."""
    retraction = core_retraction(atoms)
    image = retraction.apply(atoms)
    sequence = robust_renaming_of(retraction, atoms)
    assert sequence.rho[0].apply(image) == sequence.instances[0]

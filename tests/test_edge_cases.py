"""Edge cases and failure-injection tests across the library."""

import pytest

from repro.chase import restricted_chase, run_chase, triggers
from repro.chase.engine import ChaseVariant
from repro.logic.atoms import Atom, Predicate, atom
from repro.logic.cores import core_of, is_core
from repro.logic.homomorphism import find_homomorphism
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom, parse_atoms, parse_rule, parse_rules
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.treewidth import treewidth


class TestZeroArityPredicates:
    def test_parse_and_chase(self):
        kb = KnowledgeBase(
            parse_atoms("start"),
            parse_rules("[Go] start -> done"),
        )
        result = restricted_chase(kb, max_steps=10)
        assert result.terminated
        assert parse_atom("done") in result.final_instance

    def test_zero_ary_treewidth(self):
        assert treewidth(parse_atoms("halted")) == -1  # no terms at all

    def test_zero_ary_homomorphism(self):
        assert find_homomorphism(parse_atoms("go"), parse_atoms("go")) is not None
        assert find_homomorphism(parse_atoms("go"), parse_atoms("stop")) is None


class TestPrimedVariableNames:
    def test_parser_accepts_primes(self):
        at = parse_atom("h(X', Y'')")
        names = sorted(v.name for v in at.variables())
        assert names == ["X'", "Y''"]

    def test_rule_with_primes(self):
        rule = parse_rule("h(X, X) -> v(X, X'), c(X')")
        assert Variable("X'") in rule.existential


class TestConstantsInRuleHeads:
    def test_head_constant_created(self):
        kb = KnowledgeBase(
            parse_atoms("p(x1)"),
            parse_rules("[Tag] p(X) -> labelled(X, gold)"),
        )
        result = restricted_chase(kb, max_steps=10)
        assert parse_atom("labelled(x1, gold)") in result.final_instance

    def test_body_constant_filters_triggers(self):
        rule = parse_rule("[R] p(X, special) -> q(X)")
        instance = parse_atoms("p(a, special), p(b, other)")
        assert len(list(triggers(rule, instance))) == 1


class TestNullsInFacts:
    def test_facts_may_contain_nulls(self):
        # the paper's own F_h / F_v are null-based fact sets
        kb = KnowledgeBase(
            parse_atoms("p(N0, N1)"),
            parse_rules("[R] p(X, Y) -> p(Y, X)"),
        )
        result = restricted_chase(kb, max_steps=10)
        assert result.terminated
        assert len(result.final_instance) == 2

    def test_fresh_nulls_never_collide_with_fact_nulls(self):
        kb = KnowledgeBase(
            parse_atoms("p(N0)"),
            parse_rules("[R] p(X) -> q(X, Y)"),
        )
        result = restricted_chase(kb, max_steps=10)
        new_vars = result.final_instance.variables() - kb.facts.variables()
        assert all(v.name.startswith("_n") for v in new_vars)


class TestOnStepHookErrors:
    def test_hook_exception_propagates(self):
        kb = KnowledgeBase(parse_atoms("p(a)"), parse_rules("[R] p(X) -> q(X)"))

        def explode(step):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_chase(kb, max_steps=5, on_step=explode)


class TestSelfJoinBodies:
    def test_body_with_repeated_predicate(self):
        rule = parse_rule("[R] e(X, Y), e(Y, X) -> mutual(X, Y)")
        instance = parse_atoms("e(a, b), e(b, a), e(a, c)")
        found = list(triggers(rule, instance))
        assert len(found) == 2  # (a,b) and (b,a)

    def test_body_atom_with_repeated_variable(self):
        rule = parse_rule("[R] e(X, X) -> loop(X)")
        instance = parse_atoms("e(a, a), e(a, b)")
        assert len(list(triggers(rule, instance))) == 1


class TestCoreEdgeCases:
    def test_core_of_disconnected_components(self):
        # each component cores independently; the fork folds, the
        # constant edge stays
        atoms = parse_atoms("e(X, Y), e(X, Z), f(a, b)")
        core = core_of(atoms)
        assert len(core) == 2

    def test_core_with_zero_ary_atoms(self):
        atoms = parse_atoms("flag, p(X), p(Y)")
        core = core_of(atoms)
        assert parse_atom("flag") in core
        assert len(core) == 2

    def test_single_atom_sets(self):
        assert is_core(parse_atoms("p(X, X, X)"))


class TestSubstitutionEdgeCases:
    def test_apply_to_zero_ary_atom(self):
        sigma = Substitution({Variable("X"): Constant("a")})
        at = Atom(Predicate("go", 0), ())
        assert sigma.apply_atom(at) == at

    def test_identity_substitution_reuses_atoms(self):
        at = atom("p", "X")
        assert Substitution.identity().apply_atom(at) is at

    def test_chained_renaming_composes_to_constant(self):
        X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
        step1 = Substitution({X: Y})
        step2 = Substitution({Y: Z})
        step3 = Substitution({Z: Constant("end")})
        total = step3.compose(step2.compose(step1))
        assert total.apply_term(X) == Constant("end")


class TestEngineWithMultipleRulesSharingPredicates:
    def test_interleaving_is_deterministic_and_fair(self):
        kb = KnowledgeBase(
            parse_atoms("a(x1), b(x1)"),
            parse_rules(
                """
                [FromA] a(X) -> c(X)
                [FromB] b(X) -> c(X), d(X)
                [FromC] c(X) -> e(X)
                """
            ),
        )
        result = run_chase(kb, variant=ChaseVariant.RESTRICTED, max_steps=50)
        assert result.terminated
        assert parse_atom("e(x1)") in result.final_instance

    def test_large_head_single_application(self):
        kb = KnowledgeBase(
            parse_atoms("seed(s)"),
            parse_rules(
                "[Big] seed(X) -> n1(X, A), n2(A, B), n3(B, C), n4(C, D)"
            ),
        )
        result = restricted_chase(kb, max_steps=5)
        assert result.terminated
        assert result.applications == 1
        assert len(result.final_instance.variables()) == 4

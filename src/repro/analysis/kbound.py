"""Bounded probing for k-boundedness of the (oblivious) chase.

Delivorias, Leclère, Mugnier and Ulliana (arXiv:1810.09304 /
2004.10030) study *k-bounded* rulesets: those whose chase saturates
within ``k`` breadth-first levels on every instance.  Deciding
k-boundedness in general is hard; what the planner needs is far
cheaper — a *probe* that runs the first ``k`` breadth levels of the
oblivious chase on the KB at hand and reports the level at which a
fixpoint was reached, if any.

Breadth level ``i`` applies every not-yet-applied trigger of the level
``i-1`` instance (triggers are collected *before* any of the level's
atoms are added, which is what makes the levels breadth-first), with
the oblivious trigger identity — rule plus full body image — as the
dedup key.  By construction the reported fixpoint level is monotone in
the probing budget: raising ``k_max`` never changes a fixpoint already
found at a lower level, it can only discover one past the old horizon.

The probe is instance-specific (it certifies this KB, not the ruleset
uniformly), so the planner treats its verdict as advisory routing: the
strategy it selects still carries the budgets that make a wrong route
degrade to a sound "undecided" answer rather than a wrong one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..chase.trigger import triggers
from ..logic.kb import KnowledgeBase
from ..logic.substitution import Substitution
from ..logic.terms import FreshVariableSource, Term, Variable

__all__ = ["BreadthProbe", "probe_k_bound"]

#: Fresh-null prefix distinct from the engine's ``_n`` so probe nulls
#: can never collide with nulls a chase of the same KB would mint.
_PROBE_PREFIX = "_kbp"


@dataclass
class BreadthProbe:
    """Outcome of probing the first ``k_max`` breadth levels.

    ``fixpoint_level`` is the breadth level at which the oblivious
    chase of this KB saturated (0 = the facts are already closed), or
    None if no fixpoint was seen within the probe's budgets.
    ``exhausted`` distinguishes "no fixpoint within k_max levels" from
    "the atom budget cut the probe short".
    """

    fixpoint_level: Optional[int]
    levels: list = field(default_factory=list)  #: atom count after each level
    applications: int = 0
    exhausted: bool = False

    @property
    def bounded(self) -> bool:
        return self.fixpoint_level is not None


def probe_k_bound(
    kb: KnowledgeBase,
    k_max: int = 8,
    atom_budget: int = 2000,
) -> BreadthProbe:
    """Run the first *k_max* breadth levels of the oblivious chase.

    Deterministic: rules are visited in ruleset order and triggers in
    their canonical sort order, and fresh nulls come from a private
    source, so the same KB always yields the same probe.
    """
    instance = kb.facts.copy()
    fresh = FreshVariableSource(prefix=_PROBE_PREFIX)
    applied: set = set()
    probe = BreadthProbe(fixpoint_level=None)
    for level in range(1, k_max + 1):
        pending = []
        for rule in kb.rules:
            for trigger in triggers(rule, instance):
                key = (rule.name, trigger.full_image())
                if key in applied:
                    continue
                pending.append((key, trigger))
        if not pending:
            probe.fixpoint_level = level - 1
            return probe
        grew = False
        for key, trigger in pending:
            applied.add(key)
            probe.applications += 1
            rule = trigger.rule
            safe_map: dict[Variable, Term] = {
                var: trigger.mapping.apply_term(var) for var in rule.frontier
            }
            for var in sorted(rule.existential, key=lambda v: v.name):
                safe_map[var] = fresh.fresh(hint=var)
            pi_safe = Substitution(safe_map)
            for atom in rule.head.sorted_atoms():
                if instance.add(pi_safe.apply_atom(atom)):
                    grew = True
        probe.levels.append(len(instance))
        if not grew:
            # The level applied triggers but derived nothing new: the
            # instance saturated at this level (the next level would
            # find no unapplied triggers).
            probe.fixpoint_level = level
            return probe
        if len(instance) > atom_budget:
            probe.exhausted = True
            return probe
    probe.exhausted = True
    return probe

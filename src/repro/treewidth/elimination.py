"""Elimination orderings and heuristic treewidth upper bounds.

Every elimination ordering of a graph induces a tree decomposition whose
width is the maximum degree encountered when eliminating along the order
(make the neighborhood a clique, remove the vertex).  Conversely, every
tree decomposition induces an elimination ordering of no larger width, so
treewidth = minimum width over all orderings — the formulation both the
heuristics here and the exact branch-and-bound in
:mod:`repro.treewidth.exact` operate on.

Heuristics provided (both classical):

* ``min_degree`` — always eliminate a vertex of minimum current degree;
* ``min_fill`` — always eliminate a vertex whose elimination adds the
  fewest fill edges (usually tighter, slightly slower).
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from .decomposition import TreeDecomposition
from .graph import Graph

__all__ = [
    "eliminate_in_order",
    "decomposition_from_order",
    "min_degree_order",
    "min_fill_order",
    "treewidth_upper_bound",
]

Vertex = Hashable


def eliminate_in_order(graph: Graph, order: Sequence[Vertex]) -> int:
    """The width of an elimination ordering: the maximum elimination
    degree along *order* (which must enumerate all vertices)."""
    working = graph.copy()
    width = -1
    for v in order:
        width = max(width, working.eliminate(v))
    if len(working):
        raise ValueError("order does not cover all vertices")
    return width


def decomposition_from_order(
    graph: Graph, order: Sequence[Vertex]
) -> TreeDecomposition:
    """Build the tree decomposition induced by an elimination ordering.

    Bag of ``v`` = ``{v} ∪ N(v)`` at elimination time; the bag of ``v`` is
    attached to the bag of the *earliest-eliminated later neighbor* of
    ``v`` (standard construction, preserves both decomposition
    conditions).
    """
    working = graph.copy()
    position = {v: i for i, v in enumerate(order)}
    bags: list[frozenset] = []
    edges: list[tuple[int, int]] = []
    bag_index: dict[Vertex, int] = {}
    for v in order:
        neighbors = working.neighbors(v)
        bags.append(frozenset(neighbors | {v}))
        bag_index[v] = len(bags) - 1
        working.eliminate(v)
    for v in order:
        neighbors = [u for u in bags[bag_index[v]] if u != v]
        later = [u for u in neighbors if position[u] > position[v]]
        if later:
            successor = min(later, key=lambda u: position[u])
            edges.append((bag_index[v], bag_index[successor]))
    return TreeDecomposition(bags, edges)


def min_degree_order(graph: Graph) -> list[Vertex]:
    """Elimination order by the minimum-degree heuristic."""
    return _greedy_order(graph, lambda g, v: (g.degree(v), repr(v)))


def min_fill_order(graph: Graph) -> list[Vertex]:
    """Elimination order by the minimum-fill-in heuristic."""
    return _greedy_order(graph, lambda g, v: (g.fill_in_count(v), g.degree(v), repr(v)))


def _greedy_order(
    graph: Graph, key: Callable[[Graph, Vertex], tuple]
) -> list[Vertex]:
    working = graph.copy()
    order: list[Vertex] = []
    while len(working):
        chosen = min(working.vertices(), key=lambda v: key(working, v))
        order.append(chosen)
        working.eliminate(chosen)
    return order


def treewidth_upper_bound(
    graph: Graph, heuristic: str = "min_fill"
) -> tuple[int, TreeDecomposition]:
    """A heuristic treewidth upper bound plus a witnessing decomposition.

    ``heuristic`` is ``"min_fill"`` (default) or ``"min_degree"``; the
    returned decomposition always validates against *graph*.
    """
    if heuristic == "min_fill":
        order = min_fill_order(graph)
    elif heuristic == "min_degree":
        order = min_degree_order(graph)
    else:
        raise ValueError(f"unknown heuristic {heuristic!r}")
    decomposition = decomposition_from_order(graph, order)
    return decomposition.width, decomposition

"""A small academic-domain ontology — a realistic guarded workload.

The introduction of the paper motivates treewidth-based decidability
with "many existential rule fragments of high practical relevance,
mostly based on varying notions of guardedness".  This module provides a
compact but non-toy ontology in that spirit: all rules are guarded (one
body atom carries all body variables), so the rule set is **bts** — its
restricted chase stays treewidth-bounded — even though the chase does
not terminate (supervisors acquire supervisors forever).

Schema: ``prof(X)``, ``phd(X)``, ``teaches(X, C)``, ``course(C)``,
``supervises(X, Y)``, ``memberOf(X, D)``, ``dept(D)``, ``colleague(X, Y)``.
"""

from __future__ import annotations

from ..logic.kb import KnowledgeBase
from ..logic.parser import parse_atoms, parse_rules

__all__ = ["academia_kb"]

_RULES = """
# every professor teaches some course
[TeachesSomething] prof(X) -> teaches(X, C), course(C)
# every PhD student is supervised by a professor
[HasSupervisor] phd(X) -> supervises(Y, X), prof(Y)
# professors belong to a department
[HasDept] prof(X) -> memberOf(X, D), dept(D)
# a supervisor of a department member is a colleague of its members
[SupIsStaff] supervises(X, Y) -> memberOf(X, D), dept(D)
# teaching staff of a course are professors
[TeacherIsProf] teaches(X, C) -> prof(X)
# supervision is between people of the university
[SupervisedIsPhd] supervises(X, Y) -> phd(Y)
# every professor has a (more senior) mentor professor: the source of
# non-termination — mentor chains grow forever, but stay paths (tw 1)
[HasMentor] prof(X) -> mentor(X, Y), prof(Y)
"""

_FACTS = """
prof(turing), phd(kleene), teaches(turing, computability),
course(computability), supervises(church, kleene)
"""


def academia_kb() -> KnowledgeBase:
    """The academia ontology KB (guarded, hence bts; not fes: the
    supervision chain never closes)."""
    return KnowledgeBase(
        parse_atoms(_FACTS), parse_rules(_RULES), name="academia"
    )

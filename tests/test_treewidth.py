"""Tests for the treewidth substrate: decompositions, heuristics, exact
solver, lower bounds."""

import pytest

from repro.kbs.generators import grid_instance
from repro.logic.atomset import AtomSet
from repro.logic.parser import parse_atoms
from repro.treewidth import (
    SearchBudgetExceeded,
    TreeDecomposition,
    decomposition_from_order,
    gaifman_graph,
    has_width_at_most,
    min_degree_order,
    min_fill_order,
    mmd_lower_bound,
    treewidth,
    treewidth_bounds,
    treewidth_exact,
    treewidth_upper_bound,
)
from repro.treewidth.graph import Graph


def path_graph(n: int) -> Graph:
    return Graph((i, i + 1) for i in range(n - 1))


def cycle_graph(n: int) -> Graph:
    return Graph(((i, (i + 1) % n) for i in range(n)))


def complete_graph(n: int) -> Graph:
    g = Graph()
    g.add_clique(range(n))
    return g


def grid_graph(n: int) -> Graph:
    return gaifman_graph(grid_instance(n))


class TestGaifman:
    def test_atom_terms_form_clique(self):
        atoms = parse_atoms("t(X, Y, Z)")
        g = gaifman_graph(atoms)
        assert g.edge_count() == 3

    def test_unary_atoms_isolated(self):
        g = gaifman_graph(parse_atoms("p(X), q(Y)"))
        assert len(g) == 2
        assert g.edge_count() == 0

    def test_shared_terms_connect(self):
        g = gaifman_graph(parse_atoms("e(X, Y), e(Y, Z)"))
        assert g.has_edge(*(t for t in parse_atoms("e(X, Y)").terms()))


class TestDecomposition:
    def test_width_computation(self):
        dec = TreeDecomposition([["a", "b"], ["b", "c", "d"]], [(0, 1)])
        assert dec.width == 2

    def test_empty_decomposition_width(self):
        assert TreeDecomposition([]).width == -1

    def test_tree_check_rejects_cycle(self):
        dec = TreeDecomposition(
            [["a"], ["a"], ["a"]], [(0, 1), (1, 2), (2, 0)]
        )
        assert not dec.is_tree()

    def test_edge_reference_validation(self):
        with pytest.raises(ValueError):
            TreeDecomposition([["a"]], [(0, 5)])

    def test_valid_path_decomposition(self):
        atoms = parse_atoms("e(X, Y), e(Y, Z)")
        X, Y, Z = (t for t in sorted(atoms.terms(), key=lambda t: t.name))
        dec = TreeDecomposition([[X, Y], [Y, Z]], [(0, 1)])
        assert dec.validate_for_atoms(atoms)

    def test_connectivity_violation_detected(self):
        atoms = parse_atoms("e(X, Y), e(Y, Z)")
        X, Y, Z = (t for t in sorted(atoms.terms(), key=lambda t: t.name))
        # Y appears in bags 0 and 2, which are not adjacent
        dec = TreeDecomposition([[X, Y], [X, Z], [Y, Z]], [(0, 1), (1, 2)])
        assert not dec.validate_for_atoms(atoms)

    def test_coverage_violation_detected(self):
        atoms = parse_atoms("t(X, Y, Z)")
        X, Y, Z = (t for t in sorted(atoms.terms(), key=lambda t: t.name))
        dec = TreeDecomposition([[X, Y], [Y, Z]], [(0, 1)])
        assert not dec.validate_for_atoms(atoms)


class TestHeuristics:
    @pytest.mark.parametrize("order_fn", [min_degree_order, min_fill_order])
    def test_orders_cover_all_vertices(self, order_fn):
        g = cycle_graph(6)
        order = order_fn(g)
        assert sorted(order) == sorted(g.vertices())

    @pytest.mark.parametrize("order_fn", [min_degree_order, min_fill_order])
    def test_induced_decomposition_validates(self, order_fn):
        g = grid_graph(3)
        dec = decomposition_from_order(g, order_fn(g))
        assert dec.validate_for_graph(g)

    def test_heuristic_on_tree_is_exact(self):
        g = path_graph(8)
        width, dec = treewidth_upper_bound(g)
        assert width == 1
        assert dec.validate_for_graph(g)

    def test_heuristic_upper_bounds_exact(self):
        g = grid_graph(4)
        upper, _ = treewidth_upper_bound(g)
        assert upper >= 4

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            treewidth_upper_bound(path_graph(3), "magic")


class TestLowerBounds:
    def test_mmd_on_clique(self):
        assert mmd_lower_bound(complete_graph(5)) == 4

    def test_mmd_on_tree(self):
        assert mmd_lower_bound(path_graph(6)) == 1

    def test_mmd_on_grid(self):
        assert mmd_lower_bound(grid_graph(4)) >= 2

    def test_mmd_never_exceeds_exact(self):
        for g in (path_graph(5), cycle_graph(5), complete_graph(4), grid_graph(3)):
            assert mmd_lower_bound(g) <= treewidth_exact(g)


class TestExact:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(6), 1),
            (cycle_graph(5), 2),
            (complete_graph(4), 3),
            (complete_graph(6), 5),
            (grid_graph(2), 2),
            (grid_graph(3), 3),
            (grid_graph(4), 4),
        ],
    )
    def test_known_treewidths(self, graph, expected):
        assert treewidth_exact(graph) == expected

    def test_empty_graph(self):
        assert treewidth_exact(Graph()) == -1

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex(0)
        assert treewidth_exact(g) == 0

    def test_disconnected_components_take_max(self):
        g = complete_graph(4)
        for i in range(10, 14):
            g.add_edge(i, i + 1)
        assert treewidth_exact(g) == 3

    def test_has_width_at_most(self):
        g = cycle_graph(6)
        assert not has_width_at_most(g, 1)
        assert has_width_at_most(g, 2)

    def test_budget_exhaustion_raises(self):
        g = grid_graph(5)
        with pytest.raises(SearchBudgetExceeded):
            treewidth_exact(g, state_budget=3)


class TestAtomsetEntryPoints:
    def test_treewidth_of_atomsets(self):
        assert treewidth(parse_atoms("e(X, Y), e(Y, Z)")) == 1
        assert treewidth(parse_atoms("t(X, Y, Z)")) == 2
        assert treewidth(AtomSet()) == -1
        assert treewidth(parse_atoms("p(X)")) == 0

    def test_treewidth_monotone_under_subset(self):
        """Fact 1 of the paper."""
        small = parse_atoms("e(X, Y)")
        large = parse_atoms("e(X, Y), e(Y, Z), e(Z, X)")
        assert treewidth(small) <= treewidth(large)

    def test_bounds_bracket_exact(self):
        atoms = grid_instance(3)
        low, high = treewidth_bounds(atoms)
        exact = treewidth(atoms)
        assert low <= exact <= high

    def test_bounds_of_empty(self):
        assert treewidth_bounds(AtomSet()) == (-1, -1)

"""Perf table for delta snapshots: cold vs exact-warm vs ancestor-incremental.

Each row is one grow-by-k serving scenario: a base KB is chased once
(populating the snapshot store), then the *grown* KB — the same rules
with k new facts — is requested three ways:

* **cold** — no store: the full chase from scratch, the price every
  request paid before ancestor resolution existed;
* **ancestor-incremental** — exact snapshot miss, nearest-ancestor hit:
  the base KB's checkpoint is loaded, the k missing facts injected as a
  delta, and only their consequences derived;
* **exact-warm** — the repeat of the grown request: the incremental
  run's save (a delta record chained on the ancestor's records) now
  hits exactly, with zero new rule applications.

The terminating chain rows double as a correctness gate (incremental
final instance must equal the cold fixpoint atom-for-atom); the
budget-bounded staircase/elevator rows check the application ledger
(``prior + new == cold``) — two fair schedules of a non-terminating
chase share no final instance to compare.

Archived tables (``benchmarks/results/``):

* ``perf_snapshots.json`` — the combined gate table (committed baseline
  in ``benchmarks/baselines/``; the CI ``snapshot-gate`` job diffs
  ``incr_seconds`` against it);
* ``perf_snapshots_cold.json`` / ``perf_snapshots_incr.json`` — the
  same rows split per mode for same-machine floor/ceiling compares
  (``--min-speedup`` / ``--max-ratio``).
"""

import tempfile
import time

from repro.kbs.elevator import elevator_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import transitive_closure_kb
from repro.logic.homcache import get_cache
from repro.logic.serialization import dump_kb
from repro.service.jobs import JobRequest, execute_job
from repro.service.snapshots import SnapshotStore
from repro.util import Table

from conftest import save_table


def _grown(kb_text: str, extra_fact_lines) -> str:
    return kb_text.replace(
        "[facts]", "[facts]\n" + "\n".join(extra_fact_lines), 1
    )


def _chain_text(length: int) -> str:
    return dump_kb(transitive_closure_kb(length))


#: (workload, base KB text, new fact lines, variant, prefix steps,
#:  request budget, terminating) — the grow-by-k scenarios.
SNAPSHOT_ROWS = (
    (
        "staircase-core",
        dump_kb(staircase_kb()),
        ["f(s1)", "h(s1, s1)"],
        "core",
        36,
        42,
        False,
    ),
    (
        "elevator-core",
        dump_kb(elevator_kb()),
        ["d(z9)"],
        "core",
        25,
        30,
        False,
    ),
    (
        "chain-grow-by-1",
        _chain_text(20),
        ["e(v20, v21)"],
        "restricted",
        600,
        600,
        True,
    ),
    (
        "chain-grow-by-3",
        _chain_text(16),
        ["e(v16, v17)", "e(v17, v18)", "e(v5, v16)"],
        "restricted",
        600,
        600,
        True,
    ),
)


def _timed_job(request, store=None):
    get_cache().clear()
    started = time.perf_counter()
    result = execute_job(request, store)
    seconds = time.perf_counter() - started
    assert result.ok, result.error
    return seconds, result


def bench_perf_snapshots_table():
    """Archive the cold/warm/incremental timing tables."""
    combined = Table(
        [
            "workload",
            "variant",
            "max_steps",
            "cold_apps",
            "incr_apps",
            "cold_seconds",
            "incr_seconds",
            "warm_seconds",
            "incr_speedup",
        ],
        title="perf: snapshots, cold vs exact-warm vs ancestor-incremental",
    )
    cold_table = Table(
        ["workload", "variant", "max_steps", "seconds"],
        title="perf: snapshot scenarios, cold chase",
    )
    incr_table = Table(
        ["workload", "variant", "max_steps", "seconds"],
        title="perf: snapshot scenarios, ancestor-incremental resume",
    )

    for (
        workload,
        base_text,
        extra,
        variant,
        prefix_steps,
        budget,
        terminating,
    ) in SNAPSHOT_ROWS:
        grown_text = _grown(base_text, extra)
        with tempfile.TemporaryDirectory(prefix="repro-bench-snap-") as scratch:
            store = SnapshotStore(scratch)
            _timed_job(
                JobRequest(
                    op="chase",
                    kb_text=base_text,
                    variant=variant,
                    max_steps=prefix_steps,
                ),
                store,
            )
            grown_request = JobRequest(
                op="chase",
                kb_text=grown_text,
                variant=variant,
                max_steps=budget,
            )
            cold_seconds, cold = _timed_job(grown_request)
            incr_seconds, incr = _timed_job(grown_request, store)
            warm_seconds, warm = _timed_job(grown_request, store)

        assert incr.ancestor, f"{workload}: grown job did not ancestor-resume"
        assert warm.warm and warm.applications == 0, (
            f"{workload}: repeat grown job did not exact-warm-hit"
        )
        assert incr.applications < cold.applications
        assert warm.instance == incr.instance
        if terminating:
            # the fixpoint is unique: incremental must equal cold exactly
            assert incr.terminated and cold.terminated
            assert incr.instance == cold.instance, (
                f"{workload}: incremental fixpoint differs from cold"
            )
        else:
            # budget-bounded rows: the application ledger must add up —
            # the resumed prefix plus the new work is the request budget,
            # exactly what the cold run paid.  (Terminating multi-edge
            # growths may take a different application count to the same
            # fixpoint: trigger-satisfaction order is schedule-dependent.)
            assert incr.total_applications == cold.total_applications

        combined.add_row(
            workload,
            variant,
            budget,
            cold.applications,
            incr.applications,
            round(cold_seconds, 4),
            round(incr_seconds, 4),
            round(warm_seconds, 4),
            round(cold_seconds / max(incr_seconds, 1e-9), 1),
        )
        cold_table.add_row(workload, variant, budget, round(cold_seconds, 4))
        incr_table.add_row(workload, variant, budget, round(incr_seconds, 4))

    save_table(
        "perf_snapshots",
        combined,
        "incremental rows resume the base KB's snapshot plus the grown "
        "facts; chain rows additionally assert the incremental fixpoint "
        "equals the cold one atom-for-atom.",
    )
    save_table("perf_snapshots_cold", cold_table)
    save_table("perf_snapshots_incr", incr_table)

"""The Figure 1 / Proposition 13 class landscape, demonstrated on the
witness KBs.

fes  = terminating core chase;
bts  = some treewidth-bounded restricted chase sequence;
core-bts = some recurringly treewidth-bounded core chase sequence.

The four protagonists:

================  ====  ====  ========  =======================
KB                fes   bts   core-bts  tw-finite universal model
================  ====  ====  ========  =======================
bts-not-fes        no   yes     yes      yes (infinite path)
fes-not-bts        yes  no      yes      yes (finite!)
steepening K_h     no   no      yes      NO
inflating  K_v     no   no      no       yes (the diagonal)
================  ====  ====  ========  =======================
"""


from repro.analysis import TREEWIDTH, certify_fes, profile_chase
from repro.chase.engine import ChaseVariant
from repro.kbs.staircase import staircase_kb
from repro.kbs.elevator import elevator_kb
from repro.kbs.witnesses import bts_not_fes_kb, fes_not_bts_kb


class TestBtsNotFes:
    def test_core_chase_diverges(self):
        assert certify_fes(bts_not_fes_kb(), max_steps=15) is None

    def test_restricted_chase_treewidth_1(self):
        profile = profile_chase(
            bts_not_fes_kb(),
            variant=ChaseVariant.RESTRICTED,
            measure=TREEWIDTH,
            max_steps=12,
        )
        assert profile.uniform == 1

    def test_core_chase_treewidth_1(self):
        profile = profile_chase(
            bts_not_fes_kb(),
            variant=ChaseVariant.CORE,
            measure=TREEWIDTH,
            max_steps=12,
        )
        assert profile.uniform == 1  # core-bts with uniform bound 1


class TestFesNotBts:
    def test_core_chase_terminates(self):
        assert certify_fes(fes_not_bts_kb(), max_steps=100) is not None

    def test_restricted_chase_treewidth_grows(self):
        profile = profile_chase(
            fes_not_bts_kb(),
            variant=ChaseVariant.RESTRICTED,
            measure=TREEWIDTH,
            max_steps=25,
        )
        assert not profile.terminated
        assert profile.uniform > profile.values[0]

    def test_core_chase_treewidth_stays_bounded(self):
        profile = profile_chase(
            fes_not_bts_kb(),
            variant=ChaseVariant.CORE,
            measure=TREEWIDTH,
            max_steps=100,
        )
        assert profile.terminated  # fes: trivially uniformly bounded


class TestStaircaseClassification:
    def test_not_fes(self):
        assert certify_fes(staircase_kb(), max_steps=25) is None

    def test_core_chase_uniformly_2_bounded(self, staircase_core_run):
        from repro.treewidth import treewidth

        widths = [treewidth(s.instance) for s in staircase_core_run.derivation]
        assert max(widths) <= 2

    def test_restricted_chase_unbounded(self, staircase_restricted_run):
        """Not bts via this (fair) sequence: grids grow in the monotone
        prefix — and Prop. 5 says *no* universal model (hence no fair
        restricted sequence) avoids them."""
        from repro.treewidth import grid_lower_bound

        final = staircase_restricted_run.final_instance
        assert grid_lower_bound(final, max_n=2) == 2


class TestElevatorClassification:
    def test_not_fes(self):
        assert certify_fes(elevator_kb(), max_steps=20) is None

    def test_core_chase_not_bounded(self, elevator_core_run):
        from repro.treewidth import treewidth

        widths = [treewidth(s.instance) for s in elevator_core_run.derivation]
        assert widths[-1] > widths[0]

    def test_has_tw1_universal_model(self):
        from repro.kbs import elevator as el
        from repro.treewidth import treewidth

        assert treewidth(el.diagonal_model(5)) == 1


class TestSubsumption:
    """Proposition 13: core-bts subsumes both fes and bts."""

    def test_fes_witness_is_core_bts(self):
        # terminating core chase => trivially uniformly bounded
        profile = profile_chase(
            fes_not_bts_kb(),
            variant=ChaseVariant.CORE,
            measure=TREEWIDTH,
            max_steps=100,
        )
        assert profile.terminated

    def test_bts_witness_is_core_bts(self):
        profile = profile_chase(
            bts_not_fes_kb(),
            variant=ChaseVariant.CORE,
            measure=TREEWIDTH,
            max_steps=12,
        )
        assert profile.uniform == 1

    def test_fes_and_bts_incomparable(self):
        assert certify_fes(fes_not_bts_kb(), max_steps=100) is not None
        assert certify_fes(bts_not_fes_kb(), max_steps=15) is None

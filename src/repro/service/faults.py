"""Deterministic, seedable fault injection for the serving stack.

Worker loss is an *expected* event for this paper's workloads — the
core chase of the inflating elevator runs unboundedly and jobs die on
memory or timeout as a matter of course — so the fault-tolerance layer
(supervised executor, guaranteed-response server, snapshot hygiene)
needs a way to rehearse failures on demand.  This module provides it
without any test-only hooks in the production paths.

Fuses
-----
A fault is armed by writing a **fuse**: a tiny JSON file under a shared
*fault directory*, named ``<point>~<seq>.fault``.  Any process holding
the directory (the server, a pool worker, even one that was spawned
after arming) can :meth:`~FaultPlan.consume` a fuse for a given point;
the claim is an atomic :func:`os.rename`, so exactly one consumer fires
per fuse no matter how many workers race for it.  A consumed fuse is
renamed to ``.fired``, never deleted, so harnesses can count what
actually went off.

This file-based design is what makes injection work across the
``spawn`` process boundary: the executor only forwards the directory
path, and each worker discovers its armed faults on the next job.

Fault points
------------
=============================  ============================================
``worker.kill_mid_job``        the worker process dies mid-job
                               (``os._exit``; in the in-process
                               ``workers=0`` mode an :class:`OSError`
                               escapes the job body instead, exercising
                               the same executor-level failure path)
``worker.slow_job``            the worker sleeps ``payload["seconds"]``
                               before executing the job
``snapshot.corrupt_after_save``  the snapshot the job just saved is
                               overwritten with garbage (or truncated /
                               adversarially mangled, per
                               ``payload["mode"]``)
``server.drop_connection``     the server aborts the client connection
                               instead of writing the response
=============================  ============================================

Determinism
-----------
Arming is explicit and counted — ``plan.arm(point, times=2)`` fires
exactly twice — and :func:`schedule_fires` derives reproducible fire
indices from a seed for rate-style chaos runs, so a failing chaos run
can be replayed bit-for-bit from ``(seed, request script)``.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time
from typing import Optional, Union

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "corrupt_latest_snapshot",
    "fire_worker_faults",
    "schedule_fires",
]

PathLike = Union[str, "pathlib.Path"]

#: Every supported fault point (see the module docstring).
FAULT_POINTS = (
    "worker.kill_mid_job",
    "worker.slow_job",
    "snapshot.corrupt_after_save",
    "server.drop_connection",
)

_ARMED_SUFFIX = ".fault"
_FIRED_SUFFIX = ".fired"


class FaultPlan:
    """A directory of one-shot fault fuses shared across processes.

    The plan object itself is stateless — every query goes to the
    filesystem — so the same directory can be driven concurrently by a
    harness process, the server, and any number of pool workers.
    """

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- arming --------------------------------------------------------

    def arm(
        self, point: str, times: int = 1, payload: Optional[dict] = None
    ) -> list[pathlib.Path]:
        """Write *times* fuses for *point*; each fires exactly once.

        *payload* rides along as the fuse's JSON body and is returned by
        the :meth:`consume` that claims it (e.g. ``{"seconds": 0.2}``
        for ``worker.slow_job``)."""
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        if times < 1:
            raise ValueError("times must be >= 1")
        body = json.dumps(payload or {})
        existing = [
            self._seq_of(path) for path in self.root.glob(f"{point}~*")
        ]
        start = max(existing, default=-1) + 1
        fuses = []
        for offset in range(times):
            path = self.root / f"{point}~{start + offset:06d}{_ARMED_SUFFIX}"
            path.write_text(body)
            fuses.append(path)
        return fuses

    # -- consuming -----------------------------------------------------

    def consume(self, point: str) -> Optional[dict]:
        """Atomically claim one armed fuse for *point*.

        Returns the fuse's payload dict, or None when nothing is armed.
        Exactly one racing consumer wins each fuse (rename is atomic);
        losers simply move on to the next fuse or return None."""
        for path in sorted(self.root.glob(f"{point}~*{_ARMED_SUFFIX}")):
            claimed = path.with_suffix(_FIRED_SUFFIX)
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # already claimed, or torn write
            try:
                os.rename(path, claimed)
            except OSError:
                continue  # another consumer won this fuse
            return payload if isinstance(payload, dict) else {}
        return None

    # -- introspection -------------------------------------------------

    def armed(self, point: str) -> int:
        """Fuses for *point* not yet consumed."""
        return len(list(self.root.glob(f"{point}~*{_ARMED_SUFFIX}")))

    def fired(self, point: str) -> int:
        """Fuses for *point* already consumed."""
        return len(list(self.root.glob(f"{point}~*{_FIRED_SUFFIX}")))

    @staticmethod
    def _seq_of(path: pathlib.Path) -> int:
        try:
            return int(path.name.rsplit("~", 1)[1].split(".", 1)[0])
        except (IndexError, ValueError):
            return -1


# ---------------------------------------------------------------------------
# injection helpers (called from the instrumented paths)
# ---------------------------------------------------------------------------


def fire_worker_faults(plan: Optional[FaultPlan], in_process: bool) -> None:
    """Fire any armed worker-side faults; called at the top of a job.

    ``worker.slow_job`` sleeps, then ``worker.kill_mid_job`` kills: in a
    real pool worker via ``os._exit`` (the pool observes a dead worker
    and breaks), in the in-process mode via an :class:`OSError` raised
    *outside* :func:`~repro.service.jobs.execute_job`'s catch — either
    way the failure surfaces at the executor level, not as a job-level
    ``ok=False`` result, which is exactly the path the supervisor owns.
    """
    if plan is None:
        return
    payload = plan.consume("worker.slow_job")
    if payload is not None:
        time.sleep(float(payload.get("seconds", 0.05)))
    payload = plan.consume("worker.kill_mid_job")
    if payload is not None:
        if in_process:
            raise OSError("fault injected: simulated worker death")
        os._exit(int(payload.get("exit_code", 13)))


def fire_snapshot_corruption(
    plan: Optional[FaultPlan], snapshot_root: Optional[PathLike]
) -> None:
    """Fire an armed ``snapshot.corrupt_after_save``; called after a job.

    Corrupts the most recently written snapshot in *snapshot_root* (the
    one the job just saved) in the mode the fuse's payload names."""
    if plan is None or snapshot_root is None:
        return
    payload = plan.consume("snapshot.corrupt_after_save")
    if payload is not None:
        corrupt_latest_snapshot(snapshot_root, mode=payload.get("mode", "garbage"))


def corrupt_latest_snapshot(root: PathLike, mode: str = "garbage") -> Optional[pathlib.Path]:
    """Mangle the newest snapshot record under *root*; returns its path.

    Schema-2 stores keep their content-addressed records under
    ``root/objects/``; legacy schema-1 full blobs sit directly in
    *root* — both locations are searched, newest mtime wins (the record
    the job just saved).

    Modes: ``garbage`` (non-JSON bytes), ``truncate`` (torn tail) and
    ``adversarial`` (valid JSON envelope whose state decodes into
    nonsense — the case that must be *classified* corrupt rather than
    crash the worker)."""
    root = pathlib.Path(root)
    candidates = [
        path
        for directory in (root / "objects", root)
        if directory.is_dir()
        for path in directory.glob("*.json")
    ]
    candidates.sort(key=lambda path: path.stat().st_mtime)
    if not candidates:
        return None
    target = candidates[-1]
    if mode == "garbage":
        target.write_text("\x00not json at all\x00")
    elif mode == "truncate":
        text = target.read_text()
        target.write_text(text[: max(1, len(text) // 2)])
    elif mode == "adversarial":
        # A well-formed envelope that passes the schema check but whose
        # state (or delta) is structurally hostile to the deserializer.
        try:
            payload = json.loads(target.read_text())
        except ValueError:
            payload = {}
        hostile = {
            "variant": {"nested": ["garbage"]},
            "core_every": None,
            "instance": [[["deep", ["er"]], {"kind": 99}]],
            "applied_keys": [0.5],
            "ages": "not-a-list",
        }
        if payload.get("kind") == "delta":
            payload["delta"] = hostile
        else:
            payload["state"] = hostile
        target.write_text(json.dumps(payload))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return target


def schedule_fires(seed: int, population: int, rate: float) -> list[int]:
    """Reproducible fire indices: which of *population* slots fault.

    A chaos harness arms one fuse per returned index; the same
    ``(seed, population, rate)`` always yields the same schedule, so a
    failing run replays exactly."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    rng = random.Random(seed)
    return [index for index in range(population) if rng.random() < rate]

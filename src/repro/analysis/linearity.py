"""Chase-termination decision for the linear fragment.

A rule is *linear* when its body is a single atom.  For linear rulesets
the all-instance termination problem of the (oblivious) chase is
decidable — Leclère, Mugnier, Thomazo and Ulliana (arXiv:1810.02132)
give a single approach covering the whole linear fragment.  This module
implements the decision through two classical reductions:

1. **Critical instance** (Marnette).  The oblivious chase of a ruleset
   terminates on *every* instance iff it terminates on the critical
   instance ``crit(R)``: all atoms built from the constants of the rules
   plus one fresh constant ``*``.

2. **Shape abstraction.**  For a linear rule, whether a body atom
   matches depends only on the atom's *shape*: its predicate plus, per
   position, either the concrete constant or the equality class of the
   null sitting there.  Head atoms produced by a trigger likewise have
   shapes determined by the body shape alone (frontier positions copy
   the parent's entries, existential positions get fresh classes — one
   per existential variable).  The abstraction is exact for linear
   rules: the shape-transition graph is a bisimulation of the chase of
   the critical instance.

On the finite shape graph, divergence is the existence of a *refreshed
cycle*: a cycle in the product graph of ``(shape, null class)`` states
whose edges either carry the tracked null through a trigger (flow) or
replace it by a null the trigger freshly invents (handoff), with at
least one handoff edge.  Walking such a cycle forever manufactures a
new null per lap — each lap's trigger differs from the last precisely
because the tracked null in its body atom is younger — so the chase
builds infinitely many distinct atoms.  Conversely a chase that
diverges yields (via König's lemma on the creation forest) an infinite
derivation path on which fresh nulls enter infinitely often, and the
finite product graph must close such a path into a refreshed cycle.
A pure flow cycle (no handoff) is harmless: it shuffles a fixed set of
nulls through finitely many atoms.

Oblivious termination implies termination of every variant on every
instance, so ``True`` here certifies the strongest possible verdict;
``False`` certifies oblivious divergence (the restricted or core chase
may still terminate — the planner treats it as "not uniformly
terminating"); ``None`` means not linear, or the shape budget was
exhausted.
"""

from __future__ import annotations

from typing import Optional

from ..logic.atoms import Atom, Predicate
from ..logic.rules import ExistentialRule, RuleSet
from ..logic.terms import Constant, Variable

__all__ = [
    "is_linear_rule",
    "is_linear",
    "linear_chase_terminates",
]

#: Default budget on distinct shapes explored before giving up with None.
DEFAULT_SHAPE_BUDGET = 4096

#: The fresh constant of the critical instance (Marnette's ``*``).
_STAR = "*"


def is_linear_rule(rule: ExistentialRule) -> bool:
    """Whether *rule* is linear: a single-atom body."""
    return len(rule.body) == 1


def is_linear(rules: RuleSet) -> bool:
    """Whether every rule of *rules* is linear (vacuously true when
    empty)."""
    return all(is_linear_rule(rule) for rule in rules)


# ---------------------------------------------------------------------------
# shapes
# ---------------------------------------------------------------------------
#
# A shape is ``(predicate, entries)`` where each entry is
# ``("c", constant_name)`` or ``("n", k)`` with null classes ``k``
# numbered by first occurrence left-to-right (so shapes are canonical).


def _normalize(entries) -> tuple:
    """Renumber null entries by first occurrence; constants unchanged."""
    seen: dict = {}
    out = []
    for entry in entries:
        if entry[0] == "c":
            out.append(entry)
        else:
            if entry not in seen:
                seen[entry] = len(seen)
            out.append(("n", seen[entry]))
    return tuple(out)


def _match(body: Atom, shape: tuple) -> Optional[dict]:
    """Unify the single body atom of a linear rule against *shape*.

    Returns the binding ``{variable: entry}`` or None.  Constants in the
    body must match the shape's constant entries exactly; a repeated
    body variable forces equal entries (same constant, or same null
    class)."""
    predicate, entries = shape
    if body.predicate != predicate:
        return None
    binding: dict = {}
    for arg, entry in zip(body.args, entries):
        if isinstance(arg, Variable):
            bound = binding.get(arg)
            if bound is None:
                binding[arg] = entry
            elif bound != entry:
                return None
        else:
            if entry != ("c", arg.name):
                return None
    return binding


def _head_shapes(rule: ExistentialRule, binding: dict):
    """The shapes a trigger with *binding* produces, one per head atom,
    each paired with its flow information.

    Yields ``(shape, flow, fresh)`` where ``flow`` maps parent null
    classes to the produced shape's classes (the null survived into the
    head atom) and ``fresh`` is the set of produced classes invented by
    the trigger (existential positions)."""
    for head_atom in rule.head.sorted_atoms():
        raw = []
        for arg in head_atom.args:
            if isinstance(arg, Variable):
                bound = binding.get(arg)
                if bound is not None:
                    raw.append(bound)
                else:
                    # Existential variable: one fresh null per variable
                    # per trigger.  The marker only needs to be distinct
                    # from parent entries and per-variable unique.
                    raw.append(("x", arg.name))
            else:
                raw.append(("c", arg.name))
        entries = _normalize(raw)
        flow: dict = {}
        fresh: set = set()
        for raw_entry, entry in zip(raw, entries):
            if raw_entry[0] == "n":
                flow[raw_entry[1]] = entry[1]
            elif raw_entry[0] == "x":
                fresh.add(entry[1])
        yield (head_atom.predicate, entries), flow, fresh


def _initial_shapes(rules: RuleSet):
    """Shapes of the critical instance, restricted to predicates that
    occur in some rule body (atoms over head-only predicates trigger
    nothing and cannot seed divergence)."""
    constants = sorted({c.name for rule in rules for c in rule.constants()})
    constants.append(_STAR)
    body_predicates: set[Predicate] = set()
    for rule in rules:
        for atom in rule.body:
            body_predicates.add(atom.predicate)
    shapes = []
    for predicate in sorted(body_predicates, key=lambda p: (p.name, p.arity)):
        tuples = [()]
        for _ in range(predicate.arity):
            tuples = [prefix + (("c", name),) for prefix in tuples for name in constants]
        shapes.extend((predicate, entries) for entries in tuples)
    return shapes


def linear_chase_terminates(
    rules: RuleSet, max_shapes: int = DEFAULT_SHAPE_BUDGET
) -> Optional[bool]:
    """Decide all-instance oblivious-chase termination for linear rules.

    Returns ``True`` (every chase variant terminates on every instance),
    ``False`` (the oblivious chase diverges on the critical instance,
    hence on some instance), or ``None`` (ruleset not linear, or more
    than *max_shapes* shapes reachable — undecided within budget).
    """
    if not is_linear(rules):
        return None
    if not len(rules):
        return True

    linear = [(rule, next(iter(rule.body))) for rule in rules]

    # -- explore the reachable shape graph -------------------------------
    frontier = list(_initial_shapes(rules))
    seen = set(frontier)
    if len(seen) > max_shapes:
        return None
    #: per-transition record: (src_shape, dst_shape, flow, fresh)
    transitions = []
    while frontier:
        shape = frontier.pop()
        for rule, body_atom in linear:
            binding = _match(body_atom, shape)
            if binding is None:
                continue
            for produced, flow, fresh in _head_shapes(rule, binding):
                transitions.append((shape, produced, flow, fresh))
                if produced not in seen:
                    seen.add(produced)
                    if len(seen) > max_shapes:
                        return None
                    frontier.append(produced)

    # -- product graph: (shape, null class) states -----------------------
    # flow edge    (s, c) -> (s', c')  when class c survives into c'
    # handoff edge (s, c) -> (s', c'') when the trigger invents c''
    # Divergence iff some cycle uses >= 1 handoff edge; detect it by
    # computing SCCs of the product graph and checking each handoff edge
    # for endpoints in the same SCC (self-loops included).
    edges: dict = {}
    handoffs = []
    for src, dst, flow, fresh in transitions:
        src_classes = {entry[1] for entry in src[1] if entry[0] == "n"}
        for cls in src_classes:
            node = (src, cls)
            flowed = flow.get(cls)
            if flowed is not None:
                edges.setdefault(node, []).append((dst, flowed))
            for invented in fresh:
                target = (dst, invented)
                edges.setdefault(node, []).append(target)
                handoffs.append((node, target))
    if not handoffs:
        return True

    component = _tarjan_scc(edges)
    for source, target in handoffs:
        if component.get(source) is not None and component[source] == component.get(
            target
        ):
            return False
    return True


def _tarjan_scc(edges: dict) -> dict:
    """Iterative Tarjan: map each node to its SCC id.  Nodes that only
    appear as edge targets are included."""
    nodes = set(edges)
    for targets in edges.values():
        nodes.update(targets)
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    component: dict = {}
    counter = [0]
    comp_counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(edges.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp = comp_counter[0]
                comp_counter[0] += 1
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp
                    if member == node:
                        break
    return component

"""Tests for the observability layer (repro.obs) and its hooks.

The load-bearing guarantees:

* telemetry is *passive* — a traced run produces exactly the same final
  instance, atom for atom, as an untraced one;
* the trace is *complete* — one ``core_retraction`` event per core
  simplification step, per-step retraction sizes reconstructible;
* off is *free* — no observer, no accounting (and the global observer
  is always restored).
"""

from __future__ import annotations

import io
import json

import pytest

from repro import core_chase, run_chase
from repro.chase.engine import ChaseEngine, ChaseVariant
from repro.kbs.elevator import elevator_kb
from repro.kbs.witnesses import transitive_closure_kb
from repro.logic.cores import core_retraction
from repro.logic.homcache import get_cache
from repro.logic.homomorphism import find_homomorphism
from repro.logic.parser import parse_atoms
from repro.logic.atomset import AtomSet
from repro.obs import (
    CompositeObserver,
    JsonlTracer,
    MetricsObserver,
    MetricsRegistry,
    Observer,
    TracingObserver,
    get_observer,
    observing,
    read_trace,
    set_observer,
)
from repro.obs.stats import render_summary, retraction_series, summarize_trace
from repro.treewidth import SearchBudgetExceeded, treewidth_exact
from repro.treewidth.graph import Graph


def traced_run(kb, variant=ChaseVariant.CORE, max_steps=12):
    """Run a chase with a TracingObserver; return (result, events).

    The homomorphism memo is cleared first: these tests assert on search
    telemetry, which a memo warmed by earlier tests would silence.
    """
    get_cache().clear()
    buf = io.StringIO()
    with observing(TracingObserver(JsonlTracer(buf))):
        result = run_chase(kb, variant=variant, max_steps=max_steps)
    return result, read_trace(io.StringIO(buf.getvalue()))


class TestMetricsRegistry:
    def test_counter_gauge_timer_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(7)
        reg.timer("t").record(0.5)
        reg.timer("t").record(1.5)
        reg.histogram("h").observe(3)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["g"]["value"] == 7
        assert snap["t"]["count"] == 2
        assert snap["t"]["mean"] == pytest.approx(1.0)
        assert snap["h"]["count"] == 1
        assert sum(snap["h"]["buckets"]) == 1

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        assert reg.snapshot()["t"]["count"] == 1

    def test_same_instrument_returned(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(10)
        reg.gauge("g").set(3)
        reg.timer("t").record(1.0)
        reg.histogram("h").observe(2)
        assert reg.snapshot() == {}
        assert len(reg) == 0

    def test_empty_registry_is_falsy_but_usable(self):
        # regression guard: TracingObserver must not drop an empty
        # registry just because it is falsy
        reg = MetricsRegistry()
        assert not reg
        obs = TracingObserver(JsonlTracer(io.StringIO()), registry=reg)
        assert obs.registry is reg

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("b").observe(1)
        json.dumps(reg.snapshot())


class TestTracer:
    def test_jsonl_well_formed(self):
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        tracer.emit("chase_step_started", step=1, variant="core", atoms=3)
        tracer.emit("trigger_selected", step=1, rule="R", active=2)
        events = read_trace(io.StringIO(buf.getvalue()))
        assert [e["kind"] for e in events] == [
            "chase_step_started",
            "trigger_selected",
        ]
        assert events[0]["seq"] == 0 and events[1]["seq"] == 1
        assert all("t" in e for e in events)

    def test_torn_final_line_dropped(self):
        lines = ['{"seq":0,"kind":"chase_step_started","step":1}', '{"seq":1,"ki']
        events = read_trace(lines)
        assert len(events) == 1

    def test_malformed_interior_line_raises(self):
        lines = ["not json", '{"seq":1,"kind":"x"}']
        with pytest.raises(json.JSONDecodeError):
            read_trace(lines)


class TestObserverPlumbing:
    def test_global_observer_set_and_restored(self):
        marker = Observer()
        assert get_observer() is None
        with observing(marker):
            assert get_observer() is marker
        assert get_observer() is None

    def test_observing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observing(Observer()):
                raise RuntimeError("boom")
        assert get_observer() is None

    def test_set_observer_returns_previous(self):
        first = Observer()
        assert set_observer(first) is None
        try:
            second = Observer()
            assert set_observer(second) is first
        finally:
            set_observer(None)

    def test_composite_fans_out(self):
        regs = [MetricsRegistry(), MetricsRegistry()]
        composite = CompositeObserver([MetricsObserver(r) for r in regs])
        with observing(composite):
            run_chase(transitive_closure_kb(3), max_steps=20)
        for reg in regs:
            assert reg.snapshot()["chase.steps"]["value"] > 0

    def test_engine_accepts_explicit_observer(self):
        reg = MetricsRegistry()
        engine = ChaseEngine(
            transitive_closure_kb(3), observer=MetricsObserver(reg)
        )
        engine.run(max_steps=20)
        assert reg.snapshot()["chase.steps"]["value"] > 0
        # the explicit observer must not leak into the global slot
        assert get_observer() is None


class TestChaseTracing:
    """The ISSUE-1 satellite: tracing must be invisible to the run."""

    def test_elevator_core_chase_identical_with_tracing(self):
        plain = core_chase(elevator_kb(), max_steps=12)
        traced, events = traced_run(elevator_kb(), max_steps=12)
        assert plain.final_instance == traced.final_instance
        plain_atoms = sorted(map(str, plain.final_instance.sorted_atoms()))
        traced_atoms = sorted(map(str, traced.final_instance.sorted_atoms()))
        assert plain_atoms == traced_atoms

    def test_one_retraction_event_per_core_simplification_step(self):
        traced, events = traced_run(elevator_kb(), max_steps=12)
        core_events = [e for e in events if e["kind"] == "core_retraction"]
        # one per application plus the initial simplification of the facts
        assert len(core_events) == traced.applications + 1

    def test_step_events_reconstruct_instance_sizes(self):
        traced, events = traced_run(elevator_kb(), max_steps=12)
        series = retraction_series(events)
        recorded = {
            step.index: len(step.instance)
            for step in traced.derivation.steps
            if step.index > 0
        }
        assert {row["step"]: row["atoms"] for row in series} == recorded
        for row in series:
            assert row["retracted"] == row["atoms_applied"] - row["atoms"]

    def test_chase_result_retraction_accounting(self):
        # The staircase core chase retracts (folds the grown grid back);
        # the per-step events must agree with the ChaseResult totals.
        from repro.kbs.staircase import staircase_kb

        traced, events = traced_run(staircase_kb(), max_steps=12)
        series = retraction_series(events)
        assert traced.retractions >= 1
        assert traced.atoms_retracted == sum(r["retracted"] for r in series)

    def test_trigger_events_present(self):
        _, events = traced_run(transitive_closure_kb(3), max_steps=20)
        kinds = {e["kind"] for e in events}
        assert "trigger_selected" in kinds
        assert "trigger_retired" in kinds
        selected = [e for e in events if e["kind"] == "trigger_selected"]
        assert all(e["active"] >= 1 for e in selected)

    def test_homomorphism_events_carry_backtracks(self):
        _, events = traced_run(elevator_kb(), max_steps=8)
        hom = [e for e in events if e["kind"] == "homomorphism_search"]
        assert hom, "core chase must emit homomorphism_search events"
        assert all(e["backtracks"] >= 0 for e in hom)
        assert any(e["found"] for e in hom)

    def test_robust_steps_traced(self):
        from repro.chase.aggregation import RobustSequence
        from repro.kbs.staircase import staircase_kb

        result = core_chase(staircase_kb(), max_steps=8)
        buf = io.StringIO()
        with observing(TracingObserver(JsonlTracer(buf))):
            RobustSequence(result.derivation)
        events = read_trace(io.StringIO(buf.getvalue()))
        robust = [e for e in events if e["kind"] == "robust_step"]
        assert len(robust) == len(result.derivation.steps)


class TestDirectHookSites:
    def test_core_retraction_event_payload(self):
        atoms = AtomSet(parse_atoms("p(X, Y), p(X, Z), q(Z)"))
        reg = MetricsRegistry()
        buf = io.StringIO()
        with observing(TracingObserver(JsonlTracer(buf), registry=reg)):
            core_retraction(atoms)
        events = [
            e
            for e in read_trace(io.StringIO(buf.getvalue()))
            if e["kind"] == "core_retraction"
        ]
        assert len(events) == 1
        event = events[0]
        assert event["atoms_before"] == 3
        assert event["atoms_after"] < event["atoms_before"]
        assert event["variables_folded"] >= 1
        assert reg.snapshot()["core.retractions"]["value"] == 1

    def test_find_homomorphism_same_answer_traced(self):
        source = AtomSet(parse_atoms("e(X, Y), e(Y, Z)"))
        target = AtomSet(parse_atoms("e(a, b), e(b, c)"))
        plain = find_homomorphism(source, target)
        with observing(TracingObserver(JsonlTracer(io.StringIO()))):
            traced = find_homomorphism(source, target)
        assert plain == traced

    def test_treewidth_search_events(self):
        from repro.treewidth import has_width_at_most

        graph = Graph()
        for i in range(4):
            for j in range(i + 1, 4):
                graph.add_edge(i, j)  # K4: treewidth 3
        reg = MetricsRegistry()
        with observing(MetricsObserver(reg)):
            assert not has_width_at_most(graph, 2)
            assert has_width_at_most(graph, 3)
        snap = reg.snapshot()
        assert snap["tw.searches"]["value"] == 2
        assert snap["tw.budget_consumed"]["value"] >= 2


class TestSearchBudgetExceededDiagnostics:
    def test_message_includes_budget_and_bounds(self):
        graph = Graph()
        # a 4x4 grid is just hard enough to exhaust a 2-state budget
        for x in range(4):
            for y in range(4):
                if x + 1 < 4:
                    graph.add_edge((x, y), (x + 1, y))
                if y + 1 < 4:
                    graph.add_edge((x, y), (x, y + 1))
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            treewidth_exact(graph, state_budget=2)
        exc = excinfo.value
        message = str(exc)
        assert "2 states consumed" in message
        assert "best bounds so far" in message
        assert exc.consumed == 2
        assert exc.k is not None
        assert exc.lower is not None and exc.upper is not None
        assert exc.lower <= exc.upper

    def test_bracket_is_sound(self):
        graph = Graph()
        for x in range(4):
            for y in range(4):
                if x + 1 < 4:
                    graph.add_edge((x, y), (x + 1, y))
                if y + 1 < 4:
                    graph.add_edge((x, y), (x, y + 1))
        true_width = treewidth_exact(graph)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            treewidth_exact(graph, state_budget=1)
        assert excinfo.value.lower <= true_width <= excinfo.value.upper


class TestStats:
    def test_summarize_and_render(self):
        traced, events = traced_run(elevator_kb(), max_steps=10)
        summary = summarize_trace(events)
        assert summary["chase"]["steps"] == traced.applications
        assert summary["core"]["calls"] == traced.applications + 1
        assert summary["homomorphism"]["searches"] > 0
        rendered = render_summary(summary, step_stride=5)
        assert "Trace events" in rendered
        assert "Chase steps" in rendered
        assert "Totals" in rendered

    def test_summary_is_json_serializable(self):
        _, events = traced_run(transitive_closure_kb(3), max_steps=10)
        json.dumps(summarize_trace(events))

    def test_supervision_events_aggregated_and_rendered(self):
        events = [
            {"kind": "service_request", "op": "entail", "coalesced": False},
            {
                "kind": "service_retry",
                "op": "entail",
                "attempt": 1,
                "delay": 0.05,
                "error": "OSError: pipe",
            },
            {"kind": "service_pool_rebuild", "pending": 3},
            {
                "kind": "service_job",
                "op": "entail",
                "ok": True,
                "warm": True,
                "incomplete": False,
                "deadline_expired": False,
                "applications": 0,
                "seconds": 0.1,
            },
            {"kind": "snapshot_access", "op": "evict", "hit": False},
        ]
        summary = summarize_trace(events)
        service = summary["service"]
        assert service["retries"] == 1
        assert service["pool_rebuilds"] == 1
        assert service["snapshot_evicted"] == 1
        rendered = render_summary(summary)
        assert "retries" in rendered
        assert "pool rebuilds" in rendered
        assert "snapshots evicted (LRU)" in rendered

"""Tests for repro.analysis: positions, weak acyclicity, guardedness,
structural measures and boundedness."""

import pytest

from repro.analysis import (
    SIZE,
    TERM_COUNT,
    TREEWIDTH,
    certify_fes,
    dependency_graph,
    is_frontier_guarded,
    is_frontier_guarded_rule,
    is_guarded,
    is_guarded_rule,
    is_recurringly_bounded_prefix,
    is_uniformly_bounded,
    is_weakly_acyclic,
    profile_chase,
    recurring_bound_estimate,
    uniform_bound,
)
from repro.analysis.positions import Position, positions_of_ruleset, variable_positions
from repro.chase.engine import ChaseVariant
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import (
    bts_not_fes_kb,
    fes_not_bts_kb,
    guarded_chain_kb,
    transitive_closure_kb,
    weakly_acyclic_kb,
)
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_atoms, parse_rule, parse_rules
from repro.logic.terms import Variable


class TestPositions:
    def test_position_validation(self):
        with pytest.raises(ValueError):
            Position(Predicate("p", 2), 2)

    def test_positions_of_ruleset(self):
        rules = parse_rules("[R] p(X, Y) -> q(X)")
        positions = positions_of_ruleset(rules)
        assert {str(p) for p in positions} == {"p[0]", "p[1]", "q[0]"}

    def test_variable_positions(self):
        atoms = parse_atoms("p(X, Y), q(X, X)")
        found = {str(p) for p in variable_positions(atoms, Variable("X"))}
        assert found == {"p[0]", "q[0]", "q[1]"}


class TestWeakAcyclicity:
    def test_weakly_acyclic_accepts(self):
        assert is_weakly_acyclic(weakly_acyclic_kb().rules)

    def test_self_feeding_existential_rejected(self):
        assert not is_weakly_acyclic(bts_not_fes_kb().rules)

    def test_datalog_always_weakly_acyclic(self):
        assert is_weakly_acyclic(transitive_closure_kb(2).rules)

    def test_fes_witness_is_not_weakly_acyclic(self):
        # fes but not detectable by weak acyclicity — exactly why the
        # semantic class fes is strictly larger than syntactic criteria
        assert not is_weakly_acyclic(fes_not_bts_kb().rules)

    def test_dependency_graph_edges(self):
        rules = parse_rules("[R] p(X) -> q(X, Y)")
        graph = dependency_graph(rules)
        p0 = Position(Predicate("p", 1), 0)
        q0 = Position(Predicate("q", 2), 0)
        q1 = Position(Predicate("q", 2), 1)
        assert q0 in graph.regular[p0]
        assert q1 in graph.special[p0]

    def test_staircase_not_weakly_acyclic(self):
        assert not is_weakly_acyclic(staircase_kb().rules)


class TestGuardedness:
    def test_single_body_atom_is_guarded(self):
        assert is_guarded_rule(parse_rule("p(X, Y) -> q(Y, Z)"))

    def test_unguarded_join(self):
        assert not is_guarded_rule(parse_rule("p(X), q(Y) -> r(X, Y)"))

    def test_frontier_guard_weaker_than_guard(self):
        rule = parse_rule("p(X, Y), q(Y, Z) -> r(Y, W)")
        assert not is_guarded_rule(rule)
        assert is_frontier_guarded_rule(rule)

    def test_guarded_ruleset(self):
        assert is_guarded(guarded_chain_kb().rules)
        assert is_frontier_guarded(guarded_chain_kb().rules)

    def test_staircase_not_guarded(self):
        assert not is_guarded(staircase_kb().rules)


class TestBoundedness:
    def test_uniform_bound_is_max(self):
        assert uniform_bound([1, 3, 2]) == 3

    def test_recurring_estimate_is_tail_min(self):
        assert recurring_bound_estimate([9, 9, 1, 9, 2], tail=3) == 1

    def test_uniformly_bounded_predicate(self):
        assert is_uniformly_bounded([1, 2, 2], 2)
        assert not is_uniformly_bounded([1, 3], 2)

    def test_recurring_prefix_predicate(self):
        # a value <= 2 appears in every window of 3
        assert is_recurringly_bounded_prefix([5, 5, 2, 7, 1, 9, 9, 2], 2, tail=3)
        assert not is_recurringly_bounded_prefix([5, 5, 5, 1], 2, tail=3)

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            uniform_bound([])
        with pytest.raises(ValueError):
            recurring_bound_estimate([])
        assert not is_recurringly_bounded_prefix([], 3)


class TestMeasuresAndProfiles:
    def test_size_measure(self):
        assert SIZE(parse_atoms("p(X), q(X)")) == 2

    def test_term_count_measure(self):
        assert TERM_COUNT(parse_atoms("p(X, Y), q(X)")) == 2

    def test_treewidth_measure(self):
        assert TREEWIDTH(parse_atoms("e(X, Y), e(Y, Z)")) == 1

    def test_profile_of_terminating_run(self):
        profile = profile_chase(
            transitive_closure_kb(3),
            variant=ChaseVariant.RESTRICTED,
            measure=SIZE,
            max_steps=100,
        )
        assert profile.terminated
        assert profile.values[0] == 3
        assert profile.uniform == profile.values[-1] == 6

    def test_profile_treewidth_of_chain(self):
        profile = profile_chase(
            bts_not_fes_kb(),
            variant=ChaseVariant.CORE,
            measure=TREEWIDTH,
            max_steps=8,
        )
        assert not profile.terminated
        assert profile.uniform == 1  # the chain stays a path

    def test_certify_fes_positive(self):
        assert certify_fes(fes_not_bts_kb(), max_steps=100) is not None

    def test_certify_fes_unknown_on_divergent(self):
        assert certify_fes(bts_not_fes_kb(), max_steps=10) is None


class TestRulesetReport:
    def test_academia_report(self):
        from repro.analysis import analyze_ruleset
        from repro.kbs.ontology import academia_kb

        kb = academia_kb()
        report = analyze_ruleset(kb.rules, kb=kb, fes_budget=30)
        assert report.guarded and report.frontier_guarded
        assert not report.weakly_acyclic
        assert report.fes_applications is None
        assert report.decidable_cq_entailment  # via guardedness

    def test_terminating_report(self):
        from repro.analysis import analyze_ruleset

        kb = transitive_closure_kb(2)
        report = analyze_ruleset(kb.rules, kb=kb)
        assert report.rule_acyclic is False  # recursive datalog
        assert report.weakly_acyclic
        assert report.terminates_all_variants
        assert report.fes_applications is not None

    def test_staircase_escapes_all_syntactic_criteria(self):
        from repro.analysis import analyze_ruleset

        report = analyze_ruleset(staircase_kb().rules)
        assert not report.decidable_cq_entailment
        # ... which is exactly why the paper's core-bts class is needed

    def test_rows_render(self):
        from repro.analysis import analyze_ruleset

        kb = transitive_closure_kb(2)
        rows = analyze_ruleset(kb.rules, kb=kb).as_rows()
        labels = [label for label, _ in rows]
        assert "guarded" in labels
        assert any("fes" in label for label in labels)

"""A small text DSL for atoms, atomsets, rules, and knowledge bases.

Grammar (whitespace-insensitive)::

    term      ::=  NAME                      # leading uppercase or '_': variable
    atom      ::=  NAME '(' term (',' term)* ')'  |  NAME  # 0-ary
    atomset   ::=  atom (',' atom)*
    rule      ::=  atomset '->' atomset
    program   ::=  (line)*                   # one rule or fact-atomset per line,
                                             # '#' starts a comment, blank lines ok
    named rule::=  '[' NAME ']' rule

Examples::

    parse_atom("h(X, Y)")
    parse_atoms("f(X0), h(X0, X0)")
    parse_rule("h(X,X) -> h(X,Y), v(X,Xp), h(Xp,Yp), v(Y,Yp), c(Yp)")
    parse_rules('''
        [R1] c(X), h(X,Y) -> v(Y,Yp), v(Yp,Ypp), c(Ypp)
        [R4] c(X) -> d(X)
    ''')

The convention of :func:`repro.logic.atoms.make_term` applies: names whose
first character is uppercase or an underscore are variables, everything
else is a constant.
"""

from __future__ import annotations

import re

from .atoms import Atom, Predicate, make_term
from .atomset import AtomSet
from .rules import ExistentialRule, RuleSet

__all__ = [
    "ParseError",
    "parse_atom",
    "parse_atoms",
    "parse_rule",
    "parse_rules",
]

_NAME = r"[A-Za-z_][A-Za-z0-9_']*"
_ATOM_RE = re.compile(rf"\s*({_NAME})\s*(?:\(([^()]*)\))?\s*")
_LABEL_RE = re.compile(rf"^\s*\[\s*({_NAME})\s*\]\s*(.*)$")


class ParseError(ValueError):
    """Raised on malformed input; the message pinpoints the offending
    fragment."""


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``"h(X, Y)"`` or a 0-ary ``"halt"``."""
    match = _ATOM_RE.fullmatch(text)
    if match is None:
        raise ParseError(f"malformed atom: {text!r}")
    name, args_text = match.group(1), match.group(2)
    if args_text is None:
        return Atom(Predicate(name, 0), ())
    raw_args = [piece.strip() for piece in args_text.split(",")]
    if raw_args == [""]:
        raw_args = []
    for piece in raw_args:
        if not re.fullmatch(_NAME, piece):
            raise ParseError(f"malformed term {piece!r} in atom {text!r}")
    terms = tuple(make_term(piece) for piece in raw_args)
    return Atom(Predicate(name, len(terms)), terms)


def _split_atoms(text: str) -> list[str]:
    """Split a comma-separated atom list at parenthesis depth zero."""
    pieces: list[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced ')' in {text!r}")
        elif char == "," and depth == 0:
            pieces.append(text[start:index])
            start = index + 1
    if depth != 0:
        raise ParseError(f"unbalanced '(' in {text!r}")
    pieces.append(text[start:])
    return [p for p in (piece.strip() for piece in pieces) if p]


def parse_atoms(text: str) -> AtomSet:
    """Parse a comma-separated conjunction of atoms into an atomset."""
    pieces = _split_atoms(text)
    if not pieces:
        raise ParseError(f"expected at least one atom in {text!r}")
    return AtomSet(parse_atom(piece) for piece in pieces)


def parse_rule(text: str, name: str | None = None) -> ExistentialRule:
    """Parse one rule ``body -> head`` (optionally ``[label] body -> head``)."""
    label_match = _LABEL_RE.match(text)
    if label_match is not None:
        if name is not None:
            raise ParseError(f"rule has both inline label and name= argument: {text!r}")
        name = label_match.group(1)
        text = label_match.group(2)
    parts = text.split("->")
    if len(parts) != 2:
        raise ParseError(f"expected exactly one '->' in rule {text!r}")
    body = parse_atoms(parts[0])
    head = parse_atoms(parts[1])
    return ExistentialRule(body, head, name=name)


def parse_rules(text: str) -> RuleSet:
    """Parse a multi-line program of rules into a :class:`RuleSet`.

    Lines starting with ``#`` (after stripping) and blank lines are
    ignored.  Each remaining line must contain one rule, optionally
    prefixed with a ``[label]``.
    """
    ruleset = RuleSet()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            ruleset.add(parse_rule(line))
        except ParseError as error:
            raise ParseError(f"line {line_number}: {error}") from error
    if not len(ruleset):
        raise ParseError("program contains no rules")
    return ruleset

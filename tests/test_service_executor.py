"""Tests for the job executor (repro.service.executor).

The process-pool paths (workers > 0) use the ``spawn`` start method, so
each test that exercises them pays interpreter startup; the bulk of the
coverage therefore runs in the ``workers=0`` in-process mode, with one
real multi-process test for the fork/spawn-safe metrics protocol.
"""

import time

import pytest

from repro import staircase_kb
from repro.logic.serialization import dump_kb
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, observing
from repro.service.executor import (
    JobExecutor,
    RetryPolicy,
    _run_job_local,
    is_transient,
)
from repro.service.faults import FaultPlan
from repro.service.jobs import JobRequest

STAIRCASE = dump_kb(staircase_kb())
STAIR_QUERY = "v(X, Y), v(Y, Z)"


def entail_request(**overrides):
    fields = dict(
        op="entail", kb_text=STAIRCASE, query=STAIR_QUERY, max_steps=60
    )
    fields.update(overrides)
    return JobRequest(**fields)


class TestInProcessExecutor:
    def test_submit_resolves_to_result(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            result = ex.submit(entail_request()).result(timeout=60)
        assert result.ok
        assert result.entailed is True
        assert result.seconds > 0

    def test_sequential_repeat_warm_starts(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            first = ex.submit(entail_request()).result(timeout=60)
            second = ex.submit(entail_request()).result(timeout=60)
        assert not first.warm
        assert second.warm and second.applications == 0

    def test_job_error_resolves_not_raises(self, tmp_path):
        with JobExecutor(0, snapshot_dir=tmp_path) as ex:
            result = ex.submit(
                JobRequest(op="chase", kb_text="garbage")
            ).result(timeout=60)
        assert not result.ok
        assert result.error

    def test_worker_metrics_merged_into_registry(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            ex.submit(entail_request()).result(timeout=60)
        snap = registry.snapshot()
        assert snap["chase.steps"]["value"] > 0
        assert snap["service.queue_depth"]["value"] == 0

    def test_queue_depth_counts_down_to_zero(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            futures = [ex.submit(entail_request()) for _ in range(3)]
            for future in futures:
                future.result(timeout=60)
        assert ex.pending == 0
        assert registry.gauge("service.queue_depth").value == 0

    def test_service_job_event_reported(self, tmp_path):
        events = []

        class Spy(Observer):
            def service_job(self, **kw):
                events.append(kw)

        with observing(Spy()):
            with JobExecutor(0, snapshot_dir=tmp_path) as ex:
                ex.submit(entail_request()).result(timeout=60)
                ex.submit(entail_request()).result(timeout=60)
        assert len(events) == 2
        assert events[0]["ok"] and not events[0]["warm"]
        assert events[1]["warm"]
        assert all(event["seconds"] > 0 for event in events)

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            JobExecutor(-1)


class TestWorkerBody:
    def test_run_job_local_returns_result_and_metrics(self, tmp_path):
        result_obj, metrics = _run_job_local(
            entail_request().to_obj(), str(tmp_path)
        )
        assert result_obj["ok"]
        assert result_obj["entailed"] is True
        assert metrics["chase.steps"]["value"] > 0

    def test_run_job_local_without_store(self):
        result_obj, metrics = _run_job_local(entail_request().to_obj(), None)
        assert result_obj["ok"] and not result_obj["warm"]


class TestRetryPolicy:
    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_delay_grows_then_caps_with_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, seed=1)
        for attempt in range(6):
            ceiling = min(0.4, 0.1 * (2**attempt))
            delay = policy.delay_for(attempt)
            assert ceiling * 0.5 <= delay <= ceiling

    def test_seed_pins_the_jitter_stream(self):
        first = [RetryPolicy(seed=7).delay_for(n) for n in range(5)]
        second = [RetryPolicy(seed=7).delay_for(n) for n in range(5)]
        assert first == second

    def test_classification(self):
        from concurrent.futures import BrokenExecutor, CancelledError

        assert is_transient(BrokenExecutor("worker died"))
        assert is_transient(OSError("pipe"))
        assert is_transient(EOFError())
        assert is_transient(CancelledError())
        assert not is_transient(TypeError("cannot pickle"))
        assert not is_transient(RuntimeError("after shutdown"))

    def test_deterministic_os_errors_are_permanent(self):
        # A missing or unwritable snapshot/fault directory does not heal
        # on retry — burning the backoff budget only delays the ok=False.
        assert not is_transient(FileNotFoundError("no such snapshot dir"))
        assert not is_transient(PermissionError("snapshot dir unwritable"))
        assert not is_transient(NotADirectoryError("bad fault dir"))
        # … while pipe/connection breakage stays retryable.
        assert is_transient(BrokenPipeError())
        assert is_transient(ConnectionResetError())


FAST_RETRY = dict(max_retries=2, base_delay=0.01, max_delay=0.05, seed=1)


class TestSupervision:
    """Failure classification, retries, and guaranteed resolution
    (in-process mode; the real spawn-pool path lives in the chaos
    suite)."""

    def test_injected_worker_death_is_retried(self, tmp_path):
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.kill_mid_job")
        registry = MetricsRegistry()
        with JobExecutor(
            0,
            snapshot_dir=tmp_path / "snaps",
            registry=registry,
            retry_policy=RetryPolicy(**FAST_RETRY),
            fault_dir=plan.root,
        ) as ex:
            result = ex.submit(entail_request()).result(timeout=60)
        assert result.ok and result.entailed is True
        assert ex.retries == 1
        assert registry.counter("service.retries").value == 1
        assert registry.gauge("service.queue_depth").value == 0
        assert plan.fired("worker.kill_mid_job") == 1

    def test_exhausted_retry_budget_resolves_not_hangs(self, tmp_path):
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.kill_mid_job", times=3)
        registry = MetricsRegistry()
        with JobExecutor(
            0,
            snapshot_dir=tmp_path / "snaps",
            registry=registry,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.01, seed=1),
            fault_dir=plan.root,
        ) as ex:
            result = ex.submit(entail_request()).result(timeout=60)
        assert not result.ok
        assert "after 1 retries" in result.error
        # the failure path must still balance the queue-depth gauge
        assert registry.gauge("service.queue_depth").value == 0
        assert ex.pending == 0

    def test_service_retry_event_reported(self, tmp_path):
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.kill_mid_job")
        events = []

        class Spy(Observer):
            def service_retry(self, **kw):
                events.append(kw)

        with observing(Spy()):
            with JobExecutor(
                0,
                snapshot_dir=tmp_path / "snaps",
                retry_policy=RetryPolicy(**FAST_RETRY),
                fault_dir=plan.root,
            ) as ex:
                ex.submit(entail_request()).result(timeout=60)
        assert len(events) == 1
        assert events[0]["attempt"] == 1
        assert events[0]["delay"] > 0
        assert "OSError" in events[0]["error"]

    def test_raising_observer_cannot_hang_the_client(self, tmp_path):
        # Regression: an exception thrown by the observer inside the
        # completion callback used to leave the outer future pending
        # forever (the client's await never returned).
        class Hostile(Observer):
            def service_job(self, **kw):
                raise RuntimeError("observer exploded")

        with observing(Hostile()):
            with JobExecutor(0, snapshot_dir=tmp_path) as ex:
                result = ex.submit(entail_request()).result(timeout=60)
        assert not result.ok
        assert "observer failed" in result.error
        assert ex.pending == 0

    def test_metrics_merge_failure_cannot_hang_the_client(self, tmp_path):
        class BadRegistry(MetricsRegistry):
            def merge_snapshot(self, snapshot):
                raise ValueError("incompatible snapshot")

        with JobExecutor(0, snapshot_dir=tmp_path, registry=BadRegistry()) as ex:
            result = ex.submit(entail_request()).result(timeout=60)
        assert not result.ok
        assert "result handling failed" in result.error

    def test_submit_after_shutdown_resolves_not_raises(self, tmp_path):
        ex = JobExecutor(0, snapshot_dir=tmp_path)
        ex.shutdown()
        result = ex.submit(entail_request()).result(timeout=10)
        assert not result.ok
        assert "shut down" in result.error

    def test_shutdown_racing_into_backoff_cannot_deadlock(self, tmp_path):
        # Regression: shutdown() landing between _handle_failure's
        # unlocked closed check and its locked one used to make the
        # supervisor call _resolve() while holding the executor lock —
        # a self-deadlock on the non-reentrant lock that left the outer
        # future pending forever.  delay_for() runs exactly in that
        # window, so a policy that shuts the executor down from inside
        # it reproduces the race deterministically.
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.kill_mid_job")
        holder = {}

        class RacingPolicy(RetryPolicy):
            def delay_for(self, attempt):
                holder["ex"].shutdown(wait=False)
                return super().delay_for(attempt)

        ex = JobExecutor(
            0,
            snapshot_dir=tmp_path / "snaps",
            retry_policy=RacingPolicy(**FAST_RETRY),
            fault_dir=plan.root,
        )
        holder["ex"] = ex
        result = ex.submit(entail_request()).result(timeout=30)
        assert not result.ok
        assert "shut down" in result.error
        assert ex.pending == 0

    def test_last_resort_resolution_keeps_gauge_consistent(self, tmp_path):
        # Regression: _resolve_quietly balanced _pending but left the
        # service.queue_depth gauge at its pre-failure value forever.
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.kill_mid_job")

        class HostileCounters(MetricsRegistry):
            def counter(self, name):
                if name == "service.retries":
                    raise RuntimeError("counter exploded")
                return super().counter(name)

        registry = HostileCounters()
        with JobExecutor(
            0,
            snapshot_dir=tmp_path / "snaps",
            registry=registry,
            retry_policy=RetryPolicy(**FAST_RETRY),
            fault_dir=plan.root,
        ) as ex:
            result = ex.submit(entail_request()).result(timeout=60)
        assert not result.ok
        assert "executor callback failed" in result.error
        assert ex.pending == 0
        assert registry.gauge("service.queue_depth").value == 0

    def test_shutdown_resolves_parked_retries(self, tmp_path):
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.kill_mid_job")
        ex = JobExecutor(
            0,
            snapshot_dir=tmp_path / "snaps",
            retry_policy=RetryPolicy(max_retries=2, base_delay=60, max_delay=60),
            fault_dir=plan.root,
        )
        future = ex.submit(entail_request())
        deadline = time.monotonic() + 30
        while not ex._retry_timers and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ex._retry_timers  # the job is parked in backoff
        ex.shutdown()
        result = future.result(timeout=10)  # resolved now, not in a minute
        assert not result.ok
        assert "shut down" in result.error
        assert ex.pending == 0


class TestProcessPool:
    def test_spawn_workers_answer_and_merge_metrics(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(2, snapshot_dir=tmp_path, registry=registry) as ex:
            futures = [ex.submit(entail_request()) for _ in range(4)]
            results = [future.result(timeout=300) for future in futures]
        assert all(result.ok and result.entailed for result in results)
        # at least one job found the snapshot a sibling saved
        snap = registry.snapshot()
        assert snap["chase.steps"]["value"] > 0  # merged from workers
        assert snap["service.queue_depth"]["value"] == 0

"""Piece-wise backward UCQ rewriting for the linear/guarded fragments.

The Theorem-1 race decides entailment *forward*: chase the facts and
test the query against the growing aggregation.  For first-order
rewritable rulesets the complementary move (Leclère et al.,
arXiv:1810.02132) runs *backward*: rewrite the query through the rules
into a union of conjunctive queries that is evaluated directly against
the base facts, with no chase at all.

The rewriting step is the classic *piece unification*: pick a subset
``S`` of the query's atoms (a "piece"), unify it with head atoms of a
rule (renamed apart), and — when the most general unifier is *valid* —
replace ``S`` by the rule's body.  Validity protects the existential
variables, which the chase would instantiate with fresh nulls:

* an existential variable's unification class may contain no constant
  (a null never equals a named constant),
* no second distinct existential variable (two rule applications make
  two distinct nulls),
* no universal (body) variable of the rule (a frontier term is shared
  with the body, a null is not), and
* no query variable that also occurs *outside* the piece (the null is
  private to the head; a query variable escaping the piece would leak
  it) — this is the "piece" in piece unification.

Soundness of the fixpoint: every generated disjunct ``Q'`` satisfies
``Q' ∪ rules ⊨ Q`` (one backward rule application is one forward chase
step), so a disjunct mapping into the facts certifies ``K ⊨ Q``.
Completeness holds when the fixpoint is reached: for linear rulesets
the piece-rewriting saturation is finite (a finite unification set),
and subsumption pruning — dropping any disjunct that a kept, more
general disjunct maps into — preserves it, because the more general
disjunct generates rewritings that subsume those of the pruned one.
Guarded rulesets are *not* first-order rewritable in general, so the
rewriting is budgeted: exceeding ``max_disjuncts``/``max_depth``/
``max_work`` returns ``complete=False`` and callers fall back to the
Theorem-1 race.  An incomplete rewriting is never used to answer "no".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..analysis.guardedness import is_guarded
from ..analysis.linearity import is_linear
from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.homomorphism import find_homomorphism
from ..logic.kb import KnowledgeBase
from ..logic.rules import ExistentialRule, RuleSet
from ..logic.substitution import Substitution
from ..logic.terms import Term, Variable
from .cq import ConjunctiveQuery
from .entailment import EntailmentVerdict

__all__ = [
    "RewriteResult",
    "rewritable_fragment",
    "rewrite_ucq",
    "decide_by_rewriting",
]

#: Default cap on kept disjuncts before the rewriting gives up.
DEFAULT_MAX_DISJUNCTS = 64

#: Default cap on backward-rewriting depth.
DEFAULT_MAX_DEPTH = 16

#: Default cap on piece-unifier trials across the whole saturation.
DEFAULT_MAX_WORK = 20000


def rewritable_fragment(rules: RuleSet) -> Optional[str]:
    """The fragment that makes *rules* a rewriting candidate, or None.

    ``"linear"`` rulesets are finite unification sets (the saturation
    terminates and the answer is exact).  ``"guarded"`` rulesets are
    decidable but not first-order rewritable in general — the rewriting
    is still *sound*, so it is attempted under budgets with a race
    fallback.  Everything else returns None.
    """
    if is_linear(rules):
        return "linear"
    if is_guarded(rules):
        return "guarded"
    return None


@dataclass(frozen=True)
class RewriteResult:
    """The outcome of a budgeted piece-rewriting saturation.

    ``complete`` is True iff the fixpoint was reached within budget; only
    then is a miss of every disjunct a sound "no".  ``generated`` counts
    raw piece-unifier outputs, ``pruned`` the candidates dropped by
    dedup/subsumption, ``depth`` the deepest rewriting step applied.
    """

    disjuncts: Tuple[ConjunctiveQuery, ...]
    complete: bool
    generated: int = 0
    pruned: int = 0
    depth: int = 0

    def evaluate(self, facts: AtomSet) -> Optional[bool]:
        """Evaluate against base facts: True on any disjunct hit, False
        only when the saturation was complete, None otherwise."""
        if any(disjunct.holds_in(facts) for disjunct in self.disjuncts):
            return True
        return False if self.complete else None


# ---------------------------------------------------------------------------
# piece unification
# ---------------------------------------------------------------------------


class _UnionFind:
    """Union-find over terms; constants are kept as class roots so a
    merge of two distinct constants fails immediately."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        root = term
        while self.parent.get(root, root) is not root:
            root = self.parent[root]
        while self.parent.get(term, term) is not term:
            self.parent[term], term = root, self.parent[term]
        return root

    def union(self, left: Term, right: Term) -> bool:
        root_l, root_r = self.find(left), self.find(right)
        if root_l == root_r:
            return True
        l_var = isinstance(root_l, Variable)
        r_var = isinstance(root_r, Variable)
        if not l_var and not r_var:
            return False  # two distinct constants
        if not l_var:
            self.parent[root_r] = root_l
        else:
            self.parent[root_l] = root_r
        return True


def _unify_piece(
    pairs: Sequence[Tuple[Atom, Atom]],
    rule: ExistentialRule,
    outside_vars: frozenset,
) -> Optional[Substitution]:
    """The most general unifier of a candidate piece, or None.

    *pairs* maps query atoms to head atoms of the renamed-apart *rule*;
    *outside_vars* are the query variables occurring outside the piece.
    Returns None when the MGU does not exist or violates the existential
    validity conditions (see the module docstring).
    """
    uf = _UnionFind()
    terms: set = set()
    for query_atom, head_atom in pairs:
        for query_arg, head_arg in zip(query_atom.args, head_atom.args):
            if not uf.union(query_arg, head_arg):
                return None
            terms.add(query_arg)
            terms.add(head_arg)

    groups: Dict[Term, set] = {}
    for term in terms:
        groups.setdefault(uf.find(term), set()).add(term)

    existential = rule.existential
    universal = rule.universal
    mapping: Dict[Variable, Term] = {}
    for members in groups.values():
        constants = [m for m in members if not isinstance(m, Variable)]
        exis_members = [m for m in members if m in existential]
        if exis_members:
            if constants:
                return None  # a null never equals a constant
            if len(exis_members) > 1:
                return None  # two applications make two distinct nulls
            if any(m in universal for m in members):
                return None  # a null is not shared with the body
            if any(
                m not in existential and m in outside_vars for m in members
            ):
                return None  # the piece must own every unified query var
        if constants:
            representative: Term = constants[0]
        else:
            non_existential = sorted(
                (m for m in members if m not in existential),
                key=lambda v: v.name,
            )
            pool = non_existential or sorted(members, key=lambda v: v.name)
            representative = pool[0]
        for member in members:
            if isinstance(member, Variable) and member != representative:
                mapping[member] = representative
    return Substitution(mapping)


def _piece_rewrites(
    atoms: AtomSet,
    rule: ExistentialRule,
    work: List[int],
    max_work: int,
) -> Iterator[Optional[AtomSet]]:
    """Yield every one-step backward rewriting of *atoms* through *rule*.

    Yields a final ``None`` sentinel if the work budget ran out before
    the piece space was exhausted (the caller must flag incompleteness).
    """
    by_predicate: Dict[object, List[Atom]] = {}
    for head_atom in rule.head.sorted_atoms():
        by_predicate.setdefault(head_atom.predicate, []).append(head_atom)
    eligible = [a for a in atoms.sorted_atoms() if a.predicate in by_predicate]
    if not eligible:
        return
    all_atoms = atoms.atoms()
    for mask in range(1, 1 << len(eligible)):
        piece = [eligible[i] for i in range(len(eligible)) if mask >> i & 1]
        outside = all_atoms - set(piece)
        outside_vars = frozenset(
            term
            for outside_atom in outside
            for term in outside_atom.args
            if isinstance(term, Variable)
        )
        for assignment in product(*(by_predicate[a.predicate] for a in piece)):
            work[0] += 1
            if work[0] > max_work:
                yield None
                return
            unifier = _unify_piece(
                list(zip(piece, assignment)), rule, outside_vars
            )
            if unifier is None:
                continue
            rewritten = unifier.apply(rule.body)
            rewritten.update(unifier.apply_atom(a) for a in outside)
            yield rewritten


def _dedup_key(atoms: AtomSet) -> str:
    """A fast alpha-invariant-ish dedup key (first-occurrence variable
    renaming over the sorted atom order).  Imperfect canonicalization
    only costs budget: logical duplicates it misses are still removed by
    the subsumption check."""
    names: Dict[Variable, str] = {}
    parts = []
    for at in atoms.sorted_atoms():
        rendered = []
        for term in at.args:
            if isinstance(term, Variable):
                if term not in names:
                    names[term] = f"V{len(names)}"
                rendered.append(names[term])
            else:
                rendered.append(f"c:{term.name}")
        parts.append(f"{at.predicate.name}({','.join(rendered)})")
    return ";".join(sorted(parts))


def _fresh_variant(
    rule: ExistentialRule, atoms: AtomSet, counter: List[int]
) -> ExistentialRule:
    """Rename *rule* apart from the disjunct under rewriting."""
    taken = {v.name for v in atoms.variables()}
    rule_vars = rule.body.variables() | rule.head.variables()
    while True:
        counter[0] += 1
        suffix = f"__r{counter[0]}"
        if all(f"{v.name}{suffix}" not in taken for v in rule_vars):
            return rule.rename_apart(suffix)


# ---------------------------------------------------------------------------
# saturation
# ---------------------------------------------------------------------------


def rewrite_ucq(
    rules: RuleSet,
    query: ConjunctiveQuery,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_work: int = DEFAULT_MAX_WORK,
) -> RewriteResult:
    """Saturate *query* under backward piece-rewriting through *rules*.

    Breadth-first over rewriting depth, with subsumption pruning: a
    candidate some kept disjunct maps into is redundant (any fact base
    satisfying the candidate already satisfies the kept disjunct), and a
    candidate that maps into kept disjuncts retires them.  The returned
    disjuncts always include a most-general representative of the
    original query, so ``evaluate`` is sound even when incomplete.
    """
    start = AtomSet(query.atoms)
    kept: Dict[str, AtomSet] = {_dedup_key(start): start}
    queue: deque = deque([(_dedup_key(start), 0)])
    work = [0]
    counter = [0]
    generated = 0
    pruned = 0
    depth_seen = 0
    complete = True

    def try_insert(candidate: AtomSet, depth: int) -> Optional[str]:
        nonlocal pruned, complete
        key = _dedup_key(candidate)
        if key in kept:
            pruned += 1
            return None
        for existing in kept.values():
            if find_homomorphism(existing, candidate) is not None:
                pruned += 1
                return None
        if depth > max_depth or len(kept) >= max_disjuncts:
            complete = False
            return None
        for existing_key in [
            k
            for k, existing in kept.items()
            if find_homomorphism(candidate, existing) is not None
        ]:
            del kept[existing_key]
            pruned += 1
        kept[key] = candidate
        return key

    while queue:
        key, depth = queue.popleft()
        atoms = kept.get(key)
        if atoms is None:
            continue  # retired by a more general later disjunct
        for rule in rules:
            variant = _fresh_variant(rule, atoms, counter)
            for candidate in _piece_rewrites(atoms, variant, work, max_work):
                if candidate is None:
                    complete = False
                    break
                generated += 1
                inserted = try_insert(candidate, depth + 1)
                if inserted is not None:
                    depth_seen = max(depth_seen, depth + 1)
                    queue.append((inserted, depth + 1))
            if work[0] > max_work:
                complete = False
                break
        if work[0] > max_work:
            break

    disjuncts = tuple(
        ConjunctiveQuery(atoms, name=query.name)
        for _, atoms in sorted(kept.items())
    )
    return RewriteResult(
        disjuncts=disjuncts,
        complete=complete,
        generated=generated,
        pruned=pruned,
        depth=depth_seen,
    )


def decide_by_rewriting(
    kb: KnowledgeBase,
    query: ConjunctiveQuery,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_work: int = DEFAULT_MAX_WORK,
) -> Optional[EntailmentVerdict]:
    """Decide ``K ⊨ Q`` purely by rewriting, or None when not possible.

    Returns a verdict only when the ruleset is in a rewritable fragment
    AND either some disjunct hits the base facts (sound regardless of
    completeness) or the saturation completed (sound "no").  A None
    return means the caller must fall back to the Theorem-1 race.
    """
    fragment = rewritable_fragment(kb.rules)
    if fragment is None:
        return None
    result = rewrite_ucq(
        kb.rules,
        query,
        max_disjuncts=max_disjuncts,
        max_depth=max_depth,
        max_work=max_work,
    )
    answer = result.evaluate(kb.facts)
    if answer is None:
        return None
    method = "ucq-rewrite-hit" if answer else "ucq-rewrite-miss"
    return EntailmentVerdict(answer, method, 0)

"""SLO gate over the chaos-smoke run's span-derived latency quantiles.

Reads the ``latency`` block that ``benchmarks/chaos_smoke.py`` archives
in ``results/chaos_smoke.json`` (per-op ``ok``/``warm``/``cold``/
``failed`` classes with nearest-rank p50/p95/p99 computed from the
merged request trace) and compares it against the committed budgets in
``baselines/chaos_slo.json``.  A budgeted quantile above its ceiling —
or a budgeted op/class missing from the results entirely, which would
otherwise let a silently-untraced run pass — fails the gate.

The budgets are deliberately loose (shared CI runners under fault
injection), so a failure means latency regressed by an order, not by a
scheduler hiccup.  Run from the repository root::

    python benchmarks/check_slo.py
"""

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
DEFAULT_RESULTS = HERE / "results" / "chaos_smoke.json"
DEFAULT_BUDGETS = HERE / "baselines" / "chaos_slo.json"


def check(latency: dict, budgets: dict) -> list:
    """All gate violations as human-readable strings (empty = pass)."""
    failures = []
    for op, classes in sorted(budgets.items()):
        for klass, quantiles in sorted(classes.items()):
            block = latency.get(op, {}).get(klass)
            if block is None:
                failures.append(
                    f"{op}/{klass}: no span-derived samples in the results "
                    "(budgeted class missing)"
                )
                continue
            for quantile, budget in sorted(quantiles.items()):
                value = block.get(quantile)
                if value is None:
                    failures.append(f"{op}/{klass}/{quantile}: not reported")
                elif value > budget:
                    failures.append(
                        f"{op}/{klass}/{quantile}: {value:.4f}s exceeds "
                        f"the {budget:.4f}s budget"
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=pathlib.Path,
        default=DEFAULT_RESULTS,
        help=f"chaos-smoke results JSON (default {DEFAULT_RESULTS})",
    )
    parser.add_argument(
        "--budgets",
        type=pathlib.Path,
        default=DEFAULT_BUDGETS,
        help=f"committed SLO budgets JSON (default {DEFAULT_BUDGETS})",
    )
    args = parser.parse_args(argv)

    try:
        results = json.loads(args.results.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"slo-gate: cannot read {args.results}: {exc}", file=sys.stderr)
        return 2
    budgets = json.loads(args.budgets.read_text())["budgets"]
    latency = results.get("latency") or {}

    for op, classes in sorted(latency.items()):
        for klass, block in sorted(classes.items()):
            print(
                f"slo-gate: {op}/{klass}: n={block['count']} "
                f"p50={block['p50']:.4f}s p95={block['p95']:.4f}s "
                f"p99={block['p99']:.4f}s"
            )
    failures = check(latency, budgets)
    if failures:
        for failure in failures:
            print(f"slo-gate: FAIL {failure}", file=sys.stderr)
        return 1
    checked = sum(len(quantiles) for op in budgets.values() for quantiles in op.values())
    print(f"slo-gate: OK ({checked} budgeted quantile(s) within bounds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

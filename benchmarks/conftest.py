"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment bench (``bench_fig*`` / ``bench_prop*`` / ``bench_thm*``)
regenerates one figure or proposition of the paper: it measures the
relevant computation with pytest-benchmark, prints the series/verdicts
the paper reports, asserts the expected *shape*, and archives the table
under ``benchmarks/results/`` (the source of EXPERIMENTS.md numbers).

Run with::

    pytest benchmarks/ --benchmark-only            # timings + assertions
    pytest benchmarks/ --benchmark-only -s         # + live tables
"""

from __future__ import annotations

import pathlib

import pytest

from repro import core_chase, restricted_chase
from repro.kbs.elevator import elevator_kb
from repro.kbs.staircase import staircase_kb
from repro.util import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, table: Table, extra: str = "") -> None:
    """Print a table and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render() + (extra + "\n" if extra else "")
    print("\n" + rendered)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered)


@pytest.fixture(scope="session")
def staircase_core_run():
    """A 45-application core chase of K_h (shared by E3/E7/E8)."""
    return core_chase(staircase_kb(), max_steps=45)


@pytest.fixture(scope="session")
def staircase_restricted_run():
    """A 45-application restricted chase of K_h (E2)."""
    return restricted_chase(staircase_kb(), max_steps=45)


@pytest.fixture(scope="session")
def elevator_core_run():
    """A 35-application core chase of K_v (E6)."""
    return core_chase(elevator_kb(), max_steps=35)


@pytest.fixture(scope="session")
def elevator_restricted_run():
    """A 30-application restricted chase of K_v (E5)."""
    return restricted_chase(elevator_kb(), max_steps=30)

"""Tests for repro.logic.substitution."""

import pytest

from repro.logic.atoms import atom
from repro.logic.parser import parse_atoms
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestBasics:
    def test_identity_applies_nothing(self):
        assert Substitution.identity().apply_term(X) == X

    def test_apply_bound_variable(self):
        assert Substitution({X: a}).apply_term(X) == a

    def test_apply_unbound_variable_is_identity(self):
        assert Substitution({X: a}).apply_term(Y) == Y

    def test_apply_constant_is_identity(self):
        assert Substitution({X: a}).apply_term(b) == b

    def test_apply_atom(self):
        sigma = Substitution({X: a})
        assert sigma.apply_atom(atom("p", X, Y)) == atom("p", a, Y)

    def test_apply_atomset(self):
        sigma = Substitution({X: Y})
        assert sigma.apply(parse_atoms("p(X), q(X, Y)")) == parse_atoms("p(Y), q(Y, Y)")

    def test_constant_keys_rejected(self):
        with pytest.raises(TypeError):
            Substitution({a: b})  # type: ignore[dict-item]

    def test_non_term_values_rejected(self):
        with pytest.raises(TypeError):
            Substitution({X: "a"})  # type: ignore[dict-item]

    def test_bind_is_persistent_copy(self):
        base = Substitution({X: a})
        extended = base.bind(Y, b)
        assert Y not in base
        assert extended[Y] == b

    def test_restrict_and_without(self):
        sigma = Substitution({X: a, Y: b})
        assert sigma.restrict([X]).domain() == {X}
        assert sigma.without([X]).domain() == {Y}

    def test_drop_trivial(self):
        sigma = Substitution({X: X, Y: b})
        assert sigma.drop_trivial().domain() == {Y}

    def test_equality_and_hash(self):
        assert Substitution({X: a}) == Substitution({X: a})
        assert hash(Substitution({X: a})) == hash(Substitution({X: a}))


class TestComposition:
    def test_compose_paper_convention(self):
        # (σ' • σ)(X) = σ'+(σ+(X)): first σ, then σ'.
        sigma = Substitution({X: Y})
        sigma_prime = Substitution({Y: a})
        composed = sigma_prime.compose(sigma)
        assert composed.apply_term(X) == a

    def test_compose_domain_is_union(self):
        composed = Substitution({Y: a}).compose(Substitution({X: Y}))
        assert composed.domain() == {X, Y}

    def test_then_is_reversed_compose(self):
        sigma = Substitution({X: Y})
        sigma_prime = Substitution({Y: a})
        assert sigma.then(sigma_prime) == sigma_prime.compose(sigma)

    def test_compatible_when_agreeing(self):
        assert Substitution({X: a}).compatible_with(Substitution({X: a, Y: b}))

    def test_incompatible_on_clash(self):
        assert not Substitution({X: a}).compatible_with(Substitution({X: b}))

    def test_merge_compatible(self):
        merged = Substitution({X: a}).merge(Substitution({Y: b}))
        assert merged.domain() == {X, Y}

    def test_merge_incompatible_raises(self):
        with pytest.raises(ValueError):
            Substitution({X: a}).merge(Substitution({X: b}))


class TestFibersAndInverse:
    def test_fibers_collect_preimages(self):
        sigma = Substitution({X: Z, Y: Z})
        fibers = sigma.fibers()
        assert fibers[Z] == {X, Y, Z}  # Z itself is unbound, so fixed

    def test_fibers_exclude_rebound_image(self):
        sigma = Substitution({X: Y, Y: Z})
        fibers = sigma.fibers()
        assert Y not in fibers[Y]  # Y moved away, so not in its own fiber

    def test_is_injective_on(self):
        sigma = Substitution({X: Z, Y: Z})
        assert not sigma.is_injective_on([X, Y])
        assert sigma.is_injective_on([X])

    def test_inverse_on(self):
        sigma = Substitution({X: Y})
        inverse = sigma.inverse_on([X])
        assert inverse.apply_term(Y) == X

    def test_inverse_on_non_injective_raises(self):
        sigma = Substitution({X: Z, Y: Z})
        with pytest.raises(ValueError):
            sigma.inverse_on([X, Y])

    def test_inverse_on_constant_image_raises(self):
        with pytest.raises(ValueError):
            Substitution({X: a}).inverse_on([X])


class TestSemanticPredicates:
    def test_is_homomorphism(self):
        source = parse_atoms("p(X, Y)")
        target = parse_atoms("p(a, b)")
        assert Substitution({X: a, Y: b}).is_homomorphism(source, target)
        assert not Substitution({X: b, Y: a}).is_homomorphism(source, target)

    def test_is_retraction(self):
        atoms = parse_atoms("e(a, X), e(X, a), e(a, Y)")
        fold = Substitution({Y: X})
        assert fold.is_retraction_of(atoms)

    def test_endomorphism_not_retraction(self):
        # X -> Y, Y -> X swaps a symmetric pair: endo but not retraction.
        atoms = parse_atoms("e(X, Y), e(Y, X)")
        swap = Substitution({X: Y, Y: X})
        assert swap.is_endomorphism_of(atoms)
        assert not swap.is_retraction_of(atoms)

    def test_is_identity_on(self):
        sigma = Substitution({X: a})
        assert sigma.is_identity_on([Y, b])
        assert not sigma.is_identity_on([X])

    def test_fold_to_retraction_on_swap(self):
        atoms = parse_atoms("e(X, Y), e(Y, X)")
        swap = Substitution({X: Y, Y: X})
        folded = swap.fold_to_retraction(atoms)
        assert folded.is_retraction_of(atoms)

    def test_fold_to_retraction_on_shift(self):
        # X->Y->Z->Z chain: already idempotent after enough iterations.
        atoms = parse_atoms("p(X), p(Y), p(Z)")
        shift = Substitution({X: Y, Y: Z})
        folded = shift.fold_to_retraction(atoms)
        assert folded.is_retraction_of(atoms)
        assert folded.apply_term(X) == Z

    def test_fold_requires_endomorphism(self):
        atoms = parse_atoms("p(X)")
        with pytest.raises(ValueError):
            Substitution({X: Y}).fold_to_retraction(atoms)

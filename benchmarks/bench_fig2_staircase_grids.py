"""E4 — Proposition 5: no universal model of K_h has finite treewidth.

The proof exhibits n×n grids inside I^h (Fact 2 then gives tw ≥ n).
This bench regenerates the grid series: for growing windows of I^h, the
largest verified grid — by the appendix's explicit coordinates
(T_{n×n} anchored at column n+1) and by the generic backtracking search.
It also re-checks the non-universality of the infinite-column model Ĩ^h
(its long v-paths cannot map into shallow I^h windows).
"""

from repro import maps_into
from repro.kbs import staircase as sc
from repro.treewidth import grid_from_coordinates, grid_lower_bound
from repro.util import Table

from conftest import save_table


def grid_series() -> list[tuple[int, int, int]]:
    rows = []
    for max_column, n_probe in ((3, 2), (5, 2), (7, 3), (9, 4)):
        window = sc.universal_model_window(max_column)
        coords = sc.coordinates(window)
        coordinate_best = 0
        for n in range(2, n_probe + 1):
            if grid_from_coordinates(window, coords, n, origin=(n + 1, 0)):
                coordinate_best = n
        generic_best = grid_lower_bound(window, max_n=min(3, n_probe))
        rows.append((max_column, coordinate_best, generic_best))
    return rows


def bench_fig2_staircase_grids(benchmark):
    rows = benchmark.pedantic(grid_series, rounds=1, iterations=1)
    table = Table(
        ["I^h window (columns)", "grid via coordinates", "grid via search"],
        title="Prop. 5 — grids inside I^h force unbounded treewidth (Fact 2)",
    )
    for max_column, coordinate_best, generic_best in rows:
        table.add_row(max_column, coordinate_best, generic_best)

    # shape: the coordinate-based series grows with the window
    bests = [row[1] for row in rows]
    assert bests == sorted(bests)
    assert bests[-1] >= 4

    # Ĩ^h (infinite column) is a model but NOT universal: it does not map
    # into I^h once its v-path exceeds the window's columns.
    assert not maps_into(sc.infinite_column_model(6), sc.universal_model_window(3))
    assert maps_into(sc.infinite_column_model(2), sc.universal_model_window(4))

    extra = (
        "shape: grid size (hence the tw lower bound) grows linearly with the\n"
        "window => every universal model of K_h has infinite treewidth.\n"
        "Ĩ^h's infinite v-path certifies it is a model but not universal."
    )
    save_table("fig2_staircase_grids", table, extra)

"""A minimal undirected simple graph.

The treewidth machinery needs only adjacency sets, vertex/edge iteration,
and cheap copies; rolling our own (~100 lines) keeps the substrate
self-contained and the elimination algorithms free of external API
assumptions.  Vertices may be any hashable objects — in practice they are
:class:`repro.logic.terms.Term` instances (Gaifman graphs) or plain ints
(synthetic benchmark graphs).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

__all__ = ["Graph"]

Vertex = Hashable


class Graph:
    """An undirected simple graph backed by adjacency sets."""

    __slots__ = ("_adj",)

    def __init__(self, edges: Iterable[tuple[Vertex, Vertex]] = ()):
        self._adj: dict[Vertex, set[Vertex]] = {}
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Ensure *v* is present (possibly isolated)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the edge ``{u, v}``; self-loops are ignored (they never
        affect treewidth)."""
        self.add_vertex(u)
        self.add_vertex(v)
        if u == v:
            return
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_clique(self, vertices: Iterable[Vertex]) -> None:
        """Make the given vertices pairwise adjacent."""
        vs = list(vertices)
        for v in vs:
            self.add_vertex(v)
        for i, u in enumerate(vs):
            for v in vs[i + 1 :]:
                self.add_edge(u, v)

    def remove_vertex(self, v: Vertex) -> None:
        """Delete *v* and its incident edges."""
        for u in self._adj.pop(v, set()):
            self._adj[u].discard(v)

    def eliminate(self, v: Vertex) -> int:
        """Eliminate *v*: make its neighborhood a clique, then delete it.
        Returns the degree of *v* at elimination time (the bag size minus
        one of the corresponding tree-decomposition bag)."""
        neighbors = list(self._adj.get(v, ()))
        self.add_clique(neighbors)
        self.remove_vertex(v)
        return len(neighbors)

    def copy(self) -> "Graph":
        """An independent copy."""
        clone = Graph()
        clone._adj = {v: set(ns) for v, ns in self._adj.items()}
        return clone

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The induced subgraph on *vertices*."""
        keep = set(vertices)
        sub = Graph()
        for v in keep:
            if v in self._adj:
                sub.add_vertex(v)
                for u in self._adj[v]:
                    if u in keep:
                        sub.add_edge(v, u)
        return sub

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, v: object) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def vertex_set(self) -> frozenset[Vertex]:
        return frozenset(self._adj)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Each undirected edge exactly once (orientation arbitrary)."""
        seen: set[Vertex] = set()
        for v, neighbors in self._adj.items():
            for u in neighbors:
                if u not in seen:
                    yield (v, u)
            seen.add(v)

    def edge_count(self) -> int:
        return sum(len(ns) for ns in self._adj.values()) // 2

    def neighbors(self, v: Vertex) -> frozenset[Vertex]:
        return frozenset(self._adj.get(v, frozenset()))

    def degree(self, v: Vertex) -> int:
        return len(self._adj.get(v, ()))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._adj.get(u, ())

    def min_degree_vertex(self) -> Vertex:
        """A vertex of minimum degree (deterministic tie-break by repr)."""
        return min(self._adj, key=lambda v: (len(self._adj[v]), repr(v)))

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """True iff the given vertices are pairwise adjacent."""
        vs = list(vertices)
        for i, u in enumerate(vs):
            for v in vs[i + 1 :]:
                if not self.has_edge(u, v):
                    return False
        return True

    def fill_in_count(self, v: Vertex) -> int:
        """Number of edges that eliminating *v* would add."""
        neighbors = list(self._adj.get(v, ()))
        missing = 0
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1 :]:
                if w not in self._adj[u]:
                    missing += 1
        return missing

    def connected_components(self) -> list[frozenset[Vertex]]:
        """The vertex sets of the connected components."""
        remaining = set(self._adj)
        components: list[frozenset[Vertex]] = []
        while remaining:
            start = next(iter(remaining))
            component = {start}
            frontier = [start]
            while frontier:
                v = frontier.pop()
                for u in self._adj[v]:
                    if u not in component:
                        component.add(u)
                        frontier.append(u)
            remaining -= component
            components.append(frozenset(component))
        return components

    def __repr__(self) -> str:
        return f"Graph({len(self)} vertices, {self.edge_count()} edges)"

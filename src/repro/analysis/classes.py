"""Structural measures, boundedness notions (Section 5), and the
empirical classifiers behind the Figure 1 experiments.

Section 5 defines a *structural measure* as any map from instances to
``N ∪ {∞}`` and, for sequences, the notions of *uniform* and *recurring*
μ-boundedness.  On the finite chase prefixes the library actually
computes, the faithful readings are:

* uniform bound of a prefix — the max of the measured values;
* recurring bound estimate — the min over a trailing window: if the
  sequence is recurringly bounded by ``k`` then values ``≤ k`` occur in
  every tail, so trailing minima witness (an upper estimate of) the
  recurring bound.

Membership in fes / bts / core-bts is undecidable in general; the
classifiers below are *budgeted empirical* procedures that (i) are exact
whenever the core chase terminates within budget (fes is certified) and
(ii) otherwise report the measured treewidth profile of the chase
prefix, which is what the Figure 1 experiment tabulates for the paper's
witness KBs — for those, the budgets provably suffice to show the
intended behaviour (the staircase's core chase is uniformly 2-bounded at
every length; the elevator's grows monotonically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..chase.engine import ChaseVariant, run_chase
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..treewidth import SearchBudgetExceeded, treewidth, treewidth_bounds

__all__ = [
    "StructuralMeasure",
    "SIZE",
    "TERM_COUNT",
    "TREEWIDTH",
    "uniform_bound",
    "recurring_bound_estimate",
    "is_uniformly_bounded",
    "is_recurringly_bounded_prefix",
    "ChaseProfile",
    "profile_chase",
    "certify_fes",
    "fes_certificate",
]


@dataclass(frozen=True)
class StructuralMeasure:
    """A named structural measure (Section 5)."""

    name: str
    compute: Callable[[AtomSet], int]

    def __call__(self, instance: AtomSet) -> int:
        return self.compute(instance)


def _treewidth_or_upper(instance: AtomSet) -> int:
    """Exact treewidth when the solver can afford it, else the min-fill
    upper bound (still sound for *uniform boundedness* claims)."""
    try:
        return treewidth(instance, state_budget=200_000)
    except SearchBudgetExceeded:
        return treewidth_bounds(instance)[1]


SIZE = StructuralMeasure("size", lambda instance: len(instance))
TERM_COUNT = StructuralMeasure("terms", lambda instance: len(instance.terms()))
TREEWIDTH = StructuralMeasure("treewidth", _treewidth_or_upper)


def uniform_bound(values: Sequence[int]) -> int:
    """The least uniform bound of a measured prefix (its maximum)."""
    if not values:
        raise ValueError("empty sequence has no bound")
    return max(values)


def recurring_bound_estimate(values: Sequence[int], tail: int = 5) -> int:
    """An estimate of the recurring bound: the minimum over the last
    *tail* measurements.  If the infinite sequence is recurringly bounded
    by ``k``, values ≤ k recur, so long prefixes yield estimates ≤ k;
    conversely a growing sequence drives the estimate up."""
    if not values:
        raise ValueError("empty sequence has no bound")
    window = values[-tail:] if tail > 0 else values
    return min(window)


def is_uniformly_bounded(values: Sequence[int], k: int) -> bool:
    """Uniform μ-boundedness by ``k`` on the measured prefix."""
    return all(value <= k for value in values)


def is_recurringly_bounded_prefix(
    values: Sequence[int], k: int, tail: int = 5
) -> bool:
    """Finite-prefix reading of recurring μ-boundedness by ``k``: a value
    ≤ k occurs within every trailing window of length *tail*."""
    if not values:
        return False
    for start in range(0, len(values), tail):
        window = values[start : start + tail]
        if window and min(window) > k:
            return False
    return True


@dataclass
class ChaseProfile:
    """Measured profile of one chase run: per-step values of a structural
    measure plus the termination verdict."""

    kb_name: Optional[str]
    variant: str
    measure: str
    values: list[int]
    terminated: bool
    applications: int

    @property
    def uniform(self) -> int:
        return uniform_bound(self.values)

    def recurring(self, tail: int = 5) -> int:
        return recurring_bound_estimate(self.values, tail=tail)


def profile_chase(
    kb: KnowledgeBase,
    variant: str = ChaseVariant.CORE,
    measure: StructuralMeasure = TREEWIDTH,
    max_steps: int = 100,
    core_every: int = 1,
) -> ChaseProfile:
    """Run a chase and measure every step with *measure*."""
    values: list[int] = []

    def on_step(step) -> None:
        values.append(measure(step.instance))

    result = run_chase(
        kb,
        variant=variant,
        max_steps=max_steps,
        core_every=core_every,
        on_step=on_step,
    )
    return ChaseProfile(
        kb_name=kb.name,
        variant=variant,
        measure=measure.name,
        values=values,
        terminated=result.terminated,
        applications=result.applications,
    )


def fes_certificate(
    kb: KnowledgeBase, max_steps: int = 500
) -> tuple[Optional[int], int]:
    """Attempt the budgeted fes certificate; report the budget consumed.

    Returns ``(certificate, consumed)``: *certificate* is the number of
    core-chase applications when the chase terminated within budget
    (an exact fes certificate for this instance), None otherwise;
    *consumed* is the applications actually performed either way — on
    failure that is the spent budget, mirroring how
    :class:`~repro.treewidth.SearchBudgetExceeded` reports consumed
    budget rather than the cap.
    """
    result = run_chase(kb, variant=ChaseVariant.CORE, max_steps=max_steps)
    certificate = result.applications if result.terminated else None
    return certificate, result.applications


def certify_fes(kb: KnowledgeBase, max_steps: int = 500) -> Optional[int]:
    """Certify that the KB's core chase terminates (the *fes* criterion
    for this instance): returns the number of applications on success,
    None when the budget runs out (unknown / presumed non-terminating).

    The core chase terminates iff the KB has a finite universal model
    [9], so a non-None answer is an exact certificate.  See
    :func:`fes_certificate` for the variant that also reports the
    budget consumed.
    """
    return fes_certificate(kb, max_steps=max_steps)[0]

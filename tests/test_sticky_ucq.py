"""Tests for stickiness analysis and union queries."""

import pytest

from repro.analysis import is_sticky, sticky_marking
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import bts_not_fes_kb, transitive_closure_kb
from repro.kbs.witnesses import manager_kb
from repro.logic.parser import parse_atoms, parse_rules
from repro.logic.terms import Variable
from repro.query import (
    ConjunctiveQuery,
    UnionQuery,
    boolean_cq,
    decide_union_entailment,
)


class TestStickyMarking:
    def test_initial_marking_of_dropped_variables(self):
        rules = parse_rules("[R] p(X, Y) -> q(X)")
        marking = sticky_marking(rules)
        assert (0, Variable("Y")) in marking
        assert (0, Variable("X")) not in marking

    def test_propagation_through_positions(self):
        # R2 drops V (marked); V sits at b[1]; R1's head has frontier Y at
        # b[1], so Y gets marked in R1 as well.
        rules = parse_rules(
            """
            [R1] a(X, Y) -> b(X, Y)
            [R2] b(U, V) -> d(U)
            """
        )
        marking = sticky_marking(rules)
        assert (1, Variable("V")) in marking
        assert (0, Variable("Y")) in marking


class TestIsSticky:
    def test_linear_rules_are_sticky(self):
        assert is_sticky(bts_not_fes_kb().rules)

    def test_transitive_closure_not_sticky(self):
        # the join variable Y is dropped from the head and repeats
        assert not is_sticky(transitive_closure_kb(2).rules)

    def test_join_preserved_in_head_is_sticky(self):
        rules = parse_rules("[R] p(X, Y), q(Y, Z) -> s(X, Y, Z)")
        assert is_sticky(rules)

    def test_join_dropped_from_head_not_sticky(self):
        rules = parse_rules("[R] p(X, Y), q(Y, Z) -> s(X, Z)")
        assert not is_sticky(rules)

    def test_staircase_not_sticky(self):
        # K_h's rules join loop variables heavily
        assert not is_sticky(staircase_kb().rules)

    def test_repeated_unmarked_variable_is_fine(self):
        # X repeats in the body but is fully propagated to the head
        rules = parse_rules("[R] p(X, X) -> q(X, X)")
        assert is_sticky(rules)


class TestUnionQuery:
    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionQuery([])

    def test_non_boolean_disjunct_rejected(self):
        q = ConjunctiveQuery("p(X)", answer_variables=[Variable("X")])
        with pytest.raises(ValueError):
            UnionQuery([q])

    def test_holds_if_any_disjunct_holds(self):
        union = UnionQuery([boolean_cq("p(X)"), boolean_cq("q(X)")])
        assert union.holds_in(parse_atoms("q(a)"))
        assert not union.holds_in(parse_atoms("r(a)"))

    def test_entailed_union_decided_yes(self):
        union = UnionQuery([boolean_cq("mgr(X, ann)"), boolean_cq("mgr(ann, X)")])
        verdict = decide_union_entailment(manager_kb(), union, chase_budget=20)
        assert verdict.entailed is True

    def test_refuted_union_needs_joint_countermodel(self):
        union = UnionQuery(
            [boolean_cq("mgr(X, ann)"), boolean_cq("emp(X), mgr(X, X)")]
        )
        verdict = decide_union_entailment(manager_kb(), union, chase_budget=15)
        assert verdict.entailed is False
        assert verdict.countermodel is not None
        assert not union.holds_in(verdict.countermodel)

    def test_singleton_union_behaves_like_cq(self):
        kb = transitive_closure_kb(3)
        union = UnionQuery([boolean_cq("e(v0, v3)")])
        assert decide_union_entailment(kb, union).entailed is True


class TestUnionRaceRegressions:
    """Regression tests for the UCQ race bugs: one shared chase per
    union, terminated-fixpoint refutation, deadline hooks, and accurate
    ``chase_steps`` reporting."""

    def test_one_shared_chase_for_all_disjuncts(self):
        # Counting chase runs through the observer: a 3-disjunct union
        # must run exactly ONE chase, not one per disjunct.
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.observer import observing
        from repro.obs.tracer import MetricsObserver

        union = UnionQuery(
            [boolean_cq("nope(X)"), boolean_cq("also(X)"), boolean_cq("mgr(X, Y)")]
        )
        obs = MetricsObserver(MetricsRegistry())
        with observing(obs):
            verdict = decide_union_entailment(
                manager_kb(), union, chase_budget=12
            )
        assert verdict.entailed is True
        # The shared budget bounds total applications: a per-disjunct
        # re-chase would have recorded up to 3x the steps.
        steps = obs.registry.snapshot().get("chase.steps", {}).get("value", 0)
        assert steps <= 12

    def test_terminated_fixpoint_refutes_whole_union(self):
        # The chase of a terminating KB reaches a finite universal
        # model; a union no disjunct of which maps into it is refuted
        # exactly — with the witness instance, no countermodel search.
        kb = transitive_closure_kb(3)
        union = UnionQuery([boolean_cq("e(v3, v0)"), boolean_cq("e(v2, v0)")])
        verdict = decide_union_entailment(kb, union, model_domain_budget=0)
        assert verdict.entailed is False
        assert verdict.method == "chase-fixpoint-miss"
        assert verdict.witness_instance is not None
        assert not union.holds_in(verdict.witness_instance)

    def test_should_stop_cuts_union_decision_short(self):
        union = UnionQuery([boolean_cq("nope(X)"), boolean_cq("never(X)")])
        verdict = decide_union_entailment(
            manager_kb(), union, chase_budget=50, should_stop=lambda: True
        )
        assert verdict.entailed is None
        assert verdict.incomplete
        assert verdict.method == "chase-stopped"

    def test_union_accepts_chase_variant(self):
        from repro.chase.engine import ChaseVariant

        union = UnionQuery([boolean_cq("mgr(X, Y)")])
        verdict = decide_union_entailment(
            manager_kb(), union, chase_variant=ChaseVariant.CORE
        )
        assert verdict.entailed is True

    def test_union_chase_steps_report_applications_not_budget(self):
        # Undecided verdicts must report the applications the chase
        # actually consumed, not echo the budget constant.
        union = UnionQuery([boolean_cq("nope(X)")])
        budget = 10
        verdict = decide_union_entailment(
            manager_kb(), union, chase_budget=budget, model_domain_budget=0
        )
        assert verdict.entailed is None
        assert verdict.chase_steps == budget  # manager chase never idles
        # ... and on a terminating KB the count is the real fixpoint
        # size, strictly under the budget.
        kb = transitive_closure_kb(3)
        refuted = decide_union_entailment(
            kb, UnionQuery([boolean_cq("e(v2, v0)")]), chase_budget=500
        )
        assert refuted.entailed is False
        assert 0 < refuted.chase_steps < 500

    def test_cq_race_chase_steps_report_applications_not_budget(self):
        # Same bug pattern in decide_entailment: the countermodel and
        # race-undecided paths passed the budget constant through.
        from repro.query import decide_entailment

        verdict = decide_entailment(
            manager_kb(),
            boolean_cq("emp(X), mgr(X, X)"),
            chase_budget=13,
            model_domain_budget=3,
        )
        assert verdict.entailed is False
        assert verdict.method == "finite-countermodel"
        assert verdict.chase_steps == 13  # applications, == budget here
        kb = transitive_closure_kb(3)
        refuted = decide_entailment(kb, boolean_cq("e(v2, v0)"), chase_budget=500)
        assert refuted.entailed is False
        assert 0 < refuted.chase_steps < 500

"""Observability: metrics, structured tracing, and chase telemetry.

The paper's phenomena are *trajectories* — per-step retraction sizes in
the core chase of the inflating elevator (Section 7), grid growth in the
staircase (Section 6), treewidth of the cores ``I^v_n`` — so the library
exposes them as first-class data instead of burying them in a final
:class:`~repro.chase.engine.ChaseResult`:

* :mod:`repro.obs.metrics` — a dependency-free registry of counters,
  gauges, timers and histograms with a process-global default and cheap
  no-op instruments when disabled;
* :mod:`repro.obs.observer` — the :class:`Observer` protocol the hot
  paths (chase engine, core retraction, homomorphism search, exact
  treewidth, robust aggregation) report into, plus the process-global
  ``current`` observer those paths check with a single attribute test;
* :mod:`repro.obs.tracer` — :class:`JsonlTracer` /
  :class:`TracingObserver`, emitting one JSON object per event so a run
  can be replayed offline (``repro stats``), and
  :class:`MetricsObserver` for metrics-only accounting;
* :mod:`repro.obs.spans` — trace contexts (``trace_id`` / ``span_id`` /
  ``parent_span_id``) propagated across the serving tier's process
  boundaries, span open/close events around request lifecycle phases,
  cross-process trace merging (:func:`read_trace_dir`) and the shared
  latency-percentile machinery behind the server's ``stats`` op and
  ``repro trace`` / ``repro top``;
* :mod:`repro.obs.stats` — trace replay into summary series and tables
  (imported separately, ``from repro.obs import stats``, because it
  pulls in :mod:`repro.util`).

Nothing in this package imports the rest of the library (except
``stats``), so the logic layer can import it without cycles.

Quickstart::

    from repro import core_chase, elevator_kb
    from repro.obs import JsonlTracer, TracingObserver, observing

    with open("run.jsonl", "w") as sink:
        with observing(TracingObserver(JsonlTracer(sink))):
            core_chase(elevator_kb(), max_steps=40)
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    set_registry,
)
from .observer import (
    CompositeObserver,
    Observer,
    get_observer,
    observing,
    set_observer,
)
from .spans import (
    RollingLatencies,
    TraceContext,
    activate,
    current_context,
    latency_summary,
    read_trace_dir,
    span,
)
from .tracer import (
    EVENT_KINDS,
    LATENCY_BOUNDS,
    JsonlTracer,
    MetricsObserver,
    TracingObserver,
    read_trace,
    read_trace_lenient,
)

__all__ = [
    "CompositeObserver",
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "LATENCY_BOUNDS",
    "MetricsObserver",
    "MetricsRegistry",
    "Observer",
    "RollingLatencies",
    "Timer",
    "TraceContext",
    "TracingObserver",
    "activate",
    "current_context",
    "get_observer",
    "get_registry",
    "latency_summary",
    "observing",
    "read_trace",
    "read_trace_dir",
    "read_trace_lenient",
    "set_observer",
    "set_registry",
    "span",
]

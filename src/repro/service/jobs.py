"""Service jobs: wire dataclasses and the worker-side entry point.

:class:`JobRequest` / :class:`JobResult` are deliberately primitive —
strings, numbers, bools — so they cross process boundaries (and the TCP
wire) as plain JSON-able dicts; the first-order objects (KB, query,
chase state) are materialized only inside the worker.

:func:`execute_job` is the single entry point every execution path
(process pool, in-process executor, ``--timeout`` CLI runs) goes
through, so warm-start, deadline, and degradation semantics are defined
once:

* **Planner routing.**  A request flagged ``planner=True`` has its
  chase configuration (variant, core cadence, step budget, model-finder
  budget, ancestor-resume eligibility) replaced by the strategy the
  analysis planner derives from the KB's ruleset verdict
  (:meth:`repro.analysis.planner.Planner.decide`, cached by ruleset
  fingerprint in-process and in the snapshot catalog).  An explicit
  ``strategy`` dict on the request overrides the planner entirely.
* **Warm start.**  With a :class:`~repro.service.snapshots.SnapshotStore`
  attached, the job first tries to restore the checkpointed chase for
  (KB, variant, core cadence) and resume it; since restore continues
  the derivation exactly, warm answers equal cold ones.  An ``entail``
  job whose query already maps into the restored instance answers with
  **zero** new rule applications.
* **Ancestor resume.**  On an exact snapshot miss the job probes for
  the nearest *ancestor* snapshot — same rules and chase config, facts
  a subset of this KB's — injects the missing facts as a delta
  (:func:`repro.chase.engine.merge_facts_into_state`) and resumes
  incrementally instead of chasing cold.  The resumed derivation is a
  fair prefix of a chase of the grown KB (every ancestor trigger body
  still maps into the grown instance), so answers carry the same
  soundness guarantees as warm ones and are gated by the same step
  budget.  Such results report ``ancestor=True`` (never ``warm``).
* **Deadline.**  ``timeout`` seconds (measured inside the job) arm a
  :class:`~repro.service.deadline.Deadline` polled by the engine's
  cooperative cancellation checkpoint between rule applications.
* **Graceful degradation.**  On expiry the job returns what the partial
  model soundly supports — a query hit found before the deadline is a
  certified "yes"; otherwise ``entailed`` is None — with
  ``incomplete=True`` and ``deadline_expired=True`` set.  A sound
  partial instance is likewise returned for ``chase`` jobs.

Soundness of the per-step query test: a Boolean CQ that maps into any
``F_i`` of a fair derivation prefix maps into the natural aggregation,
which is universal (Proposition 1), so ``K ⊨ Q`` — this is the same
argument :func:`repro.query.chase_entails_prefix` rests on.  Exact
"no" answers come only from a terminated chase (finite universal
model).
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Optional

import json

from ..analysis.planner import Strategy, default_planner
from ..chase.engine import ChaseEngine, ChaseVariant, merge_facts_into_state
from ..logic.serialization import load_kb
from ..obs.observer import Observer
from ..obs.spans import span as _span
from ..query import boolean_cq
from ..query.modelfinder import find_countermodel
from ..query.plans import QueryPlanCache, default_plan_cache
from .deadline import Deadline
from .snapshots import SnapshotStore

__all__ = ["JobRequest", "JobResult", "execute_job"]


@dataclass
class JobRequest:
    """One unit of work: a chase or an entailment question over a KB.

    ``op`` is ``"entail"`` (requires ``query``) or ``"chase"``.
    ``kb_text`` is the sectioned KB serialization
    (:func:`repro.logic.serialization.dump_kb`).  ``model_budget`` > 0
    additionally arms the finite-countermodel "no" side when the chase
    budget runs out undecided.  ``id`` is an opaque client echo and does
    not participate in :meth:`dedup_key`.

    ``trace`` is the request's trace context
    (:meth:`repro.obs.spans.TraceContext.to_obj`, plus a
    ``submitted_ts`` epoch stamp) riding across the spawn boundary so
    worker-side events join the caller's trace; it identifies *this
    delivery*, not the answer, so — like ``id`` — it stays out of
    :meth:`dedup_key` and coalesced requests share one job.

    ``planner`` routes the job through the analysis planner
    (:class:`repro.analysis.planner.Planner`), replacing the request's
    chase configuration with the verdict-derived
    :class:`~repro.analysis.planner.Strategy`.  ``strategy`` is an
    explicit per-request override (a ``Strategy.to_obj`` dict, or any
    dict with the required config fields) and wins over the planner.
    Both shape the answer, so both participate in :meth:`dedup_key`.
    """

    op: str
    kb_text: str
    query: Optional[str] = None
    #: For ``batch_entail``: the distinct Boolean CQ texts to evaluate
    #: against one loaded snapshot in a single indexed pass.
    queries: Optional[list] = None
    variant: str = ChaseVariant.RESTRICTED
    core_every: int = 1
    max_steps: int = 200
    timeout: Optional[float] = None
    use_index: bool = True
    model_budget: int = 0
    planner: bool = False
    strategy: Optional[dict] = None
    #: UCQ-rewriting control: True forces the rewrite attempt, False
    #: disables it, None follows the resolved strategy's ``rewrite``
    #: flag (i.e. planner routing).
    rewrite: Optional[bool] = None
    id: Optional[str] = None
    trace: Optional[dict] = None

    def dedup_key(self) -> tuple:
        """The coalescing identity: everything that shapes the answer."""
        return (
            self.op,
            self.kb_text,
            self.query,
            tuple(self.queries) if self.queries is not None else None,
            self.variant,
            self.core_every,
            self.max_steps,
            self.timeout,
            self.use_index,
            self.model_budget,
            self.planner,
            (
                json.dumps(self.strategy, sort_keys=True)
                if self.strategy is not None
                else None
            ),
            self.rewrite,
        )

    def to_obj(self) -> dict:
        obj = {
            "op": self.op,
            "kb_text": self.kb_text,
            "query": self.query,
            "variant": self.variant,
            "core_every": self.core_every,
            "max_steps": self.max_steps,
            "timeout": self.timeout,
            "use_index": self.use_index,
            "model_budget": self.model_budget,
            "id": self.id,
            "trace": self.trace,
        }
        # Emitted only when set, keeping the wire shape of pre-planner
        # requests byte-stable.
        if self.planner:
            obj["planner"] = True
        if self.strategy is not None:
            obj["strategy"] = self.strategy
        if self.queries is not None:
            obj["queries"] = list(self.queries)
        if self.rewrite is not None:
            obj["rewrite"] = self.rewrite
        return obj

    @classmethod
    def from_obj(cls, obj: dict) -> "JobRequest":
        known = {f: obj[f] for f in cls.__dataclass_fields__ if f in obj}
        if "op" not in known or "kb_text" not in known:
            raise ValueError("job request needs at least 'op' and 'kb_text'")
        return cls(**known)


@dataclass
class JobResult:
    """The outcome of one job, primitive enough for JSON and pickling.

    ``applications`` counts *new* rule applications this job performed
    (zero on a pure warm hit); ``total_applications`` includes the
    snapshot prefix it resumed from.  ``incomplete`` marks degraded
    answers (deadline expiry before an exact verdict); a ``True``
    ``entailed`` is sound even then.  ``warm`` marks an exact snapshot
    resume; ``ancestor`` marks an incremental resume from a nearest-
    ancestor snapshot (the missing facts were injected as a delta) —
    the two are mutually exclusive.  ``strategy`` names the planner (or
    override) strategy the job ran under, None on the plain config path.
    """

    op: str
    ok: bool = True
    error: Optional[str] = None
    entailed: Optional[bool] = None
    method: Optional[str] = None
    incomplete: bool = False
    warm: bool = False
    ancestor: bool = False
    applications: int = 0
    total_applications: int = 0
    atoms: int = 0
    terminated: bool = False
    deadline_expired: bool = False
    seconds: float = 0.0
    strategy: Optional[str] = None
    instance: Optional[list] = field(default=None, repr=False)
    #: For ``batch_entail``: one primitive dict per input query (in
    #: order) with ``query`` / ``entailed`` / ``method`` /
    #: ``chase_steps`` / ``incomplete`` keys.
    results: Optional[list] = None

    def to_obj(self) -> dict:
        obj = {
            "op": self.op,
            "ok": self.ok,
            "error": self.error,
            "entailed": self.entailed,
            "method": self.method,
            "incomplete": self.incomplete,
            "warm": self.warm,
            "ancestor": self.ancestor,
            "applications": self.applications,
            "total_applications": self.total_applications,
            "atoms": self.atoms,
            "terminated": self.terminated,
            "deadline_expired": self.deadline_expired,
            "seconds": self.seconds,
        }
        if self.strategy is not None:
            obj["strategy"] = self.strategy
        if self.instance is not None:
            obj["instance"] = self.instance
        if self.results is not None:
            obj["results"] = self.results
        return obj

    @classmethod
    def from_obj(cls, obj: dict) -> "JobResult":
        known = {f: obj[f] for f in cls.__dataclass_fields__ if f in obj}
        return cls(**known)


def execute_job(
    request: JobRequest,
    store: Optional[SnapshotStore] = None,
    observer: Optional[Observer] = None,
) -> JobResult:
    """Run one job to completion (or deadline); never raises.

    *store* enables warm starts and checkpoint saves; *observer* is
    handed to the chase engine (process-pool workers pass their local
    metrics observer here instead of mutating process-global state).
    """
    started = time.perf_counter()
    try:
        result = _execute(request, store, observer)
    except Exception as exc:  # noqa: BLE001 - the job boundary
        result = JobResult(
            op=request.op,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
        )
    result.seconds = time.perf_counter() - started
    return result


#: Per-store plan caches: each snapshot store gets one QueryPlanCache
#: bound to its ``query_plans`` table (the in-process tier lives as long
#: as the store object); store-less jobs share the process default.
_PLAN_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _plan_cache_for(store: Optional[SnapshotStore]) -> QueryPlanCache:
    if store is None:
        return default_plan_cache()
    cache = _PLAN_CACHES.get(store)
    if cache is None:
        cache = QueryPlanCache(store=store)
        _PLAN_CACHES[store] = cache
    return cache


def _resolve_strategy(
    request: JobRequest,
    kb,
    store: Optional[SnapshotStore],
) -> tuple:
    """Strategy resolution: an explicit per-request override wins, then
    planner routing (verdict → strategy, cached by ruleset fingerprint),
    then the request's own chase configuration.  Returns the resolved
    ``(strategy, variant, core_every, max_steps, model_budget,
    ancestor_allowed, use_rewrite)``."""
    strategy: Optional[Strategy] = None
    if request.strategy is not None:
        strategy = Strategy.from_obj(request.strategy)
    elif request.planner:
        _, strategy, _ = default_planner().decide(kb, store=store)
    variant = strategy.variant if strategy is not None else request.variant
    core_every = (
        strategy.core_every if strategy is not None else request.core_every
    )
    max_steps = (
        strategy.max_steps if strategy is not None else request.max_steps
    )
    model_budget = (
        strategy.model_budget if strategy is not None else request.model_budget
    )
    ancestor_allowed = (
        strategy.ancestor_resume if strategy is not None else True
    )
    if request.rewrite is not None:
        use_rewrite = request.rewrite
    else:
        use_rewrite = strategy.rewrite if strategy is not None else False
    return (
        strategy,
        variant,
        core_every,
        max_steps,
        model_budget,
        ancestor_allowed,
        use_rewrite,
    )


def _restore_from_store(
    engine: ChaseEngine,
    kb,
    store: Optional[SnapshotStore],
    variant: str,
    core_every: int,
    max_steps: int,
    ancestor_allowed: bool,
) -> tuple:
    """Warm-start *engine* from the store if a usable snapshot exists.

    Returns ``(entry, resumed, ancestor, warm, prior)`` — the exact
    semantics documented on :func:`execute_job`."""
    entry = None
    ancestor = False
    if store is not None:
        # Spans here use the ambient observer (the worker's tracer, or
        # the server's in workers=0 mode) so the store's own
        # snapshot_access events land inside the snapshot_load span.
        with _span("snapshot_load", variant=variant):
            entry = store.load_entry(kb, variant, core_every)
        if entry is None and store.ancestor_resume and ancestor_allowed:
            # Exact miss: probe for the nearest ancestor whose facts are
            # a subset of this KB; resuming it plus the missing facts is
            # a fair-derivation prefix of the grown KB (the resolve gate
            # documents the soundness conditions it enforces).
            with _span("snapshot_resolve", variant=variant):
                entry = store.resolve_ancestor(
                    kb,
                    variant,
                    core_every,
                    max_applications=max_steps,
                )
            ancestor = entry is not None
    snapshot = entry.state if entry is not None else None
    # A snapshot deeper than this job's budget is left alone: resuming
    # it would answer for a larger budget than the client asked for
    # (and differ from the cold run the budget defines).
    resumed = snapshot is not None and snapshot.applications <= max_steps
    if not resumed:
        ancestor = False
    warm = resumed and not ancestor
    prior = snapshot.applications if resumed else 0
    if resumed:
        if ancestor:
            engine.restore_state(
                merge_facts_into_state(snapshot, entry.missing_atoms)
            )
        else:
            engine.restore_state(snapshot)
    return entry, resumed, ancestor, warm, prior


def _execute(
    request: JobRequest,
    store: Optional[SnapshotStore],
    observer: Optional[Observer],
) -> JobResult:
    if request.op == "batch_entail":
        return _execute_batch(request, store, observer)
    if request.op not in ("chase", "entail"):
        raise ValueError(f"unknown job op {request.op!r}")
    kb = load_kb(request.kb_text)
    query = None
    if request.op == "entail":
        if not request.query:
            raise ValueError("entail jobs need a query")
        query = boolean_cq(request.query)

    (
        strategy,
        variant,
        core_every,
        max_steps,
        model_budget,
        ancestor_allowed,
        use_rewrite,
    ) = _resolve_strategy(request, kb, store)

    if request.op == "entail" and use_rewrite:
        # Backward-rewriting fast path: answer from the base facts with
        # no chase when the cached plan is conclusive; fall through to
        # the race otherwise (incomplete saturation, or a non-rewritable
        # ruleset behind an explicit rewrite=True).
        qplan = _plan_cache_for(store).plan_for(kb, query, observer=observer)
        with _span("rewrite_eval", disjuncts=len(qplan.disjuncts)):
            answer = qplan.evaluate(kb.facts)
        if answer is not None:
            return JobResult(
                op=request.op,
                entailed=answer,
                method="ucq-rewrite-hit" if answer else "ucq-rewrite-miss",
                strategy=strategy.name if strategy is not None else None,
                atoms=len(kb.facts),
            )

    deadline = Deadline(request.timeout)
    engine = ChaseEngine(
        kb,
        variant=variant,
        core_every=core_every,
        observer=observer,
        use_index=request.use_index,
    )

    entry, resumed, ancestor, warm, prior = _restore_from_store(
        engine, kb, store, variant, core_every, max_steps, ancestor_allowed
    )
    snapshot = entry.state if entry is not None else None

    hit = [False]

    def on_step(step) -> None:
        if not hit[0] and query.holds_in(step.instance):
            hit[0] = True

    if request.op == "entail":
        if resumed and query.holds_in(engine.current_instance):
            hit[0] = True

        def stopper() -> bool:
            return hit[0] or deadline.expired()

    else:
        stopper = deadline.expired

    step_hook = on_step if (query is not None and not hit[0]) else None
    with _span("chase", variant=variant, warm=warm, ancestor=ancestor):
        if resumed:
            chase = engine.resume(
                max_steps - prior, on_step=step_hook, should_stop=stopper
            )
        else:
            chase = engine.run(
                max_steps, on_step=step_hook, should_stop=stopper
            )

    new_apps = chase.applications
    total = prior + new_apps
    final = engine.current_instance
    expired = chase.stopped and not hit[0]

    if store is not None and (
        snapshot is None or ancestor or total > snapshot.applications
    ):
        # Resumed saves pass the loaded entry back so the store appends
        # a delta record to its chain instead of writing a full blob;
        # an ancestor save files the grown KB's own (new) key, its
        # chain sharing the ancestor's records.
        with _span("snapshot_save"):
            store.save(
                kb, engine.export_state(), parent=entry if resumed else None
            )

    result = JobResult(
        op=request.op,
        warm=warm,
        ancestor=ancestor,
        strategy=strategy.name if strategy is not None else None,
        applications=new_apps,
        total_applications=total,
        atoms=len(final),
        terminated=chase.terminated,
        deadline_expired=expired,
        incomplete=expired,
    )

    if request.op == "chase":
        result.method = "chase-deadline" if expired else "chase"
        result.instance = [str(at) for at in final.sorted_atoms()]
        return result

    if hit[0]:
        result.entailed = True
        if new_apps == 0 and warm:
            result.method = "warm-snapshot-hit"
        elif new_apps == 0 and ancestor:
            result.method = "ancestor-snapshot-hit"
        else:
            result.method = "chase-prefix-hit"
        result.incomplete = False
    elif chase.terminated:
        result.entailed = False
        result.method = "chase-fixpoint-miss"
    elif expired:
        result.entailed = None
        result.method = "deadline-expired"
    elif model_budget > 0 and not deadline.expired():
        with _span("countermodel", budget=model_budget):
            counter = find_countermodel(
                kb, query, max_domain=model_budget
            )
        if counter.found:
            result.entailed = False
            result.method = "finite-countermodel"
        else:
            result.entailed = None
            result.method = "race-undecided"
    else:
        result.entailed = None
        result.method = "chase-budget-exhausted"
    return result


def _execute_batch(
    request: JobRequest,
    store: Optional[SnapshotStore],
    observer: Optional[Observer],
) -> JobResult:
    """Evaluate many *distinct* Boolean CQs against one loaded snapshot.

    Complements the server's in-flight dedup (identical queries share
    one job): the KB is parsed once, the snapshot loaded once, and ONE
    chase runs — each step's instance is tested against every still-open
    query, so the chase budget and the per-step observability traffic
    are paid once for the whole batch.  Rewritable queries are answered
    straight from the base facts by their cached plans and never touch
    the chase at all.  Per-query verdicts use the same methods as the
    single-query path.
    """
    if not request.queries:
        raise ValueError("batch_entail jobs need a nonempty 'queries' list")
    kb = load_kb(request.kb_text)
    queries = [boolean_cq(text) for text in request.queries]

    (
        strategy,
        variant,
        core_every,
        max_steps,
        model_budget,
        ancestor_allowed,
        use_rewrite,
    ) = _resolve_strategy(request, kb, store)

    verdicts: list = [None] * len(queries)
    open_queries = set(range(len(queries)))

    def settle(index: int, entailed, method: str, steps: int, **extra) -> None:
        verdicts[index] = {
            "query": request.queries[index],
            "entailed": entailed,
            "method": method,
            "chase_steps": steps,
            "incomplete": bool(extra.get("incomplete", False)),
        }
        open_queries.discard(index)

    if use_rewrite:
        plan_cache = _plan_cache_for(store)
        for i, query in enumerate(queries):
            qplan = plan_cache.plan_for(kb, query, observer=observer)
            with _span("rewrite_eval", disjuncts=len(qplan.disjuncts)):
                answer = qplan.evaluate(kb.facts)
            if answer is not None:
                settle(
                    i,
                    answer,
                    "ucq-rewrite-hit" if answer else "ucq-rewrite-miss",
                    0,
                )

    deadline = Deadline(request.timeout)
    new_apps = 0
    total = 0
    terminated = False
    expired = False
    warm = ancestor = False
    final_atoms = len(kb.facts)

    if open_queries:
        engine = ChaseEngine(
            kb,
            variant=variant,
            core_every=core_every,
            observer=observer,
            use_index=request.use_index,
        )
        entry, resumed, ancestor, warm, prior = _restore_from_store(
            engine, kb, store, variant, core_every, max_steps, ancestor_allowed
        )
        snapshot = entry.state if entry is not None else None
        if resumed:
            restored = engine.current_instance
            for i in sorted(open_queries):
                if queries[i].holds_in(restored):
                    settle(
                        i,
                        True,
                        "warm-snapshot-hit" if warm else "ancestor-snapshot-hit",
                        prior,
                    )

        def on_step(step) -> None:
            for i in sorted(open_queries):
                if queries[i].holds_in(step.instance):
                    settle(i, True, "chase-prefix-hit", prior + step.index)

        def stopper() -> bool:
            return not open_queries or deadline.expired()

        with _span("chase", variant=variant, warm=warm, ancestor=ancestor):
            if resumed:
                chase = engine.resume(
                    max_steps - prior, on_step=on_step, should_stop=stopper
                )
            else:
                chase = engine.run(
                    max_steps, on_step=on_step, should_stop=stopper
                )
        new_apps = chase.applications
        total = prior + new_apps
        terminated = chase.terminated
        expired = chase.stopped and bool(open_queries)
        final = engine.current_instance
        final_atoms = len(final)

        if store is not None and (
            snapshot is None or ancestor or total > snapshot.applications
        ):
            with _span("snapshot_save"):
                store.save(
                    kb,
                    engine.export_state(),
                    parent=entry if resumed else None,
                )

        for i in sorted(open_queries):
            if terminated:
                # The fixpoint is a finite universal model: every open
                # query is exactly refuted by it at once.
                settle(i, False, "chase-fixpoint-miss", total)
            elif expired:
                settle(i, None, "deadline-expired", total, incomplete=True)
            elif model_budget > 0 and not deadline.expired():
                with _span("countermodel", budget=model_budget):
                    counter = find_countermodel(
                        kb, queries[i], max_domain=model_budget
                    )
                if counter.found:
                    settle(i, False, "finite-countermodel", total)
                else:
                    settle(i, None, "race-undecided", total)
            else:
                settle(i, None, "chase-budget-exhausted", total)

    return JobResult(
        op=request.op,
        warm=warm,
        ancestor=ancestor,
        strategy=strategy.name if strategy is not None else None,
        applications=new_apps,
        total_applications=total,
        atoms=final_atoms,
        terminated=terminated,
        deadline_expired=expired,
        incomplete=any(v.get("incomplete") for v in verdicts if v),
        results=verdicts,
    )

"""Property-based tests (hypothesis) for the core data structures and
the paper's foundational invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom, Predicate
from repro.logic.atomset import AtomSet
from repro.logic.cores import core_of, core_retraction, is_core
from repro.logic.homomorphism import (
    find_homomorphism,
    homomorphically_equivalent,
    maps_into,
)
from repro.logic.isomorphism import canonical_form, isomorphic
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.treewidth import (
    decomposition_from_order,
    gaifman_graph,
    min_fill_order,
    mmd_lower_bound,
    treewidth,
    treewidth_upper_bound,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

VARIABLES = [Variable(f"V{i}") for i in range(6)]
CONSTANTS = [Constant(c) for c in "abc"]
PREDICATES = [Predicate("p", 1), Predicate("e", 2), Predicate("t", 3)]

terms_strategy = st.sampled_from(VARIABLES + CONSTANTS)
variables_strategy = st.sampled_from(VARIABLES)


@st.composite
def atoms_strategy(draw):
    predicate = draw(st.sampled_from(PREDICATES))
    args = tuple(draw(terms_strategy) for _ in range(predicate.arity))
    return Atom(predicate, args)


@st.composite
def atomsets_strategy(draw, min_size=1, max_size=7):
    atoms = draw(
        st.lists(atoms_strategy(), min_size=min_size, max_size=max_size)
    )
    return AtomSet(atoms)


@st.composite
def substitutions_strategy(draw):
    domain = draw(st.lists(variables_strategy, unique=True, max_size=4))
    return Substitution({var: draw(terms_strategy) for var in domain})


SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# substitution algebra
# ---------------------------------------------------------------------------


@SETTINGS
@given(substitutions_strategy(), substitutions_strategy(), atomsets_strategy())
def test_composition_agrees_with_sequential_application(s1, s2, atoms):
    composed = s2.compose(s1)
    assert composed.apply(atoms) == s2.apply(s1.apply(atoms))


@SETTINGS
@given(substitutions_strategy(), atomsets_strategy())
def test_identity_composition_neutral(sigma, atoms):
    identity = Substitution.identity()
    assert sigma.compose(identity).apply(atoms) == sigma.apply(atoms)
    assert identity.compose(sigma).apply(atoms) == sigma.apply(atoms)


@SETTINGS
@given(substitutions_strategy())
def test_restrict_then_merge_recovers(sigma):
    domain = list(sigma.domain())
    left = sigma.restrict(domain[: len(domain) // 2])
    right = sigma.without(domain[: len(domain) // 2])
    assert left.merge(right) == sigma


# ---------------------------------------------------------------------------
# homomorphisms
# ---------------------------------------------------------------------------


@SETTINGS
@given(atomsets_strategy())
def test_identity_is_endomorphism(atoms):
    assert maps_into(atoms, atoms)


@SETTINGS
@given(atomsets_strategy(), substitutions_strategy())
def test_substitution_image_receives_homomorphism(atoms, sigma):
    """σ itself witnesses atoms -> σ(atoms)."""
    image = sigma.apply(atoms)
    assert maps_into(atoms, image)


@SETTINGS
@given(atomsets_strategy(), atomsets_strategy())
def test_found_homomorphisms_are_homomorphisms(source, target):
    hom = find_homomorphism(source, target)
    if hom is not None:
        assert hom.is_homomorphism(source, target)


@SETTINGS
@given(atomsets_strategy(), atomsets_strategy())
def test_subset_maps_into_superset(small, large):
    union = small.union(large)
    assert maps_into(small, union)


# ---------------------------------------------------------------------------
# cores (Section 2 invariants)
# ---------------------------------------------------------------------------


@SETTINGS
@given(atomsets_strategy(max_size=6))
def test_core_is_always_core(atoms):
    assert is_core(core_of(atoms))


@SETTINGS
@given(atomsets_strategy(max_size=6))
def test_core_hom_equivalent_to_original(atoms):
    assert homomorphically_equivalent(atoms, core_of(atoms))


@SETTINGS
@given(atomsets_strategy(max_size=6))
def test_core_retraction_is_retraction(atoms):
    retraction = core_retraction(atoms)
    assert retraction.is_retraction_of(atoms)
    assert retraction.apply(atoms) == core_of(atoms)


@SETTINGS
@given(atomsets_strategy(max_size=6))
def test_core_is_subset(atoms):
    assert core_of(atoms).issubset(atoms)


@SETTINGS
@given(atomsets_strategy(max_size=5))
def test_core_idempotent_up_to_isomorphism(atoms):
    once = core_of(atoms)
    twice = core_of(once)
    assert once == twice


# ---------------------------------------------------------------------------
# isomorphism / canonical forms
# ---------------------------------------------------------------------------


@SETTINGS
@given(atomsets_strategy(max_size=5))
def test_renaming_preserves_canonical_form(atoms):
    renaming = Substitution(
        {v: Variable(f"W{i}") for i, v in enumerate(sorted(atoms.variables(), key=lambda t: t.name))}
    )
    renamed = renaming.apply(atoms)
    if len(renamed.terms()) == len(atoms.terms()):  # injective renaming
        assert isomorphic(atoms, renamed)
        assert canonical_form(atoms) == canonical_form(renamed)


# ---------------------------------------------------------------------------
# treewidth (Definition 4, Fact 1)
# ---------------------------------------------------------------------------


@SETTINGS
@given(atomsets_strategy(max_size=6), atomsets_strategy(max_size=4))
def test_fact_1_treewidth_monotone(atoms, extra):
    """Fact 1: A ⊆ B implies tw(A) ≤ tw(B)."""
    union = atoms.union(extra)
    assert treewidth(atoms) <= treewidth(union)


@SETTINGS
@given(atomsets_strategy(max_size=7))
def test_exact_between_bounds(atoms):
    graph = gaifman_graph(atoms)
    exact = treewidth(atoms)
    assert mmd_lower_bound(graph) <= exact
    assert exact <= treewidth_upper_bound(graph)[0]


@SETTINGS
@given(atomsets_strategy(max_size=7))
def test_min_fill_decomposition_validates(atoms):
    graph = gaifman_graph(atoms)
    decomposition = decomposition_from_order(graph, min_fill_order(graph))
    assert decomposition.validate_for_atoms(atoms)
    assert decomposition.validate_for_graph(graph)

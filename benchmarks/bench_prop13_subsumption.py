"""E10 — Proposition 13: core-bts subsumes fes and bts, which are
mutually incomparable.

Regenerates the proof's two witnesses and checks the three subsumption
facts on executable evidence:

* ``{r(X,Y) → ∃Z r(Y,Z)}`` is bts (restricted chase treewidth 1) but not
  fes (core chase diverges) — and core-bts (core chase treewidth 1);
* ``{r(X,Y) ∧ r(Y,Z) → ∃V ...}`` is fes (core chase terminates) but not
  bts within the measured horizon (restricted-chase treewidth grows) —
  and core-bts (finite sequences are trivially bounded);
* therefore fes ⊄ bts, bts ⊄ fes, and both ⊆ core-bts.
"""

from repro.analysis import TREEWIDTH, certify_fes, profile_chase
from repro.chase.engine import ChaseVariant
from repro.kbs.witnesses import bts_not_fes_kb, fes_not_bts_kb
from repro.util import Table

from conftest import save_table


def collect_evidence() -> dict:
    chain = bts_not_fes_kb()
    fold = fes_not_bts_kb()
    return {
        "chain_fes": certify_fes(chain, max_steps=15),
        "chain_rc": profile_chase(
            chain, ChaseVariant.RESTRICTED, TREEWIDTH, max_steps=12
        ),
        "chain_cc": profile_chase(chain, ChaseVariant.CORE, TREEWIDTH, max_steps=12),
        "fold_fes": certify_fes(fold, max_steps=100),
        "fold_rc": profile_chase(
            fold, ChaseVariant.RESTRICTED, TREEWIDTH, max_steps=22
        ),
        "fold_cc": profile_chase(fold, ChaseVariant.CORE, TREEWIDTH, max_steps=100),
    }


def bench_prop13_subsumption(benchmark):
    ev = benchmark.pedantic(collect_evidence, rounds=1, iterations=1)
    table = Table(
        ["ruleset", "core chase", "rc tw (max)", "cc tw (max)", "class verdict"],
        title="Prop. 13 — fes/bts incomparability, both inside core-bts",
    )
    table.add_row(
        "r(X,Y) -> EZ r(Y,Z)",
        "diverges",
        ev["chain_rc"].uniform,
        ev["chain_cc"].uniform,
        "bts, not fes, core-bts",
    )
    table.add_row(
        "r(X,Y),r(Y,Z) -> EV ...",
        f"terminates ({ev['fold_fes']} apps)",
        f"{ev['fold_rc'].uniform} (growing)",
        f"{ev['fold_cc'].uniform} (finite run)",
        "fes, not bts, core-bts",
    )

    assert ev["chain_fes"] is None, "chain must not be fes"
    assert ev["chain_rc"].uniform == 1, "chain rc must stay treewidth 1 (bts)"
    assert ev["chain_cc"].uniform == 1, "chain cc bounded (core-bts)"
    assert ev["fold_fes"] is not None, "fold must be fes"
    assert ev["fold_rc"].uniform > ev["fold_rc"].values[0], "fold rc must grow"
    assert ev["fold_cc"].terminated, "fold cc terminates => trivially bounded"

    extra = (
        "shape: the two witnesses separate fes and bts in both directions,\n"
        "and both land in core-bts — the subsumption of Proposition 13."
    )
    save_table("prop13_subsumption", table, extra)

"""Conjunctive queries and CQ-entailment decision procedures
(Propositions 1/9, Theorems 1–2)."""

from .certain import active_domain, certain_answers, certain_answers_over
from .cq import ConjunctiveQuery, boolean_cq
from .decomposed import DecomposedQuery, holds_via_decomposition
from .entailment import (
    EntailmentVerdict,
    chase_entails_prefix,
    decide_entailment,
    entails_via_terminating_chase,
)
from .modelfinder import ModelSearchResult, find_countermodel, find_finite_model
from .plans import (
    CompiledQueryPlan,
    QueryPlanCache,
    default_plan_cache,
    query_shape,
)
from .rewriting import (
    RewriteResult,
    decide_by_rewriting,
    rewritable_fragment,
    rewrite_ucq,
)
from .ucq import UnionQuery, decide_union_entailment

__all__ = [
    "ConjunctiveQuery",
    "DecomposedQuery",
    "active_domain",
    "certain_answers",
    "certain_answers_over",
    "holds_via_decomposition",
    "EntailmentVerdict",
    "ModelSearchResult",
    "boolean_cq",
    "chase_entails_prefix",
    "decide_entailment",
    "entails_via_terminating_chase",
    "UnionQuery",
    "decide_union_entailment",
    "find_countermodel",
    "find_finite_model",
    "CompiledQueryPlan",
    "QueryPlanCache",
    "RewriteResult",
    "decide_by_rewriting",
    "default_plan_cache",
    "query_shape",
    "rewritable_fragment",
    "rewrite_ucq",
]

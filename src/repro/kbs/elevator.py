"""The inflating elevator KB ``K_v`` (Section 7, Definition 9).

``K_v`` is the paper's second counterexample: it has a universal model
``I^v_*`` of treewidth 1 (Definition 11, Proposition 7), yet **every**
core chase sequence for ``K_v`` contains structures of ever-growing
treewidth (Proposition 8, Corollary 1): the cores ``I^v_n`` — with
``tw(I^v_n) ≥ ⌊n/3⌋ + 1`` — are forced to appear.

Window generators provided, all with coordinate-named nulls ``Xv_i_j``
(column ``i``, row ``j``; terms exist for ``i - 1 ≤ j ≤ 2i``, ``j ≥ 0``):

* ``I^v`` (Definition 10) — the universal model produced by the
  restricted chase;
* ``I^v_*`` (Definition 11) — the treewidth-1 universal model: the
  diagonal chain of the ``X^i_{2i}``;
* ``I^v_n`` (Definition 12) — the family of cores of growing treewidth;
* a finite *capped* model of ``K_v`` for universality tests.

Atoms of ``I^v`` (Definition 10), for all ``i, j`` such that the
mentioned nulls exist:

* ``d(X^i_j)`` and ``f(X^i_j)`` everywhere;
* ``c(X^i_{2i})`` (the diagonal tops);
* ``h(X^i_j, X^{i+1}_j)``;
* ``h(X^i_{2i}, X^{i+1}_{2i+1})`` and ``h(X^i_{2i}, X^{i+1}_{2i+2})``;
* ``v(X^i_j, X^i_{j+1})``;
* ``v(X^i_j, X^i_j)`` for ``j ≥ i``.
"""

from __future__ import annotations

from typing import Iterable

from ..logic.atoms import Atom, atom
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.parser import parse_atoms, parse_rules
from ..logic.terms import Term, Variable

__all__ = [
    "elevator_kb",
    "universal_model_window",
    "diagonal_model",
    "core_family_member",
    "capped_model",
    "coordinates",
    "term_at",
    "grid_block_origin",
]

_RULES_TEXT = """
# Definition 9 / Figure 3 of the paper.
[Rv1] c(X), h(X,Y) -> v(Y,Yp), v(Yp,Ypp), c(Ypp)
[Rv2] d(X), f(X), v(X,Xp) -> h(Xp,Yp), f(Yp)
[Rv3] v(X,Xp), h(X,Y) -> v(Y,Yp), h(Xp,Yp)
[Rv4] c(X) -> d(X)
[Rv5] v(X,Xp), d(Xp) -> d(X)
[Rv6] h(X,Y), d(Y), f(Y) -> f(X), v(X,X)
[Rv7] c(X), h(X,Y), v(Y,Yp), f(Yp) -> h(X,Yp)
"""

_FACTS_TEXT = "c(Xv_0_0), d(Xv_0_0), h(Xv_0_0, Xv_1_0), f(Xv_1_0)"


def elevator_kb() -> KnowledgeBase:
    """The inflating elevator KB ``K_v = (F_v, Σ_v)``."""
    return KnowledgeBase(
        parse_atoms(_FACTS_TEXT), parse_rules(_RULES_TEXT), name="inflating-elevator"
    )


def term_at(i: int, j: int) -> Variable:
    """The null ``X^i_j`` (requires ``max(0, i - 1) ≤ j ≤ 2i``)."""
    if not _exists(i, j):
        raise ValueError(f"no elevator term at column {i}, row {j}")
    return Variable(f"Xv_{i}_{j}")


def _exists(i: int, j: int) -> bool:
    return i >= 0 and max(0, i - 1) <= j <= 2 * i


def _atoms_for_columns(max_column: int) -> Iterable[Atom]:
    for i in range(max_column + 1):
        low = max(0, i - 1)
        for j in range(low, 2 * i + 1):
            term = term_at(i, j)
            yield atom("d", term)
            yield atom("f", term)
            if j == 2 * i:
                yield atom("c", term)
            if j >= i:
                yield atom("v", term, term)
            if j + 1 <= 2 * i:
                yield atom("v", term, term_at(i, j + 1))
            if i + 1 <= max_column:
                if _exists(i + 1, j):
                    yield atom("h", term, term_at(i + 1, j))
                if j == 2 * i:
                    yield atom("h", term, term_at(i + 1, 2 * i + 1))
                    yield atom("h", term, term_at(i + 1, 2 * i + 2))


def universal_model_window(max_column: int) -> AtomSet:
    """The induced substructure of ``I^v`` on columns ``0..max_column``."""
    if max_column < 0:
        raise ValueError("max_column must be >= 0")
    return AtomSet(_atoms_for_columns(max_column))


def diagonal_model(length: int) -> AtomSet:
    """A prefix of ``I^v_*`` (Definition 11): the diagonal chain on the
    terms ``X^i_{2i}`` for ``i ≤ length`` — ``c``, ``d``, ``f`` and a
    v-loop on every element, plus ``h`` along the chain.  The full
    infinite structure is a universal model of ``K_v`` of treewidth 1
    (Proposition 7)."""
    if length < 0:
        raise ValueError("length must be >= 0")
    atoms = AtomSet()
    for i in range(length + 1):
        term = term_at(i, 2 * i)
        atoms.add(atom("c", term))
        atoms.add(atom("d", term))
        atoms.add(atom("f", term))
        atoms.add(atom("v", term, term))
        if i + 1 <= length:
            atoms.add(atom("h", term, term_at(i + 1, 2 * i + 2)))
    return atoms


def core_family_member(n: int) -> AtomSet:
    """``I^v_n`` (Definition 12): the substructure of ``I^v`` induced by

    ``{X^i_{2i} | i ≤ ⌊n/2⌋} ∪ {X^i_j | i ≤ n + 1, j ≥ n}``

    with the following atoms removed: ``v(X^i_j, X^i_j)`` and
    ``f(X^i_j)`` for ``j > n``, and ``h(X^i_j, X^{i+1}_k)`` for
    ``k > j`` and ``k > n``.

    ``I^v_0 = F_v``.  Every ``I^v_n`` is a core (Proposition 8(1)) and
    contains a ``(⌊n/3⌋+1) × (⌊n/3⌋+1)`` grid (Proposition 8(2)), hence
    has treewidth ≥ ``⌊n/3⌋ + 1`` by Fact 2.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if n == 0:
        return elevator_kb().facts.copy()
    keep: set[Term] = set()
    for i in range(0, n // 2 + 1):
        keep.add(term_at(i, 2 * i))
    for i in range(0, n + 2):
        low = max(max(0, i - 1), n)
        for j in range(low, 2 * i + 1):
            keep.add(term_at(i, j))
    window = universal_model_window(n + 2)
    induced = window.induced(keep)
    coords = coordinates(induced)
    pruned = AtomSet()
    for at in induced:
        name = at.predicate.name
        if name in ("v", "f"):
            j_values = [coords[t][1] for t in at.term_set()]
            if name == "f" and j_values[0] > n:
                continue
            if name == "v" and len(at.term_set()) == 1 and j_values[0] > n:
                continue
        if name == "h":
            (i1, j1) = coords[at.args[0]]
            (i2, k) = coords[at.args[1]]
            if k > j1 and k > n:
                continue
        pruned.add(at)
    return pruned


def grid_block_origin(n: int) -> tuple[int, int]:
    """The anchor ``(i, k)`` of the Proposition 8(2) grid witness inside
    ``I^v_n``: rows ``2n//3 + 1 .. n + 1`` and columns ``n .. n + m - 1``
    where ``m = n//3 + 2`` is the block side length."""
    return (2 * n // 3 + 1, n)


def capped_model(max_column: int) -> AtomSet:
    """A **finite model** of ``K_v``: a window of ``I^v`` capped with a
    saturated element ``omega``.

    ``omega`` carries every unary predicate plus h/v self-loops; every
    window term gets a ``v`` edge into ``omega``, and terms with a v-loop
    (``j ≥ i``, exactly those that rule ``Rv6`` could fire back on) also
    get an ``h`` edge into ``omega``.  Restricting the h-cap this way is
    what keeps ``Rv6`` satisfied — an ``h`` edge out of a loop-less
    bottom-row term would force a v-loop the window does not have.
    """
    window = universal_model_window(max_column)
    coords = coordinates(window)
    omega = Variable("Omega_v")
    capped = window.copy()
    for pred in ("c", "d", "f"):
        capped.add(atom(pred, omega))
    capped.add(atom("h", omega, omega))
    capped.add(atom("v", omega, omega))
    for term in window.terms():
        capped.add(atom("v", term, omega))
        i, j = coords[term]
        if j >= i:
            capped.add(atom("h", term, omega))
    return capped


def coordinates(atoms: AtomSet) -> dict[Term, tuple[int, int]]:
    """Recover the cartesian coordinates of generator-named terms
    (``Xv_i_j``); other terms are skipped."""
    coords: dict[Term, tuple[int, int]] = {}
    for term in atoms.terms():
        name = term.name
        if not name.startswith("Xv_"):
            continue
        try:
            _, i_text, j_text = name.split("_")
            coords[term] = (int(i_text), int(j_text))
        except ValueError:
            continue
    return coords

"""P1b — engine performance: core computation.

The core chase's per-step cost is dominated by core retraction; these
benches measure it on the canonical foldable/rigid families and on the
paper's own structures.
"""

import pytest

from repro.kbs.generators import path_with_shortcut, star_instance
from repro.kbs.staircase import step as staircase_step
from repro.logic.cores import core_of, core_retraction, is_core


@pytest.mark.parametrize("rays", [6, 18])
def bench_core_of_star(benchmark, rays):
    """Maximally foldable: all rays collapse onto one."""
    atoms = star_instance(rays)
    core = benchmark(lambda: core_of(atoms))
    assert len(core) == 1


@pytest.mark.parametrize("length", [4, 8])
def bench_core_of_parallel_paths(benchmark, length):
    """The null path folds onto the constant path edge by edge."""
    atoms = path_with_shortcut(length)
    core = benchmark(lambda: core_of(atoms))
    assert len(core) == length


def bench_is_core_positive(benchmark):
    """Certifying core-ness requires exhausting the search — the
    expensive direction."""
    atoms = staircase_step(2)
    from repro.kbs.staircase import column

    target = column(3)
    assert benchmark(lambda: is_core(target))


def bench_core_retraction_staircase_step(benchmark):
    """The actual operation of the K_h core chase: fold a step S^h_k onto
    its core column C^h_{k+1}."""
    atoms = staircase_step(3)
    retraction = benchmark(lambda: core_retraction(atoms))
    assert retraction.apply(atoms) != atoms or len(retraction) == 0

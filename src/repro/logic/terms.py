"""Terms of the language: variables and constants.

The paper (Section 2) works with countably infinite disjoint sets ``Δ_V``
of variables and ``Δ_C`` of constants; the set of terms is their union.
Variables double as the *labeled nulls* of instances (the paper conflates
the two notions on purpose, see Section 2), so a fresh-variable source is
the mechanism by which rule applications invent new nulls.

Two pieces of global structure live here:

* ``FreshVariableSource`` hands out variables that are guaranteed not to
  collide with anything produced before (within one source), which is the
  "fresh variable" requirement of rule application (Footnote 2 of the
  paper: a null must be fresh with respect to the *entire* computation).
* every :class:`Variable` carries a creation ``rank``.  Section 8's robust
  renaming needs a total order ``<_X`` on variables with order type ω; the
  creation rank provides the default such order (see
  :mod:`repro.util.orders` for alternatives).
"""

from __future__ import annotations

import itertools
import threading
from typing import Union

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "FreshVariableSource",
    "is_variable",
    "is_constant",
]


class Term:
    """Common base class for :class:`Variable` and :class:`Constant`.

    Terms are immutable value objects; equality and hashing are by kind
    and name so that parsing the same text twice yields interchangeable
    objects.
    """

    __slots__ = ("name",)

    name: str

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"term name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.name


_RANK_COUNTER = itertools.count()
_RANK_LOCK = threading.Lock()


def _next_rank() -> int:
    with _RANK_LOCK:
        return next(_RANK_COUNTER)


class Variable(Term):
    """A variable (equivalently, a labeled null).

    Equality and hashing are *by name*: ``Variable("X") == Variable("X")``.
    The ``rank`` attribute records global creation order and backs the
    default variable order ``<_X`` used by the robust renaming
    (Definition 14).  The rank of a name is fixed the first time a
    variable with that name is created, so re-parsing a formula does not
    perturb the order.
    """

    __slots__ = ("rank",)

    _rank_by_name: dict[str, int] = {}

    rank: int

    def __init__(self, name: str):
        super().__init__(name)
        with _RANK_LOCK:
            rank = Variable._rank_by_name.get(name)
            if rank is None:
                rank = next(_RANK_COUNTER)
                Variable._rank_by_name[name] = rank
        object.__setattr__(self, "rank", rank)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __lt__(self, other: "Variable") -> bool:
        """Default ``<_X`` order: by creation rank (ties impossible)."""
        if not isinstance(other, Variable):
            return NotImplemented
        return self.rank < other.rank


class Constant(Term):
    """A constant.  The paper operates under the unique name assumption
    (Footnote 1), so distinct constants always denote distinct objects and
    a homomorphism must map every constant to itself.
    """

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.name == self.name

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("const", self.name))

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return self.name < other.name


def is_variable(term: Term) -> bool:
    """Return True iff *term* is a variable (labeled null)."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True iff *term* is a constant."""
    return isinstance(term, Constant)


class FreshVariableSource:
    """A deterministic source of fresh variables.

    Rule application (the ``α(I, tr)`` operation of Section 2) replaces
    each existential variable of the head with a *fresh* variable.
    Footnote 2 of the paper stresses that freshness is global: a null must
    not have occurred at any previous computation step.  A single source
    per chase run guarantees this, and the sequential naming scheme keeps
    runs reproducible.

    Parameters
    ----------
    prefix:
        Name prefix for generated variables; the default ``"_n"`` cannot
        collide with parser-produced variables (which never start with an
        underscore).
    start:
        First index to hand out.  A checkpoint-resumed chase
        (:meth:`repro.chase.engine.ChaseEngine.restore_state`) restores
        the counter here so the continuation invents exactly the nulls
        the uninterrupted run would have.
    """

    def __init__(self, prefix: str = "_n", start: int = 0):
        if start < 0:
            raise ValueError("start must be >= 0")
        self._prefix = prefix
        self._count = start

    def fresh(self, hint: Union[str, Variable, None] = None) -> Variable:
        """Return a brand-new variable.

        ``hint`` (an existential variable or its name) is woven into the
        generated name purely for readability of traces.
        """
        index = self._count
        self._count += 1
        if hint is None:
            return Variable(f"{self._prefix}{index}")
        hint_name = hint.name if isinstance(hint, Variable) else str(hint)
        return Variable(f"{self._prefix}{index}_{hint_name}")

    @property
    def count(self) -> int:
        """Number of variables handed out so far."""
        return self._count

    @property
    def prefix(self) -> str:
        """The name prefix generated variables carry."""
        return self._prefix

    def __repr__(self) -> str:
        return f"FreshVariableSource(prefix={self._prefix!r})"

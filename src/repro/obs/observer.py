"""The :class:`Observer` protocol the instrumented hot paths report into.

Design constraints (ISSUE 1 / the telemetry tentpole):

* **Zero-cost when off.**  Every instrumented module keeps a reference
  to this module and tests ``observer.current is not None`` — a single
  attribute load and identity check — before doing any accounting.  The
  chase engine resolves the observer once per :meth:`~ChaseEngine.run`.
* **Injectable.**  :class:`~repro.chase.engine.ChaseEngine` accepts an
  ``observer=`` argument for scoped use; the module-global ``current``
  (managed by :func:`set_observer` / :func:`observing`) reaches the
  functional hot paths (homomorphism search, core retraction, exact
  treewidth) that have no object to hang state on.
* **No-op base class.**  Subclasses override only the callbacks they
  care about; every callback takes keyword arguments only, so adding a
  payload field later never breaks an observer.

The callbacks mirror the paper's quantities: per-step retraction sizes
(Section 7), homomorphism search effort (the single semantic primitive),
treewidth search budgets (Section 4), robust-renaming churn (Section 8).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

__all__ = [
    "Observer",
    "CompositeObserver",
    "current",
    "get_observer",
    "set_observer",
    "observing",
]


class Observer:
    """No-op base observer; override the callbacks you need.

    All callbacks are keyword-only.  Implementations must not mutate the
    engine's state and should be fast — they run inline on hot paths.
    """

    __slots__ = ()

    # -- chase engine (repro.chase.engine) -----------------------------

    def chase_step_started(self, *, step: int, variant: str, atoms: int) -> None:
        """A chase iteration began: the engine is about to enumerate the
        active triggers of the current ``F_{step-1}`` (*atoms* atoms)."""

    def trigger_selected(
        self, *, step: int, rule: Optional[str], active: int
    ) -> None:
        """Fair scheduling picked the oldest of *active* triggers."""

    def trigger_retired(
        self,
        *,
        step: int,
        rule: Optional[str],
        reason: str,
        count: int = 1,
    ) -> None:
        """*count* triggers left the active pool: ``applied`` (the
        selected trigger was applied / is now satisfied) or
        ``collapsed`` (a simplification folded distinct trigger keys
        together)."""

    def chase_step_finished(
        self,
        *,
        step: int,
        rule: Optional[str],
        atoms_before: int,
        atoms_applied: int,
        atoms_after: int,
        retracted: int,
    ) -> None:
        """Step *step* is recorded: ``F_{step-1}`` had *atoms_before*
        atoms, the application ``A_step`` has *atoms_applied*, the
        simplified ``F_step`` has *atoms_after*; *retracted* is the
        difference (the paper's per-step retraction size)."""

    # -- core retraction (repro.logic.cores) ---------------------------

    def core_retraction(
        self,
        *,
        atoms_before: int,
        atoms_after: int,
        variables_folded: int,
        seconds: float,
    ) -> None:
        """One :func:`~repro.logic.cores.core_retraction` call finished
        (identity retractions report ``atoms_before == atoms_after``)."""

    # -- incremental core maintenance (repro.logic.coremaint) ----------

    def core_maintenance(
        self,
        *,
        mode: str,
        atoms_before: int,
        atoms_after: int,
        folds: int,
        candidates_tried: int,
        skip_hits: int,
        seeded_searches: int,
        pairs_checked: int,
        cert_invalidated: int,
        clean_broken: bool,
        seconds: float,
    ) -> None:
        """One :meth:`~repro.logic.coremaint.CoreMaintainer.retract`
        finished.  *mode* is ``incremental`` or ``full``;
        *candidates_tried* counts per-variable fold searches launched
        (*seeded_searches* of which carried an identity seed),
        *skip_hits* counts certified variables skipped wholesale by the
        escape scan, *pairs_checked* the pinned (old, delta) atom pairs
        that scan enumerated, *cert_invalidated* the certificates
        invalidated on entry by the step's delta, and *clean_broken*
        whether a fold moved the previously certified part (forcing the
        exact fallback and a full certificate recompute)."""

    # -- homomorphism search (repro.logic.homomorphism) ----------------

    def homomorphism_search(
        self,
        *,
        found: bool,
        backtracks: int,
        source_atoms: int,
        target_atoms: int,
        seconds: float,
    ) -> None:
        """One single-witness search finished; *backtracks* counts undo
        operations of tentative atom matches (the search effort)."""

    def hom_memo_lookup(self, *, hit: bool, entries: int) -> None:
        """One memo-cache consultation by a single-witness search
        (:mod:`repro.logic.homcache`); *entries* is the cache size."""

    # -- trigger index (repro.chase.trigger_index) ---------------------

    def trigger_index_update(
        self,
        *,
        step: int,
        delta_atoms: int,
        triggers_new: int,
        triggers_reused: int,
        satisfaction_rechecks: int,
        transported: int,
        collapsed: int,
    ) -> None:
        """The incremental trigger index absorbed one chase step:
        *delta_atoms* atoms entered the instance, *triggers_new* triggers
        were discovered by delta re-matching while *triggers_reused* were
        carried over unchanged, *satisfaction_rechecks* satisfaction
        tests actually ran, and — when the step retracted — *transported*
        live triggers travelled through the simplification with
        *collapsed* of them folding onto identical keys."""

    # -- compiled kernel (repro.logic.compiled / repro.chase.compiled_index)

    def compile(self, *, rule: str, body_atoms: int, variables: int) -> None:
        """One rule body was compiled to a join plan over the interned
        relations (:class:`~repro.chase.compiled_index.
        CompiledTriggerIndex` construction, or recompilation after a
        symbol-table reset)."""

    def join_plan(
        self,
        *,
        delta_atoms: int,
        plans_run: int,
        triggers_new: int,
        tuples: int,
    ) -> None:
        """One semi-naive delta round finished: *plans_run* compiled
        body plans were seeded from *delta_atoms* new tuples, yielding
        *triggers_new* previously unseen triggers; *tuples* is the
        instance's current interned-tuple count."""

    # -- query service (repro.service) ---------------------------------

    def service_request(self, *, op: str, coalesced: bool) -> None:
        """The server accepted one request; *coalesced* is True when an
        identical in-flight job absorbed it (no new work scheduled)."""

    def service_job(
        self,
        *,
        op: str,
        ok: bool,
        warm: bool,
        incomplete: bool,
        deadline_expired: bool,
        applications: int,
        seconds: float,
        ancestor: bool = False,
    ) -> None:
        """One service job finished: *warm* iff it resumed from an exact
        chase snapshot, *ancestor* iff it resumed incrementally from a
        nearest-ancestor snapshot, *incomplete* iff it degraded to
        partial sound answers, *applications* the new rule applications
        it performed, *seconds* its wall-clock latency (queueing
        included)."""

    def service_retry(
        self,
        *,
        op: str,
        attempt: int,
        delay: float,
        error: str,
    ) -> None:
        """The supervised executor scheduled retry *attempt* (1-based)
        of a job after a transient failure (*error*), to fire after
        *delay* seconds of jittered exponential backoff."""

    def service_pool_rebuild(self, *, pending: int) -> None:
        """The executor replaced a broken worker pool (a worker died and
        poisoned it); *pending* jobs were in flight at the swap."""

    def planner_decision(
        self,
        *,
        strategy: str,
        cached: str,
        rules_fingerprint: str = "",
        terminating: bool = False,
        bts: bool = False,
        k_bound: Optional[int] = None,
    ) -> None:
        """The planner routed one job: *strategy* is the chosen strategy
        name (one of :data:`repro.analysis.planner.STRATEGY_NAMES`),
        *cached* where the verdict came from (``memory`` / ``store`` /
        ``computed``), *terminating* / *bts* / *k_bound* the headline
        verdict fields, *rules_fingerprint* a 16-hex prefix of the
        verdict-cache key."""

    def query_rewrite(
        self,
        *,
        source: str,
        fragment: str = "",
        complete: bool = False,
        disjuncts: int = 0,
        pruned: int = 0,
    ) -> None:
        """The query-plan cache served one lookup: *source* is where the
        plan came from (``memory`` / ``store`` / ``computed``),
        *fragment* the rewritable fragment (``linear`` / ``guarded``, or
        ``""`` when the ruleset is not rewritable), *complete* whether
        the piece-rewriting saturation reached its fixpoint within
        budget (an incomplete plan forces the Theorem-1 race fallback
        on a miss), *disjuncts* the kept UCQ size, *pruned* how many
        candidates dedup/subsumption dropped."""

    def snapshot_access(
        self,
        *,
        op: str,
        hit: bool,
        corrupt: bool = False,
        atoms: int = 0,
        seconds: float = 0.0,
        chain_depth: int = 0,
        chain_broken: bool = False,
        bytes_saved: int = 0,
        ancestor: bool = False,
    ) -> None:
        """The snapshot store served one access: *op* is ``load``,
        ``save``, ``resolve`` (an ancestor-resolution probe after an
        exact miss), or ``evict`` (an LRU eviction by a size-bounded
        store); on loads *hit* reports whether a usable state came back
        and *corrupt* whether an unreadable entry was discarded.
        ``chain_depth`` is the delta-chain length served or written,
        ``chain_broken`` marks a damaged chain dropped for a cold
        fallback, ``bytes_saved`` is the full-state size minus the
        delta record a save actually wrote, and ``ancestor`` marks a
        resolve that produced a usable ancestor entry."""

    # -- spans (repro.obs.spans) ---------------------------------------

    def span_open(
        self,
        *,
        name: str,
        trace_id: str,
        span_id: str,
        parent_span_id: Optional[str] = None,
        **attrs,
    ) -> None:
        """A request-lifecycle span opened (:func:`repro.obs.spans.span`).

        *name* is the phase (``service_request``, ``service_job``,
        ``job_attempt``, ``retry_backoff``, ``pool_rebuild``,
        ``queue_wait``, ``snapshot_load``, ``chase``, ...); *attrs* are
        span-specific annotations (``op``, ``attempt``, ``coalesced``,
        link fields, ...)."""

    def span_close(
        self,
        *,
        name: str,
        trace_id: str,
        span_id: str,
        parent_span_id: Optional[str] = None,
        status: str = "ok",
        seconds: float = 0.0,
        **attrs,
    ) -> None:
        """The matching close: *status* is ``ok``, ``error`` (the phase
        raised or the attempt failed — *attrs* then carries ``error``)
        or ``aborted`` (shutdown cancelled a parked retry backoff)."""

    # -- exact treewidth (repro.treewidth.exact) -----------------------

    def treewidth_search(
        self,
        *,
        k: int,
        verdict: Optional[bool],
        budget_consumed: int,
    ) -> None:
        """One "width ≤ k?" decision finished; *verdict* is None when the
        state budget ran out after *budget_consumed* states."""

    # -- robust aggregation (repro.chase.aggregation) ------------------

    def robust_step(
        self,
        *,
        step: int,
        renamed: int,
        atoms: int,
        stable_terms: int,
    ) -> None:
        """The robust sequence advanced to ``G_step`` (*atoms* atoms);
        *renamed* variables were rewritten by ``ρ_{σ'}`` and
        *stable_terms* terms of ``G_step`` are stable so far."""


class CompositeObserver(Observer):
    """Fan events out to several observers, in order."""

    __slots__ = ("observers",)

    def __init__(self, observers: Sequence[Observer]):
        self.observers = list(observers)

    def chase_step_started(self, **kw) -> None:
        for obs in self.observers:
            obs.chase_step_started(**kw)

    def trigger_selected(self, **kw) -> None:
        for obs in self.observers:
            obs.trigger_selected(**kw)

    def trigger_retired(self, **kw) -> None:
        for obs in self.observers:
            obs.trigger_retired(**kw)

    def chase_step_finished(self, **kw) -> None:
        for obs in self.observers:
            obs.chase_step_finished(**kw)

    def core_retraction(self, **kw) -> None:
        for obs in self.observers:
            obs.core_retraction(**kw)

    def core_maintenance(self, **kw) -> None:
        for obs in self.observers:
            obs.core_maintenance(**kw)

    def homomorphism_search(self, **kw) -> None:
        for obs in self.observers:
            obs.homomorphism_search(**kw)

    def hom_memo_lookup(self, **kw) -> None:
        for obs in self.observers:
            obs.hom_memo_lookup(**kw)

    def trigger_index_update(self, **kw) -> None:
        for obs in self.observers:
            obs.trigger_index_update(**kw)

    def compile(self, **kw) -> None:
        for obs in self.observers:
            obs.compile(**kw)

    def join_plan(self, **kw) -> None:
        for obs in self.observers:
            obs.join_plan(**kw)

    def service_request(self, **kw) -> None:
        for obs in self.observers:
            obs.service_request(**kw)

    def service_job(self, **kw) -> None:
        for obs in self.observers:
            obs.service_job(**kw)

    def service_retry(self, **kw) -> None:
        for obs in self.observers:
            obs.service_retry(**kw)

    def service_pool_rebuild(self, **kw) -> None:
        for obs in self.observers:
            obs.service_pool_rebuild(**kw)

    def planner_decision(self, **kw) -> None:
        for obs in self.observers:
            obs.planner_decision(**kw)

    def query_rewrite(self, **kw) -> None:
        for obs in self.observers:
            obs.query_rewrite(**kw)

    def snapshot_access(self, **kw) -> None:
        for obs in self.observers:
            obs.snapshot_access(**kw)

    def span_open(self, **kw) -> None:
        for obs in self.observers:
            obs.span_open(**kw)

    def span_close(self, **kw) -> None:
        for obs in self.observers:
            obs.span_close(**kw)

    def treewidth_search(self, **kw) -> None:
        for obs in self.observers:
            obs.treewidth_search(**kw)

    def robust_step(self, **kw) -> None:
        for obs in self.observers:
            obs.robust_step(**kw)


#: The process-global observer.  ``None`` means telemetry is off and the
#: instrumented paths skip all accounting after one identity check.
current: Optional[Observer] = None


def get_observer() -> Optional[Observer]:
    """The process-global observer, or None when telemetry is off."""
    return current


def set_observer(observer: Optional[Observer]) -> Optional[Observer]:
    """Install *observer* as the process-global observer.

    Returns the previous observer so callers can restore it; prefer the
    :func:`observing` context manager for scoped installation.
    """
    global current
    previous = current
    current = observer
    return previous


@contextmanager
def observing(observer: Optional[Observer]) -> Iterator[Optional[Observer]]:
    """Temporarily install *observer* as the process-global observer."""
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)

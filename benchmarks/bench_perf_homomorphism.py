"""P1a — engine performance: homomorphism search.

Scaling of the backtracking search (the library's single semantic
primitive) across the shapes that dominate the experiments: body-sized
patterns into growing instances, endomorphism checks on dense instances,
and the all-solutions iterator.
"""

import pytest

from repro.kbs.generators import grid_instance, path_instance, random_instance
from repro.kbs.staircase import universal_model_window
from repro.logic.homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    maps_into,
)
from repro.logic.parser import parse_atoms


@pytest.mark.parametrize("length", [20, 80])
def bench_body_into_path(benchmark, length):
    """Rule-body-sized pattern matched into a growing path instance."""
    body = parse_atoms("e(X, Y), e(Y, Z), e(Z, W)")
    target = path_instance(length)
    result = benchmark(lambda: find_homomorphism(body, target))
    assert result is not None


@pytest.mark.parametrize("n", [4, 6])
def bench_pattern_into_grid(benchmark, n):
    """2x2 grid pattern into an n×n grid (join-heavy search)."""
    pattern = parse_atoms("h(A, B), v(A, C), h(C, D), v(B, D)")
    target = grid_instance(n)
    result = benchmark(lambda: find_homomorphism(pattern, target))
    assert result is not None


def bench_endomorphism_check_staircase(benchmark):
    """Self-homomorphism of an I^h window — the inner loop of the core
    computation."""
    window = universal_model_window(4)
    assert benchmark(lambda: maps_into(window, window))


def bench_count_all_homomorphisms(benchmark):
    """All-solutions enumeration (CQ answer counting)."""
    body = parse_atoms("e(X, Y), e(Y, Z)")
    target = path_instance(40)
    count = benchmark(lambda: count_homomorphisms(body, target))
    assert count == 39  # a 40-edge path has 39 two-edge sub-walks


def bench_failure_detection_random(benchmark):
    """Fast failure: a pattern with an absent predicate must be rejected
    without search."""
    pattern = parse_atoms("missing(X, Y)")
    target = random_instance(150, 40, seed=3)
    result = benchmark(lambda: find_homomorphism(pattern, target))
    assert result is None

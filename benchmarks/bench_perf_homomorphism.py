"""P1a — engine performance: homomorphism search.

Scaling of the backtracking search (the library's single semantic
primitive) across the shapes that dominate the experiments: body-sized
patterns into growing instances, endomorphism checks on dense instances,
and the all-solutions iterator.

``bench_perf_homomorphism_table`` additionally archives a
machine-readable timing table (``results/perf_homomorphism.json``) for
the CI perf gate; ``REPRO_ENGINE=naive|indexed|compiled`` selects the
search path to time (default: compiled; ``REPRO_NAIVE=1`` is a legacy
alias for naive, the committed baseline's path) — see
docs/PERFORMANCE.md.
"""

import time

import pytest

from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import grid_instance, path_instance, random_instance
from repro.kbs.staircase import universal_model_window
from repro.logic.homcache import get_cache
from repro.logic.homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    maps_into,
)
from repro.logic.parser import parse_atoms
from repro.util import Table

from conftest import current_engine, engine_scope, quiesced_gc, save_table


@pytest.mark.parametrize("length", [20, 80])
def bench_body_into_path(benchmark, length):
    """Rule-body-sized pattern matched into a growing path instance."""
    body = parse_atoms("e(X, Y), e(Y, Z), e(Z, W)")
    target = path_instance(length)
    result = benchmark(lambda: find_homomorphism(body, target))
    assert result is not None


@pytest.mark.parametrize("n", [4, 6])
def bench_pattern_into_grid(benchmark, n):
    """2x2 grid pattern into an n×n grid (join-heavy search)."""
    pattern = parse_atoms("h(A, B), v(A, C), h(C, D), v(B, D)")
    target = grid_instance(n)
    result = benchmark(lambda: find_homomorphism(pattern, target))
    assert result is not None


def bench_endomorphism_check_staircase(benchmark):
    """Self-homomorphism of an I^h window — the inner loop of the core
    computation."""
    window = universal_model_window(4)
    assert benchmark(lambda: maps_into(window, window))


def bench_count_all_homomorphisms(benchmark):
    """All-solutions enumeration (CQ answer counting)."""
    body = parse_atoms("e(X, Y), e(Y, Z)")
    target = path_instance(40)
    count = benchmark(lambda: count_homomorphisms(body, target))
    assert count == 39  # a 40-edge path has 39 two-edge sub-walks


def bench_failure_detection_random(benchmark):
    """Fast failure: a pattern with an absent predicate must be rejected
    without search."""
    pattern = parse_atoms("missing(X, Y)")
    target = random_instance(150, 40, seed=3)
    result = benchmark(lambda: find_homomorphism(pattern, target))
    assert result is None


# ---------------------------------------------------------------------------
# the perf-gate timing table
# ---------------------------------------------------------------------------


def _search_rows():
    """(name, iterations, thunk) rows for the gate table.  Thunks are
    deterministic; iteration counts keep each row in the millisecond
    range so the 2x gate threshold clears the timer noise floor."""
    body_path = parse_atoms("e(X, Y), e(Y, Z), e(Z, W)")
    path80 = path_instance(80)
    grid_pattern = parse_atoms("h(A, B), v(A, C), h(C, D), v(B, D)")
    grid6 = grid_instance(6)
    window4 = universal_model_window(4)
    two_step = parse_atoms("e(X, Y), e(Y, Z)")
    path40 = path_instance(40)
    elevator_facts = elevator_kb().facts
    two_cycle = parse_atoms("e(X, Y), e(Y, X)")
    path60 = path_instance(60)
    return (
        ("body_into_path_80", 200, lambda: find_homomorphism(body_path, path80)),
        ("pattern_into_grid_6", 50, lambda: find_homomorphism(grid_pattern, grid6)),
        ("endomorphism_staircase_w4", 20, lambda: maps_into(window4, window4)),
        ("endomorphism_elevator_facts", 50, lambda: maps_into(elevator_facts, elevator_facts)),
        ("count_homs_path_40", 50, lambda: count_homomorphisms(two_step, path40)),
        ("failure_no_cycle_path_60", 100, lambda: find_homomorphism(two_cycle, path60)),
    )


def bench_perf_homomorphism_table():
    """Archive the homomorphism-search timing table for the CI perf gate
    (metric column: ``seconds`` — the wall time of the whole iteration
    loop, cold memo per iteration so the search itself is measured)."""
    engine = current_engine()
    table = Table(
        ["search", "iterations", "seconds", "per_call_us"],
        title=f"perf: homomorphism search wall time ({engine} engine)",
    )
    with engine_scope(engine):
        for name, iterations, thunk in _search_rows():
            thunk()  # warm allocation paths outside the timed loop
            with quiesced_gc():
                started = time.perf_counter()
                for _ in range(iterations):
                    get_cache().clear()
                    thunk()
                seconds = time.perf_counter() - started
            table.add_row(
                name,
                iterations,
                round(seconds, 4),
                round(seconds / iterations * 1e6, 1),
            )
    extra = (
        f"search path: {engine} (REPRO_ENGINE); "
        "memo cleared every iteration (structural search time, no memo hits)."
    )
    save_table("perf_homomorphism", table, extra)

"""E8 — Proposition 12: robust aggregation preserves treewidth bounds,
natural aggregation does not.

The crossover the whole paper is about, measured on one and the same
core chase run of K_h:

* the **natural** aggregation ``D*`` accumulates everything the core
  chase pruned — its prefix grows in size and regrows the grid structure
  (unbounded treewidth in the limit, Prop. 5);
* the **robust** aggregation ``D⊛`` stays within the chase's uniform
  bound 2 (Prop. 12(2)), and its stable part is the treewidth-1 column.
"""

from repro import treewidth
from repro.chase import RobustSequence
from repro.treewidth import treewidth_bounds
from repro.util import Table

from conftest import save_table


def bench_fig5_aggregation_treewidth(benchmark, staircase_core_run):
    derivation = staircase_core_run.derivation

    def both_aggregations():
        natural = derivation.natural_aggregation()
        robust = RobustSequence(derivation)
        return natural, robust

    natural, robust = benchmark.pedantic(both_aggregations, rounds=1, iterations=1)

    table = Table(
        ["prefix steps", "|D*| atoms", "tw(D*) bracket", "|G_S| atoms", "tw(G_S)"],
        title="Prop. 12 — natural vs robust aggregation of the K_h core chase",
    )
    last = len(derivation) - 1
    for upto in range(0, last + 1, 10):
        natural_prefix = derivation.natural_aggregation(upto=upto)
        low, high = treewidth_bounds(natural_prefix)
        robust_instance = robust.instances[upto]
        table.add_row(
            upto,
            len(natural_prefix),
            f"[{low},{high}]",
            len(robust_instance),
            treewidth(robust_instance),
        )

    # shape checks
    assert len(natural) > len(robust.aggregate()), "D* must outgrow D⊛"
    assert treewidth(robust.aggregate()) <= 2, "Prop. 12(2): bound preserved"
    stable = robust.stable_part(patience=last // 2)
    assert treewidth(stable) <= 1, "the stable column has treewidth 1"

    extra = (
        f"final: |D*| = {len(natural)} atoms vs |D⊛ prefix| = "
        f"{len(robust.aggregate())} atoms;\n"
        f"tw(D⊛ prefix) = {treewidth(robust.aggregate())} <= 2 (the chase's "
        "uniform bound),\nwhile D* regrows the staircase and heads to "
        "infinite treewidth."
    )
    save_table("fig5_aggregation_treewidth", table, extra)

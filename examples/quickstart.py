"""Quickstart: define a knowledge base, chase it, ask queries.

Run with::

    python examples/quickstart.py

Covers the core public API in ~60 lines: the rule/atom DSL, the four
chase variants, termination, universal models, and CQ entailment.
"""

from repro import (
    ChaseVariant,
    KnowledgeBase,
    boolean_cq,
    core_chase,
    decide_entailment,
    parse_atoms,
    parse_rules,
    restricted_chase,
    run_chase,
)


def main() -> None:
    # A tiny ontology: every employee has a manager, managers are
    # employees, and management is reported upward transitively.
    kb = KnowledgeBase(
        facts=parse_atoms("emp(ann), emp(bob), reports(bob, ann)"),
        rules=parse_rules(
            """
            [HasMgr]  emp(X) -> mgr(X, Y), emp(Y)
            [MgrRep]  mgr(X, Y) -> reports(X, Y)
            [RepTran] reports(X, Y), reports(Y, Z) -> reports(X, Z)
            """
        ),
        name="quickstart",
    )
    print(kb)
    print()

    # The restricted chase diverges here (every manager needs a manager),
    # so we run it with a step budget and inspect the growing instance.
    restricted = restricted_chase(kb, max_steps=12)
    print(f"restricted chase: {restricted}")
    print(f"  instance grew to {len(restricted.final_instance)} atoms")

    # The core chase folds redundant managers away; on this KB it does
    # not terminate either (no finite universal model), but stays leaner.
    core = core_chase(kb, max_steps=12)
    print(f"core chase:       {core}")
    print(f"  instance stayed at {len(core.final_instance)} atoms")

    # Every variant is driven by the same engine:
    for variant in ChaseVariant.ALL:
        result = run_chase(kb, variant=variant, max_steps=8)
        status = "terminated" if result.terminated else "running"
        print(f"  {variant:<15} {status} after {result.applications} applications")
    print()

    # CQ entailment through the Theorem-1-style race: the "yes" side is a
    # fair chase, the "no" side a finite countermodel search.
    queries = [
        boolean_cq("reports(bob, X), mgr(X, Y)", name="bob reports to a managed one"),
        boolean_cq("mgr(ann, ann)", name="ann manages herself"),
    ]
    for query in queries:
        verdict = decide_entailment(kb, query, chase_budget=30)
        print(f"K |= {query.name!r}? {verdict.entailed}  (via {verdict.method})")


if __name__ == "__main__":
    main()

"""Treewidth lower bounds.

Two sources of lower bounds are used in the experiments:

* the classical *maximum minimum degree* (MMD, equivalently degeneracy)
  bound — cheap, exact on the small chase structures only rarely, but a
  good pruning aid for the exact solver;
* the paper's own Fact 2: if an atomset contains an ``n × n`` grid
  (Definition 5) then its treewidth is at least ``n``.  Grid detection
  lives in :mod:`repro.treewidth.grids`; this module only provides the
  graph-theoretic part.
"""

from __future__ import annotations

from .graph import Graph

__all__ = ["mmd_lower_bound", "degeneracy"]


def mmd_lower_bound(graph: Graph) -> int:
    """Maximum-minimum-degree lower bound on treewidth.

    Repeatedly delete a vertex of minimum degree; the largest minimum
    degree encountered is a lower bound on the treewidth (deleting
    vertices never increases treewidth, and a graph of minimum degree d
    has treewidth ≥ d).
    """
    working = graph.copy()
    bound = 0
    while len(working):
        v = working.min_degree_vertex()
        bound = max(bound, working.degree(v))
        working.remove_vertex(v)
    return bound if len(graph) else -1


def degeneracy(graph: Graph) -> int:
    """The degeneracy of the graph (numerically identical to
    :func:`mmd_lower_bound`; exposed under its standard name)."""
    return max(mmd_lower_bound(graph), 0)

"""Decidable querying beyond terminating chases (Theorems 1–2).

Run with::

    python examples/decidability_demo.py

CQ entailment is undecidable for existential rules in general; the
paper's Theorem 2 shows it *is* decidable for KBs whose core chase is
recurringly treewidth-bounded.  This demo runs the executable version of
the Theorem-1 decision architecture — a race between

* the **"yes" side**: a fair chase testing the query against the growing
  (universal) aggregation prefix, and
* the **"no" side**: a finite-countermodel search (the library's stand-in
  for the Courcelle-based satisfiability check; see DESIGN.md),

on entailed and non-entailed queries over four KBs, including the
paper's two counterexamples.
"""

from repro import boolean_cq, decide_entailment
from repro.kbs import elevator_kb, staircase_kb
from repro.kbs.witnesses import bts_not_fes_kb, manager_kb
from repro.util import Table, banner


def main() -> None:
    cases = [
        (
            manager_kb(),
            [
                ("mgr(ann, X)", True),
                ("mgr(X, Y), mgr(Y, Z)", True),
                ("mgr(X, ann)", False),
            ],
        ),
        (
            bts_not_fes_kb(),
            [
                ("r(X1, X2), r(X2, X3), r(X3, X4)", True),
                ("r(X, X)", False),
                ("r(X, a)", False),
            ],
        ),
        (
            staircase_kb(),
            [
                ("f(X), h(X, X)", True),
                ("h(X, X), v(X, Y), c(Y)", True),
                ("f(X), c(X)", False),
            ],
        ),
        (
            elevator_kb(),
            [
                ("c(X), h(X, Y), f(Y)", True),
                ("c(X), f(X)", True),
                ("h(X, X)", False),
            ],
        ),
    ]

    print(banner("Theorem 1/2: the two-semi-procedure race, executably"))
    table = Table(
        ["KB", "query", "expected", "verdict", "method"],
        title="CQ entailment verdicts",
    )
    all_correct = True
    for kb, queries in cases:
        for text, expected in queries:
            verdict = decide_entailment(
                kb, boolean_cq(text), chase_budget=40, model_domain_budget=6
            )
            correct = verdict.entailed is expected
            all_correct &= correct
            table.add_row(
                kb.name,
                text,
                expected,
                verdict.entailed,
                verdict.method + ("" if correct else "  <-- MISMATCH"),
            )
    table.print()
    print("all verdicts correct:", all_correct)


if __name__ == "__main__":
    main()

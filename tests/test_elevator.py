"""Paper claims about the inflating elevator K_v (Section 7):
Propositions 6, 7, 8 and Corollary 1."""

import pytest

from repro.kbs import elevator as el
from repro.logic import is_core, maps_into
from repro.treewidth import (
    grid_from_coordinates,
    grid_lower_bound,
    treewidth,
    treewidth_bounds,
)


class TestGenerators:
    def test_facts_match_definition_9(self):
        kb = el.elevator_kb()
        assert len(kb.facts) == 4
        assert kb.rules.names() == [
            "Rv1",
            "Rv2",
            "Rv3",
            "Rv4",
            "Rv5",
            "Rv6",
            "Rv7",
        ]

    def test_term_bounds(self):
        assert el.term_at(2, 4).name == "Xv_2_4"
        with pytest.raises(ValueError):
            el.term_at(2, 5)  # j > 2i
        with pytest.raises(ValueError):
            el.term_at(3, 1)  # j < i - 1

    def test_window_contains_diagonal(self):
        window = el.universal_model_window(3)
        assert el.diagonal_model(3).issubset(window)

    def test_windows_nested(self):
        assert el.universal_model_window(2).issubset(el.universal_model_window(3))

    def test_core_family_base_case(self):
        assert el.core_family_member(0) == el.elevator_kb().facts

    def test_coordinates_roundtrip(self):
        window = el.universal_model_window(2)
        coords = el.coordinates(window)
        assert coords[el.term_at(2, 3)] == (2, 3)


class TestModelhood:
    def test_capped_window_is_finite_model(self):
        kb = el.elevator_kb()
        for k in (2, 3):
            assert kb.is_model(el.capped_model(k)), k

    def test_plain_window_is_not_a_model(self):
        kb = el.elevator_kb()
        assert not kb.is_model(el.universal_model_window(2))

    def test_diagonal_interior_satisfies_rules(self):
        """Proposition 7's modelhood: all triggers of the diagonal chain
        whose image stays below the tip are satisfied inside the chain."""
        kb = el.elevator_kb()
        chain = el.diagonal_model(6)
        interior = {t for t in chain.terms() if int(t.name.split("_")[1]) <= 4}
        from repro.chase.trigger import triggers

        for rule in kb.rules:
            for trigger in triggers(rule, chain):
                if set(trigger.mapping.image()) <= interior:
                    assert trigger.is_satisfied_in(chain), rule.name


class TestProposition6:
    """I^v is a result of the restricted chase on K_v."""

    def test_restricted_prefix_embeds_into_capped_window(
        self, elevator_restricted_run
    ):
        final = elevator_restricted_run.final_instance
        assert maps_into(final, el.capped_model(5))

    def test_restricted_run_validates(self, elevator_restricted_run):
        elevator_restricted_run.derivation.validate()

    def test_restricted_chase_does_not_terminate(self, elevator_restricted_run):
        assert not elevator_restricted_run.terminated


class TestProposition7:
    """I^v_* is a universal model of K_v of treewidth 1."""

    def test_diagonal_treewidth_is_1(self):
        assert treewidth(el.diagonal_model(5)) == 1

    def test_diagonal_maps_into_window(self):
        """Universality route of the paper: the identity maps I^v_* into
        I^v, which is itself universal."""
        assert maps_into(el.diagonal_model(4), el.universal_model_window(4))

    def test_diagonal_maps_into_capped_models(self):
        assert maps_into(el.diagonal_model(3), el.capped_model(3))

    def test_chase_prefix_maps_into_capped_diagonal(self, elevator_core_run):
        """No finite universal model exists, but every chase prefix is
        universal and must map into every finite model."""
        assert maps_into(elevator_core_run.final_instance, el.capped_model(5))


class TestProposition8:
    """The core family I^v_n: cores with growing treewidth."""

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_family_members_are_cores(self, n):
        assert is_core(el.core_family_member(n))

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_grid_witness_of_prop_8_2(self, n):
        """I^v_n contains a (⌊n/3⌋+1) × (⌊n/3⌋+1) grid."""
        member = el.core_family_member(n)
        coords = el.coordinates(member)
        side = n // 3 + 1
        origin = el.grid_block_origin(n)
        assert grid_from_coordinates(member, coords, side, origin=origin), n

    def test_treewidth_lower_bounds_grow(self):
        """tw(I^v_n) ≥ ⌊n/3⌋ + 1 via Fact 2 — and the exact/bracketed
        widths respect it."""
        for n in (1, 4):
            member = el.core_family_member(n)
            low, high = treewidth_bounds(member)
            assert high >= n // 3 + 1, n

    def test_member_treewidth_exact_small(self):
        assert treewidth(el.core_family_member(1)) == 2

    def test_generic_grid_search_on_small_member(self):
        assert grid_lower_bound(el.core_family_member(4), max_n=2) == 2


class TestCorollary1:
    """No core chase sequence for K_v is treewidth-bounded: per-step
    treewidth grows monotonically (within the measured prefix)."""

    def test_treewidth_reaches_2_and_never_returns(self, elevator_core_run):
        widths = [
            treewidth(step.instance) for step in elevator_core_run.derivation
        ]
        assert max(widths) >= 2
        first_hit = widths.index(2)
        assert all(w >= 2 for w in widths[first_hit:])

    def test_core_run_validates(self, elevator_core_run):
        elevator_core_run.derivation.validate()

    def test_core_chase_does_not_terminate(self, elevator_core_run):
        assert not elevator_core_run.terminated

    def test_core_steps_grow_monotonically_in_bound(self, elevator_core_run):
        """The running maximum of the per-step treewidth is
        non-decreasing and the final value exceeds the initial one."""
        widths = [
            treewidth(step.instance) for step in elevator_core_run.derivation
        ]
        assert widths[-1] > widths[0]

"""Shared fixtures.

Expensive chase runs on the paper's KBs are session-scoped so the many
per-claim tests can share one derivation record.
"""

from __future__ import annotations

import pytest

from repro import core_chase, restricted_chase
from repro.kbs import elevator as elevator_mod
from repro.kbs import staircase as staircase_mod
from repro.kbs.witnesses import transitive_closure_kb


@pytest.fixture(scope="session")
def staircase_kb_fixture():
    return staircase_mod.staircase_kb()


@pytest.fixture(scope="session")
def elevator_kb_fixture():
    return elevator_mod.elevator_kb()


@pytest.fixture(scope="session")
def staircase_core_run(staircase_kb_fixture):
    """A 40-application core chase of K_h (shared across claims)."""
    return core_chase(staircase_kb_fixture, max_steps=40)


@pytest.fixture(scope="session")
def staircase_restricted_run(staircase_kb_fixture):
    """A 40-application restricted chase of K_h."""
    return restricted_chase(staircase_kb_fixture, max_steps=40)


@pytest.fixture(scope="session")
def elevator_core_run(elevator_kb_fixture):
    """A 30-application core chase of K_v."""
    return core_chase(elevator_kb_fixture, max_steps=30)


@pytest.fixture(scope="session")
def elevator_restricted_run(elevator_kb_fixture):
    """A 30-application restricted chase of K_v."""
    return restricted_chase(elevator_kb_fixture, max_steps=30)


@pytest.fixture(scope="session")
def terminating_run():
    """A terminating core chase (transitive closure)."""
    return core_chase(transitive_closure_kb(4), max_steps=100)

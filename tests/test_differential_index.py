"""Differential tests: compiled vs indexed vs naive engines.

The evaluation layers must be pure optimisations, on two tiers:

* **Indexed vs naive** (PR 2/3): for every KB and variant, a run with
  ``use_index=True`` and one with ``use_index=False`` must select the
  same rule sequence, perform the same number of applications, and end
  in *isomorphic* instances.  (Only isomorphic, not equal: the two
  paths may pick different — equally valid — fold witnesses inside core
  retractions, so null names can differ.)
* **Compiled vs indexed** (ISSUE 7): the compiled kernel replays the
  indexed search's pools, selection order and tie-breaks over interned
  int tuples, so it must produce **identical** witnesses — the two runs
  are compared for *equality* (same rule sequence, same applications,
  byte-identical final instances including null names), not just
  isomorphism.

Random KBs come from :func:`repro.kbs.generators.random_kb`; hypothesis
fuzzes the seed and shape (``--hypothesis-seed`` reproduces a CI
failure locally).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.engine import ChaseVariant, run_chase
from repro.chase.trigger import triggers
from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import random_kb
from repro.kbs.staircase import staircase_kb
from repro.logic.homcache import get_cache
from repro.logic.isomorphism import isomorphic

MAX_STEPS = 10

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def kb_strategy(draw):
    return random_kb(
        rule_count=draw(st.integers(min_value=1, max_value=4)),
        fact_count=draw(st.integers(min_value=2, max_value=8)),
        term_pool=draw(st.integers(min_value=2, max_value=5)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


def _rule_sequence(result):
    return [
        step.trigger.rule.name
        for step in result.derivation.steps
        if step.trigger is not None
    ]


def assert_equivalent_runs(kb, variant, max_steps=MAX_STEPS):
    get_cache().clear()
    compiled = run_chase(kb, variant=variant, max_steps=max_steps)
    get_cache().clear()
    indexed = run_chase(
        kb, variant=variant, max_steps=max_steps, use_compiled=False
    )
    get_cache().clear()
    naive = run_chase(kb, variant=variant, max_steps=max_steps, use_index=False)

    # Tier 1 — compiled vs indexed: identical witnesses, so equality.
    assert compiled.terminated == indexed.terminated
    assert compiled.applications == indexed.applications
    assert _rule_sequence(compiled) == _rule_sequence(indexed)
    assert compiled.final_instance == indexed.final_instance

    # Tier 2 — indexed vs naive: same derivation shape, isomorphic end.
    assert indexed.terminated == naive.terminated
    assert indexed.applications == naive.applications
    assert _rule_sequence(indexed) == _rule_sequence(naive)
    for fast_step, slow_step in zip(
        indexed.derivation.steps, naive.derivation.steps
    ):
        assert len(fast_step.instance) == len(slow_step.instance)
    assert isomorphic(indexed.final_instance, naive.final_instance)
    return indexed


@given(kb=kb_strategy(), variant=st.sampled_from(ChaseVariant.ALL))
@SETTINGS
def test_indexed_run_matches_naive_on_random_kbs(kb, variant):
    assert_equivalent_runs(kb, variant)


@given(
    kb=kb_strategy(),
    variant=st.sampled_from(ChaseVariant.ALL),
    use_compiled=st.booleans(),
)
@SETTINGS
def test_trigger_index_pool_matches_rescan_on_random_kbs(
    kb, variant, use_compiled
):
    """After an indexed run, the maintained live pool must equal a
    from-scratch ``triggers()`` rescan of the final instance — the
    ISSUE's "identical trigger sets" clause.  Fuzzed over both index
    implementations (object ``TriggerIndex`` and the compiled
    semi-naive one)."""
    from repro.chase.engine import ChaseEngine

    get_cache().clear()
    engine = ChaseEngine(kb, variant=variant, use_compiled=use_compiled)
    result = engine.run(max_steps=MAX_STEPS)
    index = engine._index
    rescanned = {
        (rule.name, trigger.full_image())
        for rule in kb.rules
        for trigger in triggers(rule, result.final_instance)
    }
    assert set(index._live.keys()) == rescanned
    if index.track_satisfaction:
        satisfied = {
            key
            for key, trigger in index._live.items()
            if trigger.is_satisfied_in(result.final_instance)
        }
        assert index._satisfied == satisfied


class TestNamedWorkloads:
    """The paper's own examples, which exercise deep core retractions."""

    def test_staircase_core(self):
        assert_equivalent_runs(staircase_kb(), ChaseVariant.CORE, max_steps=14)

    def test_elevator_core(self):
        assert_equivalent_runs(elevator_kb(), ChaseVariant.CORE, max_steps=10)

    def test_elevator_restricted(self):
        assert_equivalent_runs(
            elevator_kb(), ChaseVariant.RESTRICTED, max_steps=12
        )

    def test_staircase_frugal(self):
        assert_equivalent_runs(staircase_kb(), ChaseVariant.FRUGAL, max_steps=12)

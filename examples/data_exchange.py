"""Data exchange with the chase: the classical application of TGDs.

Run with::

    python examples/data_exchange.py

The chase was born in data exchange (Fagin, Kolaitis, Miller & Popa —
reference [10] of the paper): source data is translated to a target
schema by chasing the source instance with schema-mapping rules, and the
*core* of the result is the preferred (smallest) target instance.  This
example builds a small HR-to-directory mapping and contrasts the chase
variants:

* the semi-oblivious chase materializes one null per (rule, frontier)
  — fast, but leaves redundant nulls;
* the core chase produces the minimal target instance;
* certain answers over the target are computed against the chase result.
"""

from repro import (
    ChaseVariant,
    ConjunctiveQuery,
    KnowledgeBase,
    Variable,
    core_chase,
    parse_atoms,
    parse_rules,
    run_chase,
    semi_oblivious_chase,
)
from repro.analysis import certify_fes, is_weakly_acyclic
from repro.chase import parse_egds, standard_chase
from repro.query import certain_answers_over
from repro.util import Table, banner


def main() -> None:
    # Source: employees with departments; some employees also have a
    # recorded desk phone.
    source = parse_atoms(
        """
        works(ann, sales), works(bob, sales), works(cao, lab),
        phone(ann, p42)
        """
    )
    # Mapping to the target schema: every employee gets a directory entry
    # with *some* contact handle; sales staff are listed in the sales
    # roster; phones, when known, are the contact handle.
    mapping = parse_rules(
        """
        [Entry]   works(E, D)  -> dir(E, H), contact(E, H)
        [Roster]  works(E, sales) -> roster(E)
        [Known]   phone(E, P)  -> dir(E, P), contact(E, P)
        """
    )
    kb = KnowledgeBase(source, mapping, name="hr-to-directory")

    print(banner("Schema mapping (weakly acyclic => terminating)"))
    print(kb)
    print("weakly acyclic:", is_weakly_acyclic(kb.rules))
    print("core chase terminates after", certify_fes(kb), "applications")

    print(banner("Variant comparison on the target instance"))
    table = Table(["variant", "applications", "target atoms", "nulls"])
    for variant in (ChaseVariant.SEMI_OBLIVIOUS, ChaseVariant.RESTRICTED, ChaseVariant.CORE):
        result = run_chase(kb, variant=variant, max_steps=200)
        assert result.terminated
        table.add_row(
            variant,
            result.applications,
            len(result.final_instance),
            len(result.final_instance.variables()),
        )
    table.print()
    print(
        "the core chase folds the invented contact handle of 'ann' onto\n"
        "her known phone p42 — the smallest universal target instance."
    )

    print(banner("Certain answers over the target"))
    target = core_chase(kb, max_steps=200).final_instance
    E = Variable("E")
    query = ConjunctiveQuery(
        "roster(E), dir(E, H)", answer_variables=[E], name="rostered-with-entry"
    )
    answers = sorted(str(answer[0]) for answer in query.answers(target))
    print("rostered employees with a directory entry:", ", ".join(answers))

    # A certain answer must not depend on nulls: 'contact of cao' exists
    # but is a labeled null, so cao has no *certain* contact handle.
    H = Variable("H")
    contact_query = ConjunctiveQuery(
        "contact(cao, H)", answer_variables=[H], name="cao-contact"
    )
    certain = list(certain_answers_over(contact_query, target))
    print("certain contact handles for cao:", certain or "none (null-valued only)")

    print(banner("Adding a key constraint (EGD): the standard chase"))
    # Directory handles are a key: at most one per employee.  The TGD
    # invents a handle, the phone rule supplies the real one, and the
    # EGD merges them — the classical TGD+EGD chase of data exchange.
    egds = parse_egds("[Key] dir(E, H1), dir(E, H2) -> H1 = H2")
    exchanged = standard_chase(source, mapping, egds)
    print(exchanged)
    print("nulls left for ann:", [
        str(at) for at in exchanged.instance.sorted_atoms()
        if "ann" in str(at)
    ])

    # A violating source fails the chase: no solution exists.
    conflicting = source.union(parse_atoms("phone(ann, p43), dir(ann, p43), dir(ann, p42)"))
    failed = standard_chase(conflicting, mapping, egds)
    print("conflicting source fails the chase:", failed.failed)


if __name__ == "__main__":
    main()

"""Rule-set analysis: syntactic termination/boundedness criteria (weak
acyclicity, guardedness) and the structural-measure machinery of
Section 5 with budgeted empirical classifiers."""

from .classes import (
    SIZE,
    TERM_COUNT,
    TREEWIDTH,
    ChaseProfile,
    StructuralMeasure,
    certify_fes,
    is_recurringly_bounded_prefix,
    is_uniformly_bounded,
    profile_chase,
    recurring_bound_estimate,
    uniform_bound,
)
from .guardedness import (
    guard_atom,
    is_frontier_guarded,
    is_frontier_guarded_rule,
    is_guarded,
    is_guarded_rule,
)
from .sticky import is_sticky, sticky_marking
from .summary import RulesetReport, analyze_ruleset
from .rule_dependencies import (
    atoms_may_unify,
    is_rule_acyclic,
    rule_dependency_edges,
    rule_depends_on,
    rule_strata,
)
from .positions import Position, positions_of_ruleset, variable_positions
from .weak_acyclicity import DependencyGraph, dependency_graph, is_weakly_acyclic

__all__ = [
    "RulesetReport",
    "SIZE",
    "TERM_COUNT",
    "TREEWIDTH",
    "ChaseProfile",
    "DependencyGraph",
    "Position",
    "StructuralMeasure",
    "analyze_ruleset",
    "atoms_may_unify",
    "certify_fes",
    "dependency_graph",
    "guard_atom",
    "is_frontier_guarded",
    "is_frontier_guarded_rule",
    "is_guarded",
    "is_guarded_rule",
    "is_recurringly_bounded_prefix",
    "is_uniformly_bounded",
    "is_rule_acyclic",
    "is_sticky",
    "is_weakly_acyclic",
    "positions_of_ruleset",
    "rule_dependency_edges",
    "rule_depends_on",
    "rule_strata",
    "sticky_marking",
    "profile_chase",
    "recurring_bound_estimate",
    "uniform_bound",
    "variable_positions",
]

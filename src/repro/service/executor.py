"""A process-pool job executor with fork/spawn-safe metrics.

Chase jobs are CPU-bound pure Python, so real concurrency needs
processes; :class:`JobExecutor` shards :class:`~repro.service.jobs.
JobRequest` work across a :class:`~concurrent.futures.
ProcessPoolExecutor` (``workers=0`` degrades to a single in-process
worker thread — handy for tests and the single-shot CLI paths).

Metrics protocol (the fork/spawn hazard)
----------------------------------------
The process-global :class:`~repro.obs.MetricsRegistry` must never be
*shared* with workers: under ``spawn`` the child would start with an
unrelated fresh module, under ``fork`` it would inherit a dead copy
whose updates the parent never sees — silently dropped telemetry
either way.  The protocol here makes worker metrics explicit instead:

1. the pool initializer installs a **fresh, enabled** registry in each
   worker (and clears any inherited process-global observer, so a
   forked worker cannot scribble into the parent's trace file);
2. each job resets that registry, runs with a local
   :class:`~repro.obs.MetricsObserver`, and ships
   ``registry.snapshot()`` back alongside the result;
3. the parent folds the snapshot into its own registry
   (:meth:`~repro.obs.MetricsRegistry.merge_snapshot`) on completion.

The pool uses the ``spawn`` start method explicitly so worker state is
fresh by construction on every platform (and fork-safety hazards with
the server's event-loop threads never arise).

The parent also keeps the ``service.queue_depth`` gauge current
(submitted-but-unfinished jobs) and reports every completion through
the :meth:`~repro.obs.Observer.service_job` telemetry event, with
wall-clock latency measured from submission (queueing included).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional

from ..obs import observer as _observer_state
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..obs.tracer import MetricsObserver
from .jobs import JobRequest, JobResult, execute_job
from .snapshots import SnapshotStore

__all__ = ["JobExecutor"]


def _worker_init() -> None:
    """Pool initializer: give the worker a clean telemetry slate."""
    set_registry(MetricsRegistry(enabled=True))
    _observer_state.set_observer(None)


def _run_job(request_obj: dict, snapshot_dir: Optional[str]) -> tuple[dict, dict]:
    """Worker-side body: execute one job, return (result, metrics).

    Runs in a pool worker; only JSON-able dicts cross the boundary."""
    registry = get_registry()
    registry.reset()
    request = JobRequest.from_obj(request_obj)
    store = SnapshotStore(snapshot_dir) if snapshot_dir else None
    result = execute_job(request, store, observer=MetricsObserver(registry))
    return result.to_obj(), registry.snapshot()


def _run_job_local(
    request_obj: dict, snapshot_dir: Optional[str]
) -> tuple[dict, dict]:
    """In-process (``workers=0``) body: same contract, private registry."""
    registry = MetricsRegistry(enabled=True)
    request = JobRequest.from_obj(request_obj)
    store = SnapshotStore(snapshot_dir) if snapshot_dir else None
    result = execute_job(request, store, observer=MetricsObserver(registry))
    return result.to_obj(), registry.snapshot()


class JobExecutor:
    """Shard jobs across worker processes; merge their telemetry back.

    Parameters
    ----------
    workers:
        Process-pool size; ``0`` runs jobs on one background thread in
        this process (no pickling, no interpreter startup — the mode
        unit tests and the single-shot CLI use).
    snapshot_dir:
        Root of the shared :class:`~repro.service.snapshots.
        SnapshotStore`; None disables warm starts.
    registry:
        Where worker metric snapshots are merged; defaults to the
        process-global registry.
    """

    def __init__(
        self,
        workers: int = 2,
        snapshot_dir: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.snapshot_dir = str(snapshot_dir) if snapshot_dir else None
        self.registry = registry if registry is not None else get_registry()
        if workers > 0:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
            )
            self._body = _run_job
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-job"
            )
            self._body = _run_job_local
        self._lock = threading.Lock()
        self._pending = 0

    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> "Future[JobResult]":
        """Schedule *request*; the returned future resolves to a
        :class:`JobResult` (never raises — job errors come back as
        ``ok=False`` results)."""
        outer: Future = Future()
        submitted = time.perf_counter()
        with self._lock:
            self._pending += 1
            depth = self._pending
        self.registry.gauge("service.queue_depth").set(depth)
        try:
            inner = self._pool.submit(
                self._body, request.to_obj(), self.snapshot_dir
            )
        except BaseException:
            with self._lock:
                self._pending -= 1
            self.registry.gauge("service.queue_depth").set(self._pending)
            raise
        inner.add_done_callback(
            lambda done: self._finish(done, request, submitted, outer)
        )
        return outer

    def _finish(
        self,
        done: Future,
        request: JobRequest,
        submitted: float,
        outer: "Future[JobResult]",
    ) -> None:
        with self._lock:
            self._pending -= 1
            depth = self._pending
        self.registry.gauge("service.queue_depth").set(depth)
        exc = done.exception()
        if exc is not None:
            # A pool-level failure (broken worker, unpicklable payload)
            # still resolves to a well-formed error result.
            result = JobResult(
                op=request.op,
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        else:
            result_obj, metrics_snapshot = done.result()
            self.registry.merge_snapshot(metrics_snapshot)
            result = JobResult.from_obj(result_obj)
        result.seconds = time.perf_counter() - submitted
        observer = _observer_state.current
        if observer is not None:
            observer.service_job(
                op=request.op,
                ok=result.ok,
                warm=result.warm,
                incomplete=result.incomplete,
                deadline_expired=result.deadline_expired,
                applications=result.applications,
                seconds=result.seconds,
            )
        outer.set_result(result)

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet finished."""
        with self._lock:
            return self._pending

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; with ``wait`` the call blocks until running
        jobs finish."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

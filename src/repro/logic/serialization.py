"""Text serialization of instances, rule sets, and knowledge bases.

The on-disk format reuses the parser DSL with a light section structure,
so serialized files are also human-editable fixtures::

    # repro knowledge base
    [facts]
    p(a), q(a, X0)

    [rules]
    [R1] p(X) -> e(X, Y)
    [R2] e(X, Y) -> q(X, Y)

Round-tripping is exact for rule sets and exact-up-to-atom-order for
instances (atomsets are sets).

Besides the text format, the module provides *tagged JSON-object*
round-trips for the first-order substrate (terms, atoms, instances,
substitutions).  The text DSL cannot represent engine-invented nulls
faithfully (their names are an implementation detail of the fresh
source, not parser-legal identifiers), so checkpoint machinery — the
chase-snapshot store of :mod:`repro.service.snapshots` — serializes
through these helpers instead: a term is a ``["v"|"c", name]`` pair, an
atom a ``[predicate, [term, ...]]`` pair, and the variable/constant
distinction survives exactly.
"""

from __future__ import annotations

import pathlib
from typing import Union

from .atoms import Atom, Predicate
from .atomset import AtomSet
from .kb import KnowledgeBase
from .parser import ParseError, parse_atoms, parse_rules
from .rules import RuleSet
from .substitution import Substitution
from .terms import Constant, Term, Variable

__all__ = [
    "dump_instance",
    "load_instance",
    "dump_ruleset",
    "load_ruleset",
    "dump_kb",
    "load_kb",
    "save_kb",
    "load_kb_file",
    "term_to_obj",
    "term_from_obj",
    "atom_to_obj",
    "atom_from_obj",
    "instance_to_obj",
    "instance_from_obj",
    "substitution_to_obj",
    "substitution_from_obj",
]

PathLike = Union[str, pathlib.Path]


def dump_instance(atoms: AtomSet) -> str:
    """Serialize an instance: one atom per line (deterministic order)."""
    return "\n".join(str(at) for at in atoms.sorted_atoms()) + "\n"


def load_instance(text: str) -> AtomSet:
    """Parse an instance serialized by :func:`dump_instance` (also
    accepts comma-separated and commented input)."""
    lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise ParseError("no atoms in instance text")
    return parse_atoms(", ".join(lines))


def dump_ruleset(rules: RuleSet) -> str:
    """Serialize a rule set, one labelled rule per line."""
    return "\n".join(f"[{rule.name}] {rule}" for rule in rules) + "\n"


def load_ruleset(text: str) -> RuleSet:
    """Parse a rule set serialized by :func:`dump_ruleset`."""
    return parse_rules(text)


def dump_kb(kb: KnowledgeBase) -> str:
    """Serialize a knowledge base in the sectioned format."""
    parts = ["# repro knowledge base"]
    if kb.name:
        parts.append(f"# name: {kb.name}")
    parts.append("[facts]")
    parts.append(dump_instance(kb.facts).rstrip())
    parts.append("")
    parts.append("[rules]")
    parts.append(dump_ruleset(kb.rules).rstrip())
    return "\n".join(parts) + "\n"


def load_kb(text: str) -> KnowledgeBase:
    """Parse a knowledge base serialized by :func:`dump_kb`."""
    name = None
    section = None
    fact_lines: list[str] = []
    rule_lines: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line.startswith("# name:"):
            name = line.split(":", 1)[1].strip()
            continue
        if not line or line.startswith("#"):
            continue
        if line == "[facts]":
            section = "facts"
            continue
        if line == "[rules]":
            section = "rules"
            continue
        if section == "facts":
            fact_lines.append(line)
        elif section == "rules":
            rule_lines.append(line)
        else:
            raise ParseError(f"content before any section: {line!r}")
    if not fact_lines:
        raise ParseError("missing or empty [facts] section")
    if not rule_lines:
        raise ParseError("missing or empty [rules] section")
    facts = load_instance("\n".join(fact_lines))
    rules = parse_rules("\n".join(rule_lines))
    return KnowledgeBase(facts, rules, name=name)


# ---------------------------------------------------------------------------
# tagged JSON objects (exact round-trips, engine-invented nulls included)
# ---------------------------------------------------------------------------


def term_to_obj(term: Term) -> list:
    """Serialize a term as a tagged pair ``["v", name]`` / ``["c", name]``.

    The tag preserves the variable/constant distinction exactly — unlike
    the text DSL, which classifies by spelling and cannot express the
    engine's fresh-null names."""
    if isinstance(term, Variable):
        return ["v", term.name]
    if isinstance(term, Constant):
        return ["c", term.name]
    raise TypeError(f"cannot serialize term {term!r}")


def term_from_obj(obj) -> Term:
    """Parse a term serialized by :func:`term_to_obj`."""
    tag, name = obj
    if tag == "v":
        return Variable(name)
    if tag == "c":
        return Constant(name)
    raise ParseError(f"unknown term tag {tag!r}")


def atom_to_obj(at: Atom) -> list:
    """Serialize an atom as ``[predicate_name, [term, ...]]``."""
    return [at.predicate.name, [term_to_obj(t) for t in at.args]]


def atom_from_obj(obj) -> Atom:
    """Parse an atom serialized by :func:`atom_to_obj`."""
    name, args = obj
    terms = [term_from_obj(t) for t in args]
    return Atom(Predicate(name, len(terms)), terms)


def instance_to_obj(atoms: AtomSet) -> list:
    """Serialize an instance as a deterministic list of atom objects."""
    return [atom_to_obj(at) for at in atoms.sorted_atoms()]


def instance_from_obj(obj) -> AtomSet:
    """Parse an instance serialized by :func:`instance_to_obj`."""
    return AtomSet(atom_from_obj(item) for item in obj)


def substitution_to_obj(substitution: Substitution) -> list:
    """Serialize a substitution as sorted ``[var_name, term]`` pairs."""
    return [
        [var.name, term_to_obj(term)]
        for var, term in sorted(
            substitution.items(), key=lambda pair: pair[0].name
        )
    ]


def substitution_from_obj(obj) -> Substitution:
    """Parse a substitution serialized by :func:`substitution_to_obj`."""
    return Substitution(
        {Variable(name): term_from_obj(term) for name, term in obj}
    )


def save_kb(kb: KnowledgeBase, path: PathLike) -> None:
    """Write a KB to *path*."""
    pathlib.Path(path).write_text(dump_kb(kb))


def load_kb_file(path: PathLike) -> KnowledgeBase:
    """Read a KB from *path*."""
    return load_kb(pathlib.Path(path).read_text())

"""Perf-regression gate: diff benchmark result tables against baselines.

Compares the machine-readable tables archived by the perf benches
(``benchmarks/results/<name>.json``) against committed reference tables
(``benchmarks/baselines/<name>.json``) and **fails** — exit code 1 —
when any row's metric regressed beyond the threshold (default: 2x
slower).  Rows are matched on their non-float fields (workload,
variant, step budget, iteration count, ...), so a behavioural drift
that changes an application count also fails the gate, loudly — and
when the only difference from the baseline row is in the count fields
(``applications``, ``retractions``, ``atoms_out``), the failure is
reported as **semantic drift** rather than a missing row: the engine
changed *what it computes*, not how fast.

Usage (local or CI — stdlib only, no package install needed)::

    python benchmarks/compare_results.py                  # all baselines
    python benchmarks/compare_results.py perf_chase       # one table
    python benchmarks/compare_results.py --threshold 1.5  # stricter

Beyond the regression check, the gate has a **floor mode**
(``--min-speedup X``): instead of failing rows that got slower, it
fails rows that are not at least ``X`` times *faster* than the
baseline; and a **ceiling mode** (``--max-ratio Y``) that fails rows
whose ``current/baseline`` ratio exceeds ``Y`` — a cost ceiling for
same-machine comparisons where the new path must never cost more than
a fraction of the reference (``--max-ratio 0.8``: at most 80% of the
baseline's time).  The two compose: with both set, a row passes only
if it clears the floor *and* stays under the ceiling; either replaces
the default ``--threshold`` regression check.  The compiled CI gate
uses the floor to hold the compiled kernel to a same-machine speedup
over the indexed engine::

    python benchmarks/compare_results.py perf_chase_compiled \
        --baselines benchmarks/results --baseline-name perf_chase_indexed \
        --min-speedup 1.5 --ignore-fields engine \
        --only-rows 'staircase core,elevator core'

``--baseline-name`` compares one results table against a differently
named reference table (above: two tables freshly measured in the same
job, one per engine); ``--ignore-fields`` drops the listed row fields
from row identity — here ``engine``, which otherwise (by design) keeps
cross-engine rows from ever matching; ``--only-rows`` restricts the
gate to rows whose label contains one of the given substrings (the
headline deep-search workloads — the tiny rows sit at the timer noise
floor and the copy-dominated restricted rows at engine parity, neither
of which a speedup floor should gate).  Every integer count field still
participates in identity, so the floor mode *also* enforces semantic
agreement: a compiled row whose application count drifted from the
indexed row fails as semantic drift, not as a timing miss.

Regenerating a table after an intentional change::

    PYTHONPATH=src REPRO_NAIVE=1 python -m pytest \
        "benchmarks/bench_perf_chase.py::bench_perf_chase_table" -q
    cp benchmarks/results/perf_chase.json benchmarks/baselines/

(The committed ``perf_chase``/``perf_cores``/``perf_homomorphism``
baselines are naive-path timings — ``REPRO_NAIVE=1`` — so the default
gate also documents the full engine's speedup: the printed ratios are
the fraction of the naive time each row now takes.  The committed
``*_indexed``/``*_compiled`` baselines are per-engine tables produced
with ``REPRO_ENGINE=indexed``/``compiled``.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
DEFAULT_BASELINES = HERE / "baselines"
DEFAULT_RESULTS = HERE / "results"

#: Row-identity fields that record the run's *behaviour* (what the
#: engine computed) rather than which workload was measured.  A current
#: row that matches a baseline row everywhere except here is the same
#: measurement of a semantically different run.
COUNT_FIELDS = frozenset({"applications", "retractions", "atoms_out"})


def load_table(path: pathlib.Path) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    for field in ("headers", "rows"):
        if field not in payload:
            raise SystemExit(f"{path}: not a results table (missing {field!r})")
    return payload


def row_key(row: dict, metric: str, ignore: frozenset = frozenset()) -> tuple:
    """The identity of a row: every non-float field except the metric
    and the explicitly *ignore*-d fields.  Floats are measurements;
    everything else (names, variants, step budgets, iteration counts,
    the engine path) pins down *what* was measured."""
    return tuple(
        (field, value)
        for field, value in row.items()
        if field != metric and field not in ignore and not isinstance(value, float)
    )


def _without_counts(key: tuple) -> tuple:
    return tuple((field, value) for field, value in key if field not in COUNT_FIELDS)


def find_count_drift(key: tuple, current_keys) -> dict | None:
    """If some current row matches *key* on every identity field except
    the count fields, return ``{field: (baseline, current)}`` for the
    fields that moved — the signature of semantic drift."""
    loose = _without_counts(key)
    base_fields = dict(key)
    for candidate in current_keys:
        if candidate == key or _without_counts(candidate) != loose:
            continue
        cand_fields = dict(candidate)
        if set(cand_fields) != set(base_fields):
            continue
        return {
            field: (base_fields[field], cand_fields[field])
            for field in sorted(COUNT_FIELDS & set(base_fields))
            if base_fields[field] != cand_fields[field]
        }
    return None


def compare_table(
    name: str,
    baseline: dict,
    current: dict,
    metric: str,
    threshold: float,
    min_speedup: float | None = None,
    max_ratio: float | None = None,
    ignore: frozenset = frozenset(),
):
    """Yield (key, base_value, cur_value, ratio, ok, drift) per baseline
    row; a row missing from the current table yields cur_value=None,
    ok=False, and — when a current row differs only in count fields —
    drift maps each moved count field to its (baseline, current) pair.

    ``ratio`` is always current/baseline.  In the default regression
    mode a row is ok iff ``ratio <= threshold``.  With *min_speedup*
    and/or *max_ratio* set the threshold check is replaced: the row is
    ok iff ``baseline/current >= min_speedup`` (when set — the current
    run at least that many times faster) and ``ratio <= max_ratio``
    (when set — the current run costs at most that fraction of the
    baseline)."""
    current_rows = {row_key(row, metric, ignore): row for row in current["rows"]}
    for base_row in baseline["rows"]:
        key = row_key(base_row, metric, ignore)
        base_value = base_row.get(metric)
        if not isinstance(base_value, (int, float)):
            raise SystemExit(f"{name}: baseline row {key} has no numeric {metric!r}")
        cur_row = current_rows.get(key)
        if cur_row is None:
            drift = find_count_drift(key, current_rows)
            yield key, base_value, None, None, False, drift
            continue
        cur_value = cur_row.get(metric)
        if not isinstance(cur_value, (int, float)):
            yield key, base_value, None, None, False, None
            continue
        ratio = cur_value / max(base_value, 1e-9)
        if min_speedup is not None or max_ratio is not None:
            ok = True
            if min_speedup is not None:
                ok = ok and base_value / max(cur_value, 1e-9) >= min_speedup
            if max_ratio is not None:
                ok = ok and ratio <= max_ratio
        else:
            ok = ratio <= threshold
        yield key, base_value, cur_value, ratio, ok, None


def describe(key: tuple) -> str:
    return " ".join(str(value) for _, value in key)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark rows regressed beyond a threshold"
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="table names (default: every *.json in the baselines dir)",
    )
    parser.add_argument("--baselines", type=pathlib.Path, default=DEFAULT_BASELINES)
    parser.add_argument("--results", type=pathlib.Path, default=DEFAULT_RESULTS)
    parser.add_argument(
        "--metric", default="seconds", help="row field to compare (default: seconds)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current/baseline exceeds this (default: 2.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="floor mode: fail when baseline/current is below X — i.e. "
        "demand the current run be at least X times faster per row "
        "(replaces the --threshold regression check)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=None,
        metavar="Y",
        help="ceiling mode: fail when current/baseline exceeds Y — a "
        "cost ceiling for same-machine comparisons (e.g. 0.8 demands "
        "the current run take at most 80%% of the baseline's time; "
        "composes with --min-speedup, replaces --threshold)",
    )
    parser.add_argument(
        "--baseline-name",
        default=None,
        metavar="NAME",
        help="compare against <baselines>/NAME.json instead of the "
        "table's own name (requires exactly one table name; pair with "
        "--baselines pointing at a results dir for same-machine "
        "cross-engine comparisons)",
    )
    parser.add_argument(
        "--ignore-fields",
        default="",
        metavar="F1,F2",
        help="comma-separated row fields to drop from row identity on "
        "both sides (e.g. 'engine' when comparing across engine paths)",
    )
    parser.add_argument(
        "--only-rows",
        default="",
        metavar="S1,S2",
        help="comma-separated substrings; only baseline rows whose "
        "label contains one of them are gated (e.g. 'staircase core,"
        "elevator core' to hold the speedup floor on the headline "
        "workloads without gating noise-floor rows)",
    )
    args = parser.parse_args(argv)
    ignore = frozenset(
        field.strip() for field in args.ignore_fields.split(",") if field.strip()
    )
    only_rows = tuple(
        part.strip() for part in args.only_rows.split(",") if part.strip()
    )

    names = args.names or sorted(
        path.stem for path in args.baselines.glob("*.json")
    )
    if not names:
        print(f"no baselines found under {args.baselines}", file=sys.stderr)
        return 1
    if args.baseline_name is not None and len(names) != 1:
        print(
            "--baseline-name requires exactly one table name",
            file=sys.stderr,
        )
        return 1

    failures = 0
    for name in names:
        baseline_path = args.baselines / f"{args.baseline_name or name}.json"
        results_path = args.results / f"{name}.json"
        if not baseline_path.exists():
            print(f"FAIL {name}: no baseline {baseline_path}", file=sys.stderr)
            failures += 1
            continue
        if not results_path.exists():
            print(
                f"FAIL {name}: no results {results_path} (run the bench first)",
                file=sys.stderr,
            )
            failures += 1
            continue
        baseline = load_table(baseline_path)
        current = load_table(results_path)
        if args.min_speedup is not None or args.max_ratio is not None:
            parts = []
            if args.min_speedup is not None:
                parts.append(f"min speedup: {args.min_speedup:g}x")
            if args.max_ratio is not None:
                parts.append(f"max ratio: {args.max_ratio:g}")
            mode = f"{', '.join(parts)} vs {args.baseline_name or name}"
        else:
            mode = f"threshold: {args.threshold:g}x"
        print(f"== {name} (metric: {args.metric}, {mode}) ==")
        for key, base_value, cur_value, ratio, ok, drift in compare_table(
            name,
            baseline,
            current,
            args.metric,
            args.threshold,
            min_speedup=args.min_speedup,
            max_ratio=args.max_ratio,
            ignore=ignore,
        ):
            label = describe(key)
            if only_rows and not any(part in label for part in only_rows):
                continue
            if cur_value is None:
                if drift:
                    moved = ", ".join(
                        f"{field} {before} -> {after}"
                        for field, (before, after) in drift.items()
                    )
                    print(
                        f"  FAIL {label}: SEMANTIC DRIFT ({moved}) — the "
                        "engine changed what it computes, not how fast; "
                        "fix the behaviour or re-baseline deliberately"
                    )
                else:
                    print(f"  FAIL {label}: row missing from current results")
                failures += 1
            elif not ok:
                if args.min_speedup is not None or args.max_ratio is not None:
                    speedup = base_value / max(cur_value, 1e-9)
                    bounds = []
                    if args.min_speedup is not None:
                        bounds.append(f"floor {args.min_speedup:g}x")
                    if args.max_ratio is not None:
                        bounds.append(f"ceiling {args.max_ratio:g}")
                    print(
                        f"  FAIL {label}: {base_value:g} -> {cur_value:g} "
                        f"({speedup:.2f}x speedup, ratio {ratio:.2f}, "
                        f"{', '.join(bounds)})"
                    )
                else:
                    print(
                        f"  FAIL {label}: {base_value:g} -> {cur_value:g} "
                        f"({ratio:.2f}x, over {args.threshold}x)"
                    )
                failures += 1
            else:
                if args.min_speedup is not None or args.max_ratio is not None:
                    speedup = base_value / max(cur_value, 1e-9)
                    print(
                        f"  ok   {label}: {base_value:g} -> {cur_value:g} "
                        f"({speedup:.2f}x speedup)"
                    )
                else:
                    print(
                        f"  ok   {label}: {base_value:g} -> {cur_value:g} ({ratio:.2f}x)"
                    )
    if failures:
        if args.min_speedup is not None or args.max_ratio is not None:
            print(
                f"{failures} row(s) outside the configured speedup bounds",
                file=sys.stderr,
            )
        else:
            print(
                f"{failures} regression(s) beyond {args.threshold:g}x",
                file=sys.stderr,
            )
        return 1
    print("perf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the backward UCQ rewriting layer (repro.query.rewriting).

The load-bearing property is the differential one: on every
analyzer-identified rewritable KB, a conclusive rewriting verdict must
equal the Theorem-1 race's verdict.  The unit tests pin the piece-
unification validity conditions one by one — each is a soundness
boundary (violating it would equate a chase null with something it is
not equal to).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import layered_kb, random_kb
from repro.kbs.ontology import academia_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import (
    bts_not_fes_kb,
    guarded_chain_kb,
    manager_kb,
    transitive_closure_kb,
)
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_rules
from repro.logic.rules import RuleSet
from repro.logic.serialization import load_kb
from repro.query import (
    boolean_cq,
    decide_by_rewriting,
    decide_entailment,
    rewritable_fragment,
    rewrite_ucq,
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def kb_of(facts: str, rules: str) -> KnowledgeBase:
    return load_kb(f"[facts]\n{facts}\n[rules]\n{rules}\n")


class TestFragmentCheck:
    def test_linear_detected(self):
        assert rewritable_fragment(manager_kb().rules) == "linear"
        assert rewritable_fragment(academia_kb().rules) == "linear"

    def test_guarded_but_not_linear_detected(self):
        rules = parse_rules("[R] p(X, Y, Z), q(Y) -> r(X, W)")
        # p(X,Y,Z) guards {X,Y,Z}; two body atoms, so not linear.
        assert rewritable_fragment(RuleSet(rules)) == "guarded"

    def test_unguarded_rejected(self):
        assert rewritable_fragment(transitive_closure_kb(2).rules) is None
        assert rewritable_fragment(staircase_kb().rules) is None
        assert rewritable_fragment(elevator_kb().rules) is None


class TestPieceValidity:
    """Each invalid piece unifier corresponds to pretending a chase
    null equals something it never equals; the rewriting must refuse it
    and (the ruleset being linear, hence complete) answer False."""

    def test_existential_never_unifies_with_constant(self):
        # chase(p(a)) = {p(a), q(a, n)} with a fresh null n != b
        kb = kb_of("p(a)", "[R] p(X) -> q(X, Z)")
        verdict = decide_by_rewriting(kb, boolean_cq("q(a, b)"))
        assert verdict is not None and verdict.entailed is False
        # the frontier side still rewrites: q(a, Y) <- p(a)
        hit = decide_by_rewriting(kb, boolean_cq("q(a, Y)"))
        assert hit is not None and hit.entailed is True

    def test_piece_privacy_blocks_escaping_variables(self):
        # Y escapes the piece into r(Y); the null is private to q's
        # second position, so q(X, Y), r(Y) must NOT rewrite through R.
        kb = kb_of("p(a), r(b)", "[R] p(X) -> q(X, Z)")
        verdict = decide_by_rewriting(kb, boolean_cq("q(X, Y), r(Y)"))
        assert verdict is not None and verdict.entailed is False

    def test_two_existentials_never_unify(self):
        # chase makes two distinct nulls; q(Y, Y) would need them equal
        kb = kb_of("p(a)", "[R] p(X) -> q(Z, W)")
        verdict = decide_by_rewriting(kb, boolean_cq("q(Y, Y)"))
        assert verdict is not None and verdict.entailed is False

    def test_existential_never_unifies_with_frontier(self):
        # q(Y, Y) through p(X) -> q(X, Z) would equate the null Z with
        # the frontier X
        kb = kb_of("p(a)", "[R] p(X) -> q(X, Z)")
        verdict = decide_by_rewriting(kb, boolean_cq("q(Y, Y)"))
        assert verdict is not None and verdict.entailed is False

    def test_whole_head_piece_rewrites(self):
        # both head atoms consumed at once, the shared existential stays
        # internal to the piece: r0(X, Y), l1(Y) <- l0(X)
        kb = layered_kb(2)
        verdict = decide_by_rewriting(kb, boolean_cq("r0(X, Y), l1(Y)"))
        assert verdict is not None and verdict.entailed is True


class TestSaturation:
    def test_layered_depth_saturates(self):
        kb = layered_kb(4)
        result = rewrite_ucq(kb.rules, boolean_cq("l4(X)"))
        assert result.complete
        # l4 <- l3 <- l2 <- l1 <- l0: one disjunct per layer
        assert len(result.disjuncts) == 5

    def test_subsumption_prunes_redundant_disjuncts(self):
        kb = manager_kb()
        result = rewrite_ucq(kb.rules, boolean_cq("mgr(X, Y), emp(Y)"))
        assert result.complete
        assert result.pruned > 0
        # emp(X) subsumes everything else the saturation generates
        assert len(result.disjuncts) == 1

    def test_work_budget_marks_incomplete(self):
        kb = layered_kb(4)
        result = rewrite_ucq(kb.rules, boolean_cq("l4(X)"), max_work=1)
        assert not result.complete

    def test_disjunct_budget_marks_incomplete(self):
        kb = layered_kb(6)
        result = rewrite_ucq(kb.rules, boolean_cq("l6(X)"), max_disjuncts=2)
        assert not result.complete

    def test_incomplete_rewriting_never_answers_no(self):
        kb = layered_kb(4)
        # Budget too small to reach l0, and the facts only hold l0: an
        # exact decision is impossible, so the caller must fall back.
        verdict = decide_by_rewriting(
            kb, boolean_cq("l4(X)"), max_disjuncts=2
        )
        assert verdict is None

    def test_empty_ruleset_is_identity(self):
        from repro.logic.parser import parse_atoms

        kb = KnowledgeBase(parse_atoms("p(a)"), RuleSet([]), name="bare")
        result = rewrite_ucq(kb.rules, boolean_cq("p(X)"))
        assert result.complete
        assert len(result.disjuncts) == 1


class TestDifferentialAgainstRace:
    """Conclusive rewriting verdicts == Theorem-1 race verdicts."""

    FIXTURES = [
        (manager_kb, ["mgr(X, Y)", "mgr(ann, Y)", "mgr(X, Y), emp(Y)", "nosuch(X)"]),
        (guarded_chain_kb, ["q(X, Y)", "p(X, Y), q(Y, Z)", "p(b, X)"]),
        (bts_not_fes_kb, ["r(X, Y), r(Y, Z)", "r(b, X)", "r(X, a)"]),
        (academia_kb, [
            "prof(X)",
            "teaches(X, C)",
            "memberOf(X, D)",
            "supervises(X, Y), memberOf(X, D)",
            "mentor(X, Y), mentor(Y, Z)",
            "dean(X)",
        ]),
        (lambda: layered_kb(5), ["l5(X)", "l0(X), l3(Y)", "r0(X, Y), r0(Y, Z)"]),
    ]

    def test_fixture_differential(self):
        for factory, queries in self.FIXTURES:
            kb = factory()
            assert rewritable_fragment(kb.rules) is not None
            for text in queries:
                query = boolean_cq(text)
                rewritten = decide_by_rewriting(kb, query)
                race = decide_entailment(kb, query, chase_budget=200)
                assert rewritten is not None, (kb.name, text)
                if race.entailed is not None:
                    assert rewritten.entailed == race.entailed, (kb.name, text)

    def test_non_rewritable_fixtures_fall_back(self):
        # staircase/elevator sit outside the fragments: the rewriting
        # layer must decline (None), leaving the race authoritative.
        for factory, text in [
            (staircase_kb, "room0(X)"),
            (elevator_kb, "at(X, Y)"),
            (lambda: transitive_closure_kb(3), "e(v0, v2)"),
        ]:
            kb = factory()
            assert decide_by_rewriting(kb, boolean_cq(text)) is None

    @SETTINGS
    @given(seed=st.integers(0, 150), qpick=st.integers(0, 3))
    def test_random_linear_kbs_agree_with_race(self, seed, qpick):
        kb = random_kb(rule_count=3, fact_count=5, seed=seed)
        linear_rules = [r for r in kb.rules if len(r.body) == 1]
        if not linear_rules:
            return
        kb = KnowledgeBase(kb.facts, RuleSet(linear_rules), name=kb.name)
        text = ["p(X, Y)", "q(X, Y), e(Y, Z)", "e(X, X)", "p(X, Y), q(Y, X)"][qpick]
        query = boolean_cq(text)
        rewritten = decide_by_rewriting(kb, query, max_disjuncts=128)
        if rewritten is None:
            return
        race = decide_entailment(kb, query, chase_budget=150, model_domain_budget=4)
        if race.entailed is not None:
            assert rewritten.entailed == race.entailed

"""E6 — Proposition 8 / Corollary 1: every core chase of K_v blows up in
treewidth.

Two series are regenerated:

1. the core family I^v_n (Definition 12): each member is a **core**,
   contains a (⌊n/3⌋+1)×(⌊n/3⌋+1) grid (Prop. 8(2)) and hence has
   treewidth ≥ ⌊n/3⌋+1 by Fact 2;
2. the measured per-step treewidth of an actual core chase run of K_v —
   monotone growth within the budget (Corollary 1), despite the
   treewidth-1 universal model of E5.
"""

from repro import core_chase, is_core, treewidth
from repro.kbs import elevator as el
from repro.treewidth import grid_from_coordinates, treewidth_bounds
from repro.util import Table

from conftest import save_table


def core_family_series() -> list[tuple]:
    rows = []
    for n in range(0, 5):
        member = el.core_family_member(n)
        side = n // 3 + 1
        grid_ok = (
            grid_from_coordinates(
                member, el.coordinates(member), side, origin=el.grid_block_origin(n)
            )
            if n > 0
            else True
        )
        low, high = treewidth_bounds(member)
        rows.append((n, len(member), is_core(member), side, grid_ok, low, high))
    return rows


def bench_fig4_elevator_core_family(benchmark):
    rows = benchmark.pedantic(core_family_series, rounds=1, iterations=1)
    table = Table(
        ["n", "atoms", "core", "grid side", "grid found", "tw low", "tw high"],
        title="Prop. 8 — the core family I^v_n",
    )
    for n, atoms, core, side, grid_ok, low, high in rows:
        table.add_row(n, atoms, core, side, grid_ok, low, high)
        assert core, f"I^v_{n} must be a core"
        assert grid_ok, f"grid witness missing in I^v_{n}"
        assert high >= n // 3 + 1, f"tw(I^v_{n}) below the paper's bound"
    extra = "shape: every member is a core; tw lower bound grows ~ n/3 + 1."
    save_table("fig4_elevator_core_family", table, extra)


def bench_fig4_elevator_core_chase(benchmark, elevator_core_run):
    result = benchmark.pedantic(
        lambda: core_chase(el.elevator_kb(), max_steps=15),
        rounds=1,
        iterations=1,
    )
    long_run = elevator_core_run

    table = Table(
        ["step", "atoms", "treewidth"],
        title="Cor. 1 — core chase of K_v: treewidth grows beyond any bound",
    )
    widths = []
    for step in long_run.derivation:
        width = treewidth(step.instance)
        widths.append(width)
        if step.index % 5 == 0:
            table.add_row(step.index, len(step.instance), width)

    assert not long_run.terminated
    assert widths[-1] > widths[0], "treewidth must grow"
    first_two = widths.index(2)
    assert all(w >= 2 for w in widths[first_two:]), "growth must be monotone"
    assert max(widths) >= 3, "the measured prefix should reach treewidth 3"
    assert not result.terminated

    extra = (
        f"shape: per-step treewidth climbs {widths[0]} -> {max(widths)} and\n"
        "never returns below a level once reached — no recurring bound,\n"
        "exactly Corollary 1 (contrast with E5's treewidth-1 universal model)."
    )
    save_table("fig4_elevator_core_chase", table, extra)

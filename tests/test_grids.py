"""Tests for grid containment (Definition 5 / Fact 2)."""

import pytest

from repro.kbs.generators import grid_instance, path_instance
from repro.logic.parser import parse_atoms
from repro.treewidth import treewidth
from repro.treewidth.grids import (
    contains_grid,
    find_grid,
    grid_from_coordinates,
    grid_lower_bound,
)


class TestGenericSearch:
    def test_grid_contains_itself(self):
        atoms = grid_instance(3)
        assert contains_grid(atoms, 3)

    def test_grid_does_not_contain_larger(self):
        atoms = grid_instance(3)
        assert not contains_grid(atoms, 4)

    def test_smaller_grids_contained(self):
        atoms = grid_instance(3)
        assert contains_grid(atoms, 1)
        assert contains_grid(atoms, 2)

    def test_path_contains_no_2_grid(self):
        assert not contains_grid(path_instance(6), 2)

    def test_one_grid_is_any_term(self):
        assert contains_grid(parse_atoms("p(X)"), 1)

    def test_witness_is_well_formed(self):
        atoms = grid_instance(3)
        witness = find_grid(atoms, 2)
        assert witness is not None
        flattened = [t for row in witness for t in row]
        assert len(set(flattened)) == 4

    def test_wide_atoms_count_as_co_occurrence(self):
        # Definition 5 only needs the pair to share an atom — a ternary
        # atom connecting all three works too.
        atoms = parse_atoms(
            "t(A1, A2, B1), t(A2, B2, B1), t(A1, B1, X), t(A2, B2, X)"
        )
        assert contains_grid(atoms, 2)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            contains_grid(grid_instance(2), 0)


class TestLowerBound:
    def test_grid_lower_bound_matches_size(self):
        assert grid_lower_bound(grid_instance(3), max_n=5) == 3

    def test_lower_bound_respects_fact_2(self):
        """Fact 2: an n×n grid forces treewidth ≥ n."""
        atoms = grid_instance(3)
        assert treewidth(atoms) >= grid_lower_bound(atoms, max_n=4)

    def test_lower_bound_zero_on_empty_cooccurrence(self):
        from repro.logic.atomset import AtomSet

        assert grid_lower_bound(AtomSet(), max_n=3) == 0


class TestCoordinateWitness:
    def test_coordinate_grid_verified(self):
        atoms = grid_instance(4)
        coords = {}
        for term in atoms.terms():
            _, rest = term.name.split("G")
            i, j = rest.split("_")
            coords[term] = (int(i), int(j))
        assert grid_from_coordinates(atoms, coords, 4)
        assert grid_from_coordinates(atoms, coords, 2, origin=(1, 1))

    def test_out_of_range_origin_fails(self):
        atoms = grid_instance(3)
        coords = {}
        for term in atoms.terms():
            _, rest = term.name.split("G")
            i, j = rest.split("_")
            coords[term] = (int(i), int(j))
        assert not grid_from_coordinates(atoms, coords, 3, origin=(1, 1))

    def test_missing_adjacency_fails(self):
        # a 2x2 block with one missing edge is not a grid witness
        atoms = parse_atoms("h(A, B), v(A, C)")  # no edge C-D, D missing
        coords = {t: (0, 0) for t in atoms.terms()}
        # coordinates must be distinct
        with pytest.raises(ValueError):
            grid_from_coordinates(atoms, coords, 1)

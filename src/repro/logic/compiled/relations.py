"""Columnar per-predicate relations over interned atoms.

A :class:`CompiledView` mirrors one :class:`~repro.logic.atomset.AtomSet`
as a family of :class:`Relation` objects — one per predicate — each
storing its atoms as flat int tuples (*rows*) plus:

* ``postings``: ``(position, term code) -> set of rows`` — the compiled
  twin of the atomset's positional index, but keyed by a small int pair
  instead of a ``(Predicate, int, Term)`` tuple, so a candidate-pool
  probe is one int-tuple hash instead of three object hashes;
* ``sort_keys``: ``row -> per-argument (is_variable, name) tuple`` —
  precomputed at insert time, so ordering a candidate pool costs one
  dict read per member.  Rows of one predicate compare exactly as the
  corresponding atoms compare under :meth:`Atom.sort_key` (predicate
  name and arity are constant within a relation; the remaining
  component is this per-argument tuple), which is what lets the
  compiled evaluator reproduce the indexed search's witness order
  bit-for-bit.

The view is attached lazily (:func:`compiled_view`) to the atomset's
``_compiled`` slot and maintained *incrementally* from then on:
``AtomSet.add``/``discard`` forward every mutation, so chase deltas and
:class:`~repro.logic.coremaint.CoreMaintainer` retractions translate to
tuple insertions/deletions without a rebuild.  An atomset that never
meets the compiled evaluator pays one ``is None`` test per mutation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .interner import symbol_table

if TYPE_CHECKING:  # pragma: no cover
    from ..atoms import Atom
    from ..atomset import AtomSet

__all__ = ["Relation", "CompiledView", "compiled_view"]

_EMPTY: frozenset = frozenset()


class Relation:
    """The rows of one predicate, with positional postings."""

    __slots__ = ("pred_code", "rows", "postings", "sort_keys")

    def __init__(self, pred_code: int):
        self.pred_code = pred_code
        self.rows: set[tuple[int, ...]] = set()
        self.postings: dict[tuple[int, int], set[tuple[int, ...]]] = {}
        self.sort_keys: dict[tuple[int, ...], tuple] = {}

    def add(self, row: tuple[int, ...], term_sort_keys: list) -> None:
        self.rows.add(row)
        postings = self.postings
        for position, code in enumerate(row):
            key = (position, code)
            bucket = postings.get(key)
            if bucket is None:
                postings[key] = {row}
            else:
                bucket.add(row)
        self.sort_keys[row] = tuple(term_sort_keys[c] for c in row)

    def discard(self, row: tuple[int, ...]) -> None:
        self.rows.discard(row)
        postings = self.postings
        for position, code in enumerate(row):
            key = (position, code)
            bucket = postings.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del postings[key]
        self.sort_keys.pop(row, None)

    def clone(self) -> "Relation":
        """An independent copy — C-level container copies only, so
        cloning a relation is far cheaper than re-adding its rows."""
        new = Relation.__new__(Relation)
        new.pred_code = self.pred_code
        new.rows = set(self.rows)
        new.postings = {key: set(bucket) for key, bucket in self.postings.items()}
        new.sort_keys = dict(self.sort_keys)
        return new

    def pool(self, position: int, code: int) -> frozenset:
        """The no-copy posting for (*position*, *code*) — empty when the
        value never occurs there (do not mutate)."""
        return self.postings.get((position, code), _EMPTY)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Relation(pred={self.pred_code}, {len(self.rows)} rows)"


class CompiledView:
    """All relations of one atomset, keyed by predicate code."""

    __slots__ = ("relations", "tuples", "generation", "plan", "search_items")

    def __init__(self) -> None:
        self.relations: dict[int, Relation] = {}
        self.tuples = 0
        self.generation = symbol_table().generation
        #: Cached compiled plan of this atomset *as a search source*
        #: (:func:`repro.logic.compiled.plans.source_plan`); dropped on
        #: mutation.  Rule bodies — searched thousands of times, never
        #: mutated — compile exactly once.
        self.plan = None
        #: Per-(source plan) cache of search working items against this
        #: atomset *as a target* — ``id(plan) -> (plan, items)``, the
        #: plan kept to pin its id (see plans.run_plan).  Any mutation
        #: invalidates the whole cache: the items embed pool snapshots.
        self.search_items: dict = {}

    def add(self, at: "Atom") -> None:
        table = symbol_table()
        _, pred_code, row = table.encode_atom(at)
        relation = self.relations.get(pred_code)
        if relation is None:
            relation = self.relations[pred_code] = Relation(pred_code)
        relation.add(row, table.term_sort_keys)
        self.tuples += 1
        self.plan = None
        if self.search_items:
            self.search_items.clear()

    def discard(self, at: "Atom") -> None:
        _, pred_code, row = symbol_table().encode_atom(at)
        relation = self.relations.get(pred_code)
        if relation is not None:
            relation.discard(row)
            self.tuples -= 1
            self.plan = None
            if self.search_items:
                self.search_items.clear()

    def clone(self) -> "CompiledView":
        """An independent copy of the whole view, for ``AtomSet.copy()``:
        the chase snapshots its instance every step, and cloning the
        relations beats rebuilding the view atom by atom on the copy.
        Plan and search-item caches start empty (they embed identities
        of the source view's pools)."""
        new = CompiledView.__new__(CompiledView)
        new.relations = {
            code: relation.clone() for code, relation in self.relations.items()
        }
        new.tuples = self.tuples
        new.generation = self.generation
        new.plan = None
        new.search_items = {}
        return new

    def __repr__(self) -> str:
        return f"CompiledView({self.tuples} tuples, {len(self.relations)} relations)"


def compiled_view(atoms: "AtomSet") -> CompiledView:
    """The compiled view of *atoms*, building and attaching it on first
    use; afterwards the atomset maintains it through its own mutations.

    A view encoded against a retired symbol table (only possible after
    the test-only :func:`~repro.logic.compiled.interner.
    reset_symbol_table`) is discarded and rebuilt.
    """
    view = atoms._compiled
    if view is None or view.generation != symbol_table().generation:
        view = CompiledView()
        for at in atoms._atoms:
            view.add(at)
        atoms._compiled = view
    return view

"""A supervised process-pool job executor with retry, backoff, and
fork/spawn-safe metrics.

Chase jobs are CPU-bound pure Python, so real concurrency needs
processes; :class:`JobExecutor` shards :class:`~repro.service.jobs.
JobRequest` work across a :class:`~concurrent.futures.
ProcessPoolExecutor` (``workers=0`` degrades to a single in-process
worker thread — handy for tests and the single-shot CLI paths).

Supervision (the fault-tolerance layer)
---------------------------------------
Worker loss is an *expected* event for this paper's workloads — the
core chase of the inflating elevator never terminates, and real jobs
die on memory or timeout — so the executor treats a broken pool as
routine, not fatal:

1. **Failure classification.**  An exception surfacing at the executor
   level (never from :func:`~repro.service.jobs.execute_job`, which
   converts job-level errors into ``ok=False`` results) is classified
   *transient* (:class:`~concurrent.futures.BrokenExecutor` — a worker
   died and poisoned the pool — plus :class:`OSError`/:class:`EOFError`
   pipe failures) or *permanent* (unpicklable payloads, shutdown,
   anything else deterministic).
2. **Pool rebuild.**  The first transient failure observed against the
   current pool replaces it with a fresh one (the broken pool can never
   accept work again); concurrent failures from the same breakage see
   the already-rebuilt pool and skip the rebuild.
3. **Retry with capped exponential backoff + jitter.**  Transient
   failures re-submit the job under a per-job retry budget
   (:class:`RetryPolicy`); snapshot warm starts make retries cheap by
   construction — a retried job resumes from the last checkpoint the
   dead worker (or a sibling) saved, so the work lost to a crash is at
   most one checkpoint interval.
4. **Guaranteed resolution.**  :meth:`JobExecutor.submit` never raises
   and the returned future always resolves: permanent failures,
   exhausted retry budgets, post-completion bookkeeping errors
   (metrics merge, result decode, a raising observer) and shutdown all
   resolve to well-formed ``ok=False`` :class:`JobResult`\\ s.

Metrics protocol (the fork/spawn hazard)
----------------------------------------
The process-global :class:`~repro.obs.MetricsRegistry` must never be
*shared* with workers: under ``spawn`` the child would start with an
unrelated fresh module, under ``fork`` it would inherit a dead copy
whose updates the parent never sees — silently dropped telemetry
either way.  The protocol here makes worker metrics explicit instead:

1. the pool initializer installs a **fresh, enabled** registry in each
   worker (and clears any inherited process-global observer, so a
   forked worker cannot scribble into the parent's trace file);
2. each job resets that registry, runs with a local
   :class:`~repro.obs.MetricsObserver`, and ships
   ``registry.snapshot()`` back alongside the result;
3. the parent folds the snapshot into its own registry
   (:meth:`~repro.obs.MetricsRegistry.merge_snapshot`) on completion.

The pool uses the ``spawn`` start method explicitly so worker state is
fresh by construction on every platform (and fork-safety hazards with
the server's event-loop threads never arise).

The parent also keeps the ``service.queue_depth`` gauge current
(submitted-but-unfinished jobs), counts ``service.retries`` /
``service.pool_rebuilds``, and reports completions through the
:meth:`~repro.obs.Observer.service_job` telemetry event (retries and
rebuilds through :meth:`~repro.obs.Observer.service_retry` /
:meth:`~repro.obs.Observer.service_pool_rebuild`), with wall-clock
latency measured from first submission (queueing and retries included).
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Optional

from ..obs import observer as _observer_state
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..obs.spans import (
    TraceContext,
    activate,
    close_span,
    open_span,
    span as _span,
)
from ..obs.tracer import JsonlTracer, MetricsObserver, TracingObserver
from .faults import FaultPlan, fire_snapshot_corruption, fire_worker_faults
from .jobs import JobRequest, JobResult, execute_job
from .snapshots import SnapshotStore

__all__ = ["JobExecutor", "RetryPolicy", "is_transient"]


def _worker_init() -> None:
    """Pool initializer: give the worker a clean telemetry slate."""
    set_registry(MetricsRegistry(enabled=True))
    _observer_state.set_observer(None)


def _open_store(
    snapshot_dir: Optional[str], limits: Optional[dict]
) -> Optional[SnapshotStore]:
    if not snapshot_dir:
        return None
    limits = limits or {}
    kwargs = {}
    if limits.get("max_chain_depth") is not None:
        kwargs["max_chain_depth"] = limits["max_chain_depth"]
    if limits.get("ancestor_resume") is not None:
        kwargs["ancestor_resume"] = limits["ancestor_resume"]
    return SnapshotStore(
        snapshot_dir,
        max_entries=limits.get("max_entries"),
        max_bytes=limits.get("max_bytes"),
        **kwargs,
    )


def _job_observer(registry: MetricsRegistry, trace_dir: Optional[str]):
    """The per-job observer: metrics-only, or tracing into this worker's
    own JSONL sink (``worker-<pid>.jsonl``, append mode — one file per
    worker process, merged later on the wall-clock ``ts`` field).
    Returns ``(observer, sink)``; the caller closes a non-None sink."""
    if not trace_dir:
        return MetricsObserver(registry), None
    path = os.path.join(trace_dir, f"worker-{os.getpid()}.jsonl")
    sink = open(path, "a")
    return TracingObserver(JsonlTracer(sink), registry=registry), sink


def _note_queue_wait(observer, request: JobRequest) -> None:
    """Record the time this delivery spent between parent-side submit
    and worker pickup as an instant ``queue_wait`` span (the wait
    already happened, so it rides as an attribute, not a duration)."""
    trace = request.trace if isinstance(request.trace, dict) else None
    if trace is None:
        return
    submitted = trace.get("submitted_ts")
    if not isinstance(submitted, (int, float)):
        return
    wait = max(0.0, time.time() - submitted)
    with _span("queue_wait", observer=observer, wait_seconds=round(wait, 6)):
        pass


def _run_job(
    request_obj: dict,
    snapshot_dir: Optional[str],
    fault_dir: Optional[str] = None,
    limits: Optional[dict] = None,
    trace_dir: Optional[str] = None,
) -> tuple[dict, dict]:
    """Worker-side body: execute one job, return (result, metrics).

    Runs in a pool worker; only JSON-able dicts cross the boundary.
    The request's trace context (if any) is activated for the whole
    job and the job observer is installed process-globally for its
    duration, so snapshot accesses and engine events — which report to
    the global observer — are traced and stamped too."""
    registry = get_registry()
    registry.reset()
    plan = FaultPlan(fault_dir) if fault_dir else None
    fire_worker_faults(plan, in_process=False)
    request = JobRequest.from_obj(request_obj)
    store = _open_store(snapshot_dir, limits)
    observer, sink = _job_observer(registry, trace_dir)
    context = TraceContext.from_obj(request.trace)
    try:
        with activate(context), _observer_state.observing(observer):
            _note_queue_wait(observer, request)
            result = execute_job(request, store, observer=observer)
            fire_snapshot_corruption(plan, snapshot_dir)
    finally:
        if sink is not None:
            sink.close()
    return result.to_obj(), registry.snapshot()


def _run_job_local(
    request_obj: dict,
    snapshot_dir: Optional[str],
    fault_dir: Optional[str] = None,
    limits: Optional[dict] = None,
    trace_dir: Optional[str] = None,
) -> tuple[dict, dict]:
    """In-process (``workers=0``) body: same contract, private registry.

    Unlike the pool-worker body this must NOT touch the process-global
    observer — it shares the process with the server's event loop.  The
    trace context still activates (context variables are per-thread), so
    events the global observer emits on this thread stay stamped."""
    registry = MetricsRegistry(enabled=True)
    plan = FaultPlan(fault_dir) if fault_dir else None
    fire_worker_faults(plan, in_process=True)
    request = JobRequest.from_obj(request_obj)
    store = _open_store(snapshot_dir, limits)
    observer, sink = _job_observer(registry, trace_dir)
    context = TraceContext.from_obj(request.trace)
    try:
        with activate(context):
            _note_queue_wait(observer, request)
            result = execute_job(request, store, observer=observer)
            fire_snapshot_corruption(plan, snapshot_dir)
    finally:
        if sink is not None:
            sink.close()
    return result.to_obj(), registry.snapshot()


# ---------------------------------------------------------------------------
# failure classification and retry policy
# ---------------------------------------------------------------------------


#: OSError subclasses that name a deterministic environment problem (a
#: missing or unwritable snapshot/fault path): retrying cannot fix them,
#: it only burns the backoff budget before the client sees ok=False.
_DETERMINISTIC_OS_ERRORS = (
    FileNotFoundError,
    PermissionError,
    FileExistsError,
    IsADirectoryError,
    NotADirectoryError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether *exc* names a failure a retry can plausibly outrun.

    :class:`BrokenExecutor` (a worker died — the canonical recoverable
    event), pipe/connection-level :class:`OSError`/:class:`EOFError` and
    cancelled inner futures are transient; deterministic OSErrors
    (missing files, bad permissions) and everything else (unpicklable
    payloads, ``submit`` after shutdown, programming errors) are
    permanent — the job is deterministic, so re-running it would fail
    identically.
    """
    if isinstance(exc, _DETERMINISTIC_OS_ERRORS):
        return False
    return isinstance(exc, (BrokenExecutor, OSError, EOFError, CancelledError))


@dataclass
class RetryPolicy:
    """Capped exponential backoff with jitter, per-job budgeted.

    Attempt *n* (0-based retry index) sleeps
    ``min(max_delay, base_delay * 2**n)`` scaled by a jitter factor
    drawn uniformly from ``[0.5, 1.0]`` — the decorrelation that keeps a
    herd of jobs orphaned by one dead worker from re-stampeding the
    rebuilt pool in lockstep.  *seed* pins the jitter stream for
    reproducible tests; None uses nondeterministic jitter.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        self._rng = random.Random(self.seed)
        self._rng_lock = threading.Lock()

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry *attempt* (0-based), jitter applied."""
        ceiling = min(self.max_delay, self.base_delay * (2**attempt))
        with self._rng_lock:
            jitter = 0.5 + self._rng.random() / 2
        return ceiling * jitter


class _Job:
    """Parent-side bookkeeping for one submitted request."""

    __slots__ = (
        "request",
        "submitted",
        "attempt",
        "pool",
        "context",
        "attempt_context",
        "owns_span",
    )

    def __init__(self, request: JobRequest, submitted: float):
        self.request = request
        self.submitted = submitted
        self.attempt = 0  # retries performed so far
        self.pool = None  # the pool the live attempt went to
        self.context: Optional[TraceContext] = None  # the job span
        self.attempt_context: Optional[TraceContext] = None  # live attempt
        self.owns_span = False  # we minted (and must close) the job span


class JobExecutor:
    """Shard jobs across worker processes; supervise and retry failures.

    Parameters
    ----------
    workers:
        Process-pool size; ``0`` runs jobs on one background thread in
        this process (no pickling, no interpreter startup — the mode
        unit tests and the single-shot CLI use).
    snapshot_dir:
        Root of the shared :class:`~repro.service.snapshots.
        SnapshotStore`; None disables warm starts.
    registry:
        Where worker metric snapshots are merged; defaults to the
        process-global registry.
    retry_policy:
        Backoff/budget for transient executor-level failures; None
        installs the default :class:`RetryPolicy` (2 retries).
    fault_dir:
        A :class:`~repro.service.faults.FaultPlan` directory forwarded
        to workers; None (the default) disables fault injection.
    trace_dir:
        A run directory for per-worker JSONL span sinks: each pool
        worker appends its trace to ``trace_dir/worker-<pid>.jsonl``
        (``repro trace`` merges them with the server's file); None
        disables worker-side tracing.
    max_snapshot_entries, max_snapshot_bytes:
        Size bounds forwarded to the worker-side snapshot stores
        (access-counter LRU eviction past either bound); None leaves
        the store unbounded.
    max_chain_depth:
        Delta-chain depth budget forwarded to the worker-side stores
        (chains re-checkpoint past it); None keeps the store default.
    ancestor_resume:
        Whether workers may resolve nearest-ancestor snapshots on exact
        misses and resume incrementally (default True).
    """

    def __init__(
        self,
        workers: int = 2,
        snapshot_dir: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_dir: Optional[str] = None,
        max_snapshot_entries: Optional[int] = None,
        max_snapshot_bytes: Optional[int] = None,
        trace_dir: Optional[str] = None,
        max_chain_depth: Optional[int] = None,
        ancestor_resume: bool = True,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.snapshot_dir = str(snapshot_dir) if snapshot_dir else None
        self.registry = registry if registry is not None else get_registry()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_dir = str(fault_dir) if fault_dir else None
        self.trace_dir = str(trace_dir) if trace_dir else None
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)
        self._limits: Optional[dict] = None
        if (
            max_snapshot_entries is not None
            or max_snapshot_bytes is not None
            or max_chain_depth is not None
            or not ancestor_resume
        ):
            self._limits = {
                "max_entries": max_snapshot_entries,
                "max_bytes": max_snapshot_bytes,
                "max_chain_depth": max_chain_depth,
                "ancestor_resume": ancestor_resume,
            }
        self._body = _run_job if workers > 0 else _run_job_local
        self._lock = threading.Lock()
        self._pool = self._make_pool()
        self._pending = 0
        self._closed = False
        self.retries = 0
        self.pool_rebuilds = 0
        #: backoff timers for jobs awaiting re-submission
        self._retry_timers: dict[
            threading.Timer, tuple[_Job, Future, Optional[TraceContext]]
        ] = {}

    def _make_pool(self):
        if self.workers > 0:
            return ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
            )
        return ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-job")

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> "Future[JobResult]":
        """Schedule *request*; the returned future always resolves to a
        :class:`JobResult` (never raises — job errors, pool breakage,
        exhausted retries and shutdown all come back as ``ok=False``
        results)."""
        outer: Future = Future()
        job = _Job(request, time.perf_counter())
        job.context = TraceContext.from_obj(request.trace)
        if job.context is None and _observer_state.current is not None:
            # Standalone use (no server minted a trace for this request):
            # the executor owns the job span and must close it itself.
            job.context = TraceContext.new_root()
            job.owns_span = True
            self._span_open(job.context, "service_job", op=request.op)
        with self._lock:
            self._pending += 1
            depth = self._pending
        self.registry.gauge("service.queue_depth").set(depth)
        self._submit_attempt(job, outer)
        return outer

    def _submit_attempt(self, job: _Job, outer: "Future[JobResult]") -> None:
        """Hand *job* to the current pool; on failure, route through the
        supervisor instead of raising."""
        with self._lock:
            closed = self._closed
            pool = self._pool
        if closed:
            self._resolve(
                job, outer, self._error_result(job, "executor is shut down")
            )
            return
        if job.context is not None:
            # Each (re-)submission is its own child span, opened AND
            # closed parent-side: a worker the fault plan kills with
            # os._exit can never close anything, so the attempt span
            # must not depend on worker-side cooperation.  The attempt
            # context rides on request.trace so the worker parents its
            # phase spans under *this* attempt, and submitted_ts lets
            # it measure queue wait.
            job.attempt_context = job.context.child()
            job.request.trace = {
                **job.attempt_context.to_obj(),
                "submitted_ts": round(time.time(), 6),
            }
            self._span_open(
                job.attempt_context,
                "job_attempt",
                op=job.request.op,
                attempt=job.attempt,
            )
        try:
            inner = pool.submit(
                self._body,
                job.request.to_obj(),
                self.snapshot_dir,
                self.fault_dir,
                self._limits,
                self.trace_dir,
            )
        except BaseException as exc:  # noqa: BLE001 - supervisor boundary
            job.pool = pool
            self._handle_failure(job, outer, exc)
            return
        job.pool = pool
        inner.add_done_callback(lambda done: self._finish(done, job, outer))

    # ------------------------------------------------------------------
    # completion and supervision
    # ------------------------------------------------------------------

    @staticmethod
    def _span_open(context, name: str, **attrs) -> None:
        """Guarded :func:`~repro.obs.spans.open_span` against the current
        observer — a raising observer must not break supervision."""
        try:
            open_span(_observer_state.current, context, name, **attrs)
        except Exception:  # noqa: BLE001 - observers must not break supervision
            pass

    @staticmethod
    def _span_close(context, name: str, status: str = "ok", **attrs) -> None:
        try:
            close_span(_observer_state.current, context, name, status=status, **attrs)
        except Exception:  # noqa: BLE001 - observers must not break supervision
            pass

    def _close_attempt(
        self, job: _Job, status: str, error: Optional[str] = None
    ) -> None:
        """Close the live attempt span, if one is open (idempotent)."""
        context = job.attempt_context
        if context is None:
            return
        job.attempt_context = None
        attrs: dict = {"attempt": job.attempt}
        if error is not None:
            attrs["error"] = error
        self._span_close(context, "job_attempt", status=status, **attrs)

    def _finish(self, done: Future, job: _Job, outer: "Future[JobResult]") -> None:
        """Inner-future callback.  Every path resolves or re-submits;
        nothing may leave *outer* pending (a client is awaiting it)."""
        try:
            try:
                exc = done.exception()
            except CancelledError as cancelled:
                exc = cancelled
            if exc is not None:
                self._handle_failure(job, outer, exc)
                return
            try:
                result_obj, metrics_snapshot = done.result()
                self.registry.merge_snapshot(metrics_snapshot)
                result = JobResult.from_obj(result_obj)
            except BaseException as post:  # noqa: BLE001 - see docstring
                # Post-completion bookkeeping failed (undecodable result,
                # incompatible metrics snapshot, ...): the job's answer is
                # unusable, but the client still gets a response.
                result = self._error_result(
                    job, f"result handling failed: {type(post).__name__}: {post}"
                )
            self._close_attempt(job, "ok" if result.ok else "error")
            self._resolve(job, outer, result)
        except BaseException as exc:  # noqa: BLE001 - last-resort guard
            if not outer.done():
                self._resolve_quietly(job, outer, exc)

    def _handle_failure(
        self, job: _Job, outer: "Future[JobResult]", exc: BaseException
    ) -> None:
        """Classify an executor-level failure; rebuild/retry or resolve."""
        error = f"{type(exc).__name__}: {exc}"
        self._close_attempt(job, "error", error=error)
        transient = is_transient(exc)
        if isinstance(exc, BrokenExecutor):
            self._rebuild_pool(job.pool, job.context)
        if transient and not self._closed and job.attempt < self.retry_policy.max_retries:
            delay = self.retry_policy.delay_for(job.attempt)
            with self._lock:
                job.attempt += 1
                self.retries += 1
                attempt = job.attempt
            self.registry.counter("service.retries").inc()
            # The backoff wait is itself a child span of the job, so a
            # merged trace shows the gap between attempts as supervised
            # waiting, not dead air; the service_retry event is emitted
            # under it so both carry the job's trace_id.
            backoff_context = job.context.child() if job.context is not None else None
            self._span_open(
                backoff_context,
                "retry_backoff",
                attempt=attempt,
                delay=round(delay, 6),
                error=error,
            )
            observer = _observer_state.current
            if observer is not None:
                try:
                    with activate(backoff_context):
                        observer.service_retry(
                            op=job.request.op,
                            attempt=attempt,
                            delay=delay,
                            error=error,
                        )
                except Exception:  # noqa: BLE001 - observers must not break supervision
                    pass
            timer = threading.Timer(delay, lambda: self._fire_retry(timer))
            timer.daemon = True
            # _resolve re-acquires self._lock, so only record the decision
            # under the lock and resolve after releasing it (shutdown()
            # resolves its parked jobs outside the lock the same way).
            with self._lock:
                closed_during_backoff = self._closed
                if closed_during_backoff:
                    timer.cancel()
                else:
                    self._retry_timers[timer] = (job, outer, backoff_context)
            if closed_during_backoff:
                self._span_close(backoff_context, "retry_backoff", status="aborted")
                self._resolve(
                    job,
                    outer,
                    self._error_result(job, "executor shut down during retry backoff"),
                )
                return
            timer.start()
            return
        suffix = f" (after {job.attempt} retries)" if job.attempt else ""
        self._resolve(
            job,
            outer,
            self._error_result(job, f"{type(exc).__name__}: {exc}{suffix}"),
        )

    def _fire_retry(self, timer: threading.Timer) -> None:
        with self._lock:
            entry = self._retry_timers.pop(timer, None)
        if entry is None:
            return  # shutdown already resolved this job
        job, outer, backoff_context = entry
        self._span_close(backoff_context, "retry_backoff", status="ok")
        self._submit_attempt(job, outer)

    def _rebuild_pool(self, broken_pool, context: Optional[TraceContext] = None) -> None:
        """Replace the broken pool with a fresh one, exactly once per
        breakage: concurrent failures from the same dead worker all name
        the same pool object, and only the first swap wins.  *context*
        (the failing job's span) parents a ``pool_rebuild`` span so the
        rebuild shows up inside that request's timeline."""
        with self._lock:
            if self._closed or self._pool is not broken_pool:
                return
            self._pool = self._make_pool()
            self.pool_rebuilds += 1
            pending = self._pending
        self.registry.counter("service.pool_rebuilds").inc()
        rebuild_context = context.child() if context is not None else None
        self._span_open(rebuild_context, "pool_rebuild", pending=pending)
        observer = _observer_state.current
        if observer is not None:
            try:
                with activate(rebuild_context):
                    observer.service_pool_rebuild(pending=pending)
            except Exception:  # noqa: BLE001 - observers must not break supervision
                pass
        self._span_close(rebuild_context, "pool_rebuild")
        if broken_pool is not None:
            broken_pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def _error_result(self, job: _Job, error: str) -> JobResult:
        return JobResult(op=job.request.op, ok=False, error=error)

    def _resolve(
        self, job: _Job, outer: "Future[JobResult]", result: JobResult
    ) -> None:
        """Account for the job and resolve *outer* — always, even when
        an observer misbehaves."""
        with self._lock:
            self._pending -= 1
            depth = self._pending
        self.registry.gauge("service.queue_depth").set(depth)
        result.seconds = time.perf_counter() - job.submitted
        observer = _observer_state.current
        if observer is not None:
            try:
                with activate(job.context):
                    observer.service_job(
                        op=job.request.op,
                        ok=result.ok,
                        warm=result.warm,
                        ancestor=result.ancestor,
                        incomplete=result.incomplete,
                        deadline_expired=result.deadline_expired,
                        applications=result.applications,
                        seconds=result.seconds,
                    )
            except Exception as exc:  # noqa: BLE001 - the client must get a reply
                result = self._error_result(
                    job, f"observer failed: {type(exc).__name__}: {exc}"
                )
                result.seconds = time.perf_counter() - job.submitted
        if job.owns_span:
            job.owns_span = False
            self._span_close(
                job.context,
                "service_job",
                status="ok" if result.ok else "error",
                seconds=round(result.seconds, 6),
                ok=result.ok,
                warm=result.warm,
            )
        if not outer.done():
            outer.set_result(result)

    def _resolve_quietly(
        self, job: _Job, outer: "Future[JobResult]", exc: BaseException
    ) -> None:
        """Absolute last resort: resolve without touching any subsystem
        that could itself raise."""
        try:
            with self._lock:
                self._pending -= 1
                depth = self._pending
            try:
                self.registry.gauge("service.queue_depth").set(depth)
            except BaseException:  # noqa: BLE001 - resolving outer comes first
                pass
            outer.set_result(
                self._error_result(
                    job, f"executor callback failed: {type(exc).__name__}: {exc}"
                )
            )
        except BaseException:  # noqa: BLE001 - nothing further to do
            pass

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet finished."""
        with self._lock:
            return self._pending

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; with ``wait`` the call blocks until running
        jobs finish.  Jobs parked in a retry backoff resolve immediately
        to ``ok=False`` — nobody is left awaiting a future that can no
        longer be served."""
        with self._lock:
            self._closed = True
            parked = list(self._retry_timers.items())
            self._retry_timers.clear()
            pool = self._pool
        for timer, (job, outer, backoff_context) in parked:
            timer.cancel()
            self._span_close(backoff_context, "retry_backoff", status="aborted")
            self._resolve(
                job, outer, self._error_result(job, "executor is shut down")
            )
        pool.shutdown(wait=wait)

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment bench (``bench_fig*`` / ``bench_prop*`` / ``bench_thm*``)
regenerates one figure or proposition of the paper: it measures the
relevant computation with pytest-benchmark, prints the series/verdicts
the paper reports, asserts the expected *shape*, and archives the table
under ``benchmarks/results/`` (the source of EXPERIMENTS.md numbers).

Run with::

    pytest benchmarks/ --benchmark-only            # timings + assertions
    pytest benchmarks/ --benchmark-only -s         # + live tables

Every figure's series is archived twice: human-readable
(``results/<name>.txt``) and machine-readable (``results/<name>.json``,
one record per table row with raw numbers) — the JSON twins are the
BENCH trajectory future perf PRs diff against.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import tempfile
from contextlib import contextmanager, nullcontext

import pytest

from repro import core_chase, restricted_chase
from repro.kbs.elevator import elevator_kb
from repro.kbs.staircase import staircase_kb
from repro.logic import indexing
from repro.util import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Version of the results-JSON layout (bump when the shape changes).
RESULTS_SCHEMA = 1

#: The engine paths a bench can measure (ISSUE 7): ``compiled`` is the
#: interned join-plan kernel (the default), ``indexed`` the object-level
#: engine it replaced (atom index + trigger index + memo, compiled layer
#: scoped off), ``naive`` the from-scratch reference (everything off).
ENGINES = ("naive", "indexed", "compiled")


def current_engine() -> str:
    """The engine path this bench process measures.

    ``REPRO_ENGINE=naive|indexed|compiled`` selects explicitly (and
    suffixes the archived results files — see :func:`save_table` — so
    per-engine tables don't overwrite each other); the legacy
    ``REPRO_NAIVE=1`` is kept as an alias for ``naive``; default is the
    full engine, i.e. ``compiled``.
    """
    explicit = os.environ.get("REPRO_ENGINE")
    if explicit:
        if explicit not in ENGINES:
            raise SystemExit(
                f"REPRO_ENGINE={explicit!r}: expected one of {ENGINES}"
            )
        return explicit
    if os.environ.get("REPRO_NAIVE") == "1":
        return "naive"
    return "compiled"


def engine_scope(engine: str | None = None):
    """A context manager scoping the indexing switchboard to *engine*
    (default: :func:`current_engine`) for the duration of a bench."""
    engine = engine or current_engine()
    if engine == "naive":
        return indexing.no_index()
    if engine == "indexed":
        return indexing.configured(compiled=False)
    return nullcontext()


@contextmanager
def quiesced_gc():
    """Disable the cyclic GC for the duration of a timed section (the
    ``timeit`` convention).  The perf tables compare engine paths that
    allocate at different rates; inside a large pytest process a GC pass
    costs proportional to the whole heap, so leaving collection enabled
    taxes the allocation-heavier engine with noise unrelated to its own
    work.  Collection runs once on exit to pay the debt outside the
    measurement."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def _current_umask() -> int:
    mask = os.umask(0)
    os.umask(mask)
    return mask


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write *text* to *path* atomically: a reader (the perf gate, a CI
    artifact upload, a concurrent bench session) never observes a
    truncated file — it sees the old content or the new, nothing in
    between.  The temp file lives in the target directory so
    ``os.replace`` stays a same-filesystem rename."""
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp-style temp files are 0600; give results the normal mode
        os.chmod(handle.name, 0o666 & ~_current_umask())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def save_table(name: str, table: Table, extra: str = "") -> None:
    """Print a table and archive it (.txt + .json) under
    benchmarks/results/ (atomically; see :func:`_atomic_write_text`).

    Every row of the JSON twin records the engine path it was measured
    on (``"engine": "naive" | "indexed" | "compiled"``) so a results
    table is self-describing — the perf gate matches rows on it, and a
    stale cross-engine comparison fails loudly instead of silently
    passing.  When ``REPRO_ENGINE`` selects an engine explicitly the
    archived files gain a ``_<engine>`` suffix (``perf_chase_compiled``)
    so one machine can produce all per-engine tables side by side.
    """
    engine = current_engine()
    if os.environ.get("REPRO_ENGINE"):
        name = f"{name}_{engine}"
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render() + (extra + "\n" if extra else "")
    print("\n" + rendered)
    _atomic_write_text(RESULTS_DIR / f"{name}.txt", rendered)
    payload = table.to_json_payload(name=name, extra=extra)
    payload["schema"] = RESULTS_SCHEMA
    if "engine" not in payload["headers"]:
        payload["headers"].append("engine")
    for row in payload["rows"]:
        row.setdefault("engine", engine)
    _atomic_write_text(
        RESULTS_DIR / f"{name}.json", json.dumps(payload, indent=2) + "\n"
    )


@pytest.fixture(scope="session")
def staircase_core_run():
    """A 45-application core chase of K_h (shared by E3/E7/E8)."""
    return core_chase(staircase_kb(), max_steps=45)


@pytest.fixture(scope="session")
def staircase_restricted_run():
    """A 45-application restricted chase of K_h (E2)."""
    return restricted_chase(staircase_kb(), max_steps=45)


@pytest.fixture(scope="session")
def elevator_core_run():
    """A 35-application core chase of K_v (E6)."""
    return core_chase(elevator_kb(), max_steps=35)


@pytest.fixture(scope="session")
def elevator_restricted_run():
    """A 30-application restricted chase of K_v (E5)."""
    return restricted_chase(elevator_kb(), max_steps=30)

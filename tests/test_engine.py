"""Tests for repro.chase.engine and repro.chase.variants."""

import pytest

from repro.chase import (
    ChaseEngine,
    ChaseVariant,
    core_chase,
    oblivious_chase,
    restricted_chase,
    run_chase,
    semi_oblivious_chase,
)
from repro.kbs.witnesses import (
    bts_not_fes_kb,
    fes_not_bts_kb,
    manager_kb,
    transitive_closure_kb,
    weakly_acyclic_kb,
)
from repro.logic.cores import is_core
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atoms, parse_rules


class TestTermination:
    def test_datalog_terminates_under_all_variants(self):
        kb = transitive_closure_kb(3)
        for variant in ChaseVariant.ALL:
            result = run_chase(kb, variant=variant, max_steps=200)
            assert result.terminated, variant

    def test_transitive_closure_result(self):
        kb = transitive_closure_kb(3)
        result = restricted_chase(kb, max_steps=100)
        # chain v0->v1->v2->v3: closure has 3 + 2 + 1 = 6 edges
        assert len(result.final_instance) == 6

    def test_weakly_acyclic_terminates(self):
        result = core_chase(weakly_acyclic_kb(), max_steps=100)
        assert result.terminated

    def test_infinite_chain_does_not_terminate(self):
        result = restricted_chase(bts_not_fes_kb(), max_steps=15)
        assert not result.terminated
        assert result.applications == 15

    def test_core_chase_terminates_on_fes_witness(self):
        result = core_chase(fes_not_bts_kb(), max_steps=100)
        assert result.terminated

    def test_restricted_diverges_on_fes_witness(self):
        result = restricted_chase(fes_not_bts_kb(), max_steps=15)
        assert not result.terminated

    def test_terminated_core_chase_result_is_model_and_core(self):
        kb = fes_not_bts_kb()
        result = core_chase(kb, max_steps=100)
        assert kb.is_model(result.final_instance)
        assert is_core(result.final_instance)

    def test_terminated_restricted_result_is_model(self):
        kb = manager_kb()
        # managers never terminates; use transitive closure instead
        kb = transitive_closure_kb(2)
        result = restricted_chase(kb, max_steps=50)
        assert result.terminated
        assert kb.is_model(result.final_instance)


class TestVariantSemantics:
    def test_restricted_skips_satisfied_triggers(self):
        kb = KnowledgeBase(
            parse_atoms("p(a), e(a, b)"),
            parse_rules("[R] p(X) -> e(X, Y)"),
        )
        result = restricted_chase(kb, max_steps=10)
        assert result.terminated
        assert result.applications == 0

    def test_oblivious_applies_satisfied_triggers(self):
        kb = KnowledgeBase(
            parse_atoms("p(a), e(a, b)"),
            parse_rules("[R] p(X) -> e(X, Y)"),
        )
        result = oblivious_chase(kb, max_steps=10)
        assert result.applications == 1  # applied despite satisfaction

    def test_semi_oblivious_identifies_frontier(self):
        # Two body matches with the same frontier image: semi-oblivious
        # applies once, oblivious twice.
        kb = KnowledgeBase(
            parse_atoms("e(a, b), e(c, b)"),
            parse_rules("[R] e(X, Y) -> q(Y, Z)"),
        )
        semi = semi_oblivious_chase(kb, max_steps=10)
        full = oblivious_chase(kb, max_steps=10)
        assert semi.applications == 1
        assert full.applications == 2

    def test_core_chase_prunes_redundancy(self):
        # p(a) triggers creation of e(a, Y); a second rule adds e(a, b),
        # making the null redundant: the core chase folds it away.
        kb = KnowledgeBase(
            parse_atoms("p(a), q(a)"),
            parse_rules(
                """
                [MakeNull] p(X) -> e(X, Y)
                [MakeConst] q(X) -> e(X, b)
                """
            ),
        )
        result = core_chase(kb, max_steps=10)
        assert result.terminated
        assert result.final_instance == parse_atoms("p(a), q(a), e(a, b)")

    def test_restricted_monotonic_core_not(self):
        kb = fes_not_bts_kb()
        restricted = restricted_chase(kb, max_steps=10)
        assert restricted.derivation.is_monotonic()

    def test_core_every_parameter(self):
        kb = fes_not_bts_kb()
        result = core_chase(kb, max_steps=100, core_every=3)
        assert result.terminated
        # periodic cores are still a core chase: same final core size
        reference = core_chase(kb, max_steps=100)
        assert len(result.final_instance) == len(reference.final_instance)


class TestFrugalVariant:
    def test_frugal_folds_redundant_fresh_nulls(self):
        # the head invents two nulls where one suffices: frugal keeps one
        kb = KnowledgeBase(
            parse_atoms("p(a)"),
            parse_rules("[R] p(X) -> e(X, Y), e(X, Z)"),
        )
        from repro.chase import frugal_chase, restricted_chase as rc

        frugal = frugal_chase(kb, max_steps=10)
        restricted = rc(kb, max_steps=10)
        assert frugal.terminated and restricted.terminated
        assert len(frugal.final_instance) < len(restricted.final_instance)

    def test_frugal_is_monotonic(self):
        from repro.chase import frugal_chase

        result = frugal_chase(fes_not_bts_kb(), max_steps=12)
        assert result.derivation.is_monotonic()
        result.derivation.validate()

    def test_frugal_never_folds_old_terms(self):
        from repro.chase import frugal_chase

        result = frugal_chase(fes_not_bts_kb(), max_steps=12)
        for index in range(1, len(result.derivation)):
            step = result.derivation.steps[index]
            previous_terms = result.derivation.instance(index - 1).terms()
            assert step.simplification.is_identity_on(previous_terms), index

    def test_frugal_between_restricted_and_core(self):
        # on a terminating KB: |core result| <= |frugal result| <= |restricted result|
        from repro.chase import core_chase as cc, frugal_chase

        kb = KnowledgeBase(
            parse_atoms("p(a), q(a)"),
            parse_rules(
                """
                [TwoNulls] p(X) -> e(X, Y), e(X, Z)
                [Const] q(X) -> e(X, b)
                """
            ),
        )
        core = cc(kb, max_steps=20)
        frugal = frugal_chase(kb, max_steps=20)
        restricted = restricted_chase(kb, max_steps=20)
        assert core.terminated and frugal.terminated and restricted.terminated
        assert len(core.final_instance) <= len(frugal.final_instance)
        assert len(frugal.final_instance) <= len(restricted.final_instance)


class TestDeterminismAndRecord:
    def test_runs_are_reproducible(self):
        kb = fes_not_bts_kb()
        first = core_chase(kb, max_steps=50)
        second = core_chase(kb, max_steps=50)
        assert first.applications == second.applications
        assert first.final_instance == second.final_instance

    def test_derivation_record_validates(self):
        kb = fes_not_bts_kb()
        result = core_chase(kb, max_steps=50)
        result.derivation.validate()

    def test_oblivious_record_validates_relaxed(self):
        kb = KnowledgeBase(
            parse_atoms("p(a), e(a, b)"),
            parse_rules("[R] p(X) -> e(X, Y)"),
        )
        result = oblivious_chase(kb, max_steps=10)
        result.derivation.validate(require_active=False)

    def test_fairness_on_terminating_run(self):
        kb = transitive_closure_kb(3)
        result = restricted_chase(kb, max_steps=100)
        assert result.derivation.check_fairness_prefix() == []

    def test_on_step_hook_sees_every_step(self):
        kb = transitive_closure_kb(3)
        seen = []
        run_chase(kb, max_steps=100, on_step=lambda s: seen.append(s.index))
        assert seen == list(range(len(seen)))
        assert len(seen) >= 2

    def test_engine_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            ChaseEngine(transitive_closure_kb(2), variant="turbo")

    def test_engine_rejects_bad_core_every(self):
        with pytest.raises(ValueError):
            ChaseEngine(transitive_closure_kb(2), core_every=0)

    def test_result_repr_mentions_status(self):
        result = restricted_chase(transitive_closure_kb(2), max_steps=50)
        assert "terminated" in repr(result)


class TestFairScheduling:
    def test_old_triggers_not_starved(self):
        # Rule A keeps producing new work; rule B is enabled from the
        # start.  Fair scheduling must apply B within a bounded number of
        # steps even though A floods the queue.
        kb = KnowledgeBase(
            parse_atoms("p(a), s(a)"),
            parse_rules(
                """
                [Flood] p(X) -> e(X, Y), p(Y)
                [Oldest] s(X) -> done(X)
                """
            ),
        )
        result = restricted_chase(kb, max_steps=10)
        names = [
            step.trigger.rule.name
            for step in result.derivation.steps
            if step.trigger is not None
        ]
        assert "Oldest" in names[:3]


class TestResume:
    def test_resume_matches_single_run(self):
        from repro.chase import ChaseEngine

        kb = fes_not_bts_kb()
        split = ChaseEngine(kb, variant=ChaseVariant.CORE)
        split.run(max_steps=3)
        resumed = split.resume(5)
        whole = ChaseEngine(kb, variant=ChaseVariant.CORE).run(max_steps=8)
        assert resumed.final_instance == whole.final_instance
        assert resumed.applications == whole.applications

    def test_resume_after_termination_is_noop(self):
        from repro.chase import ChaseEngine

        engine = ChaseEngine(transitive_closure_kb(2))
        first = engine.run(max_steps=100)
        assert first.terminated
        again = engine.resume(10)
        assert again.terminated
        assert again.applications == first.applications

    def test_resume_without_run_raises(self):
        from repro.chase import ChaseEngine

        with pytest.raises(RuntimeError):
            ChaseEngine(transitive_closure_kb(2)).resume(1)

    def test_resume_reports_whole_derivation(self):
        from repro.chase import ChaseEngine

        engine = ChaseEngine(bts_not_fes_kb())
        engine.run(max_steps=4)
        result = engine.resume(3)
        assert len(result.derivation) == 8  # initial + 7 applications
        result.derivation.validate()

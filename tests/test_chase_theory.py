"""Cross-variant theory invariants (Deutsch-Nash-Remmel / Fagin et al.,
the classical facts the paper builds on).

For a KB on which the chase terminates:

* the final instance of every variant is a **universal model**: a model
  of the KB that maps into every other variant's result;
* in particular all results are homomorphically equivalent;
* the core-chase result is (isomorphic to) the **core** of every other
  result — the unique smallest universal model;
* results are independent of scheduling (determinism aside, re-runs and
  different variants agree up to homomorphic equivalence).
"""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.engine import ChaseVariant, run_chase
from repro.kbs.generators import layered_kb
from repro.kbs.witnesses import transitive_closure_kb, weakly_acyclic_kb
from repro.logic.atoms import atom
from repro.logic.atomset import AtomSet
from repro.logic.cores import core_of, is_core
from repro.logic.homomorphism import homomorphically_equivalent, maps_into
from repro.logic.isomorphism import isomorphic
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atoms, parse_rules
from repro.logic.terms import Constant

# KBs on which *every* variant terminates (weakly acyclic / datalog);
# the fes witness terminates only under the core chase and is covered
# separately in test_witnesses.py.
TERMINATING_KBS = [
    transitive_closure_kb(3),
    weakly_acyclic_kb(),
    layered_kb(3),
    KnowledgeBase(
        parse_atoms("p(a), q(a)"),
        parse_rules(
            """
            [TwoNulls] p(X) -> e(X, Y), e(X, Z)
            [Const] q(X) -> e(X, b)
            """
        ),
        name="foldable",
    ),
]


@pytest.fixture(scope="module")
def all_results():
    results = {}
    for kb in TERMINATING_KBS:
        per_variant = {}
        for variant in ChaseVariant.ALL:
            result = run_chase(kb, variant=variant, max_steps=300)
            assert result.terminated, (kb.name, variant)
            per_variant[variant] = result.final_instance
        results[kb.name] = (kb, per_variant)
    return results


class TestUniversality:
    def test_every_result_is_a_model(self, all_results):
        for name, (kb, per_variant) in all_results.items():
            for variant, instance in per_variant.items():
                assert kb.is_model(instance), (name, variant)

    def test_all_results_hom_equivalent(self, all_results):
        for name, (kb, per_variant) in all_results.items():
            reference = per_variant[ChaseVariant.RESTRICTED]
            for variant, instance in per_variant.items():
                assert homomorphically_equivalent(reference, instance), (
                    name,
                    variant,
                )

    def test_core_result_is_core(self, all_results):
        for name, (kb, per_variant) in all_results.items():
            assert is_core(per_variant[ChaseVariant.CORE]), name

    def test_core_result_is_core_of_all_others(self, all_results):
        for name, (kb, per_variant) in all_results.items():
            core_result = per_variant[ChaseVariant.CORE]
            for variant, instance in per_variant.items():
                assert isomorphic(core_result, core_of(instance)), (
                    name,
                    variant,
                )

    def test_core_result_is_smallest(self, all_results):
        for name, (kb, per_variant) in all_results.items():
            smallest = len(per_variant[ChaseVariant.CORE])
            for variant, instance in per_variant.items():
                assert smallest <= len(instance), (name, variant)


class TestSchedulingIndependence:
    @pytest.mark.parametrize("variant", ChaseVariant.ALL)
    def test_reruns_agree(self, variant):
        kb = transitive_closure_kb(3)
        first = run_chase(kb, variant=variant, max_steps=300)
        second = run_chase(kb, variant=variant, max_steps=300)
        assert first.final_instance == second.final_instance


# ---------------------------------------------------------------------------
# property-based: random ground facts under a fixed terminating program
# ---------------------------------------------------------------------------

CONSTS = [Constant(c) for c in "abcd"]


@st.composite
def ground_edges(draw):
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(CONSTS), st.sampled_from(CONSTS)),
            min_size=1,
            max_size=5,
        )
    )
    return AtomSet(atom("e", u, v) for u, v in edges)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ground_edges())
def test_variants_agree_on_random_datalog_inputs(facts):
    kb = KnowledgeBase(facts, parse_rules("[T] e(X, Y), e(Y, Z) -> e(X, Z)"))
    results = {}
    for variant in ChaseVariant.ALL:
        result = run_chase(kb, variant=variant, max_steps=400)
        assert result.terminated
        results[variant] = result.final_instance
    # datalog: all variants compute the same (ground) closure
    reference = results[ChaseVariant.RESTRICTED]
    for variant, instance in results.items():
        assert instance == reference, variant


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ground_edges())
def test_existential_variants_hom_equivalent_on_random_inputs(facts):
    kb = KnowledgeBase(
        facts, parse_rules("[Wit] e(X, Y) -> w(X, W), tag(W)")
    )
    results = {}
    for variant in (ChaseVariant.SEMI_OBLIVIOUS, ChaseVariant.RESTRICTED, ChaseVariant.CORE):
        result = run_chase(kb, variant=variant, max_steps=400)
        assert result.terminated
        results[variant] = result.final_instance
    assert homomorphically_equivalent(
        results[ChaseVariant.RESTRICTED], results[ChaseVariant.CORE]
    )
    assert homomorphically_equivalent(
        results[ChaseVariant.RESTRICTED], results[ChaseVariant.SEMI_OBLIVIOUS]
    )
    assert maps_into(facts, results[ChaseVariant.CORE])

"""Tests for repro.query: CQs, the model finder, and the decision race."""

import pytest

from repro.kbs.witnesses import bts_not_fes_kb, manager_kb, transitive_closure_kb
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atoms, parse_rules
from repro.logic.terms import Constant, Variable
from repro.query import (
    ConjunctiveQuery,
    boolean_cq,
    chase_entails_prefix,
    decide_entailment,
    entails_via_terminating_chase,
    find_countermodel,
    find_finite_model,
)


class TestConjunctiveQuery:
    def test_boolean_holds(self):
        q = boolean_cq("e(X, Y), e(Y, Z)")
        assert q.holds_in(parse_atoms("e(a, b), e(b, c)"))
        assert not q.holds_in(parse_atoms("e(a, b)"))

    def test_answers_enumerated(self):
        X = Variable("X")
        q = ConjunctiveQuery("e(X, Y)", answer_variables=[X])
        answers = set(q.answers(parse_atoms("e(a, b), e(b, c)")))
        assert answers == {(Constant("a"),), (Constant("b"),)}

    def test_answers_deduplicated(self):
        X = Variable("X")
        q = ConjunctiveQuery("e(X, Y)", answer_variables=[X])
        answers = list(q.answers(parse_atoms("e(a, b), e(a, c)")))
        assert answers == [(Constant("a"),)]

    def test_answer_variable_must_occur(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery("e(X, Y)", answer_variables=[Variable("Z")])

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([])

    def test_witness_is_homomorphism(self):
        q = boolean_cq("e(X, Y)")
        instance = parse_atoms("e(a, b)")
        witness = q.witness(instance)
        assert witness is not None
        assert witness.is_homomorphism(q.atoms, instance)


class TestTerminatingChaseEntailment:
    def test_entailed_on_terminating_kb(self):
        kb = transitive_closure_kb(3)
        verdict = entails_via_terminating_chase(kb, boolean_cq("e(v0, v3)"))
        assert verdict.entailed is True
        assert verdict.method == "terminating-core-chase"

    def test_non_entailed_on_terminating_kb(self):
        kb = transitive_closure_kb(3)
        verdict = entails_via_terminating_chase(kb, boolean_cq("e(v3, v0)"))
        assert verdict.entailed is False

    def test_undecided_on_divergent_kb(self):
        verdict = entails_via_terminating_chase(
            bts_not_fes_kb(), boolean_cq("r(X, X)"), max_steps=10
        )
        assert verdict.entailed is None


class TestChasePrefix:
    def test_yes_side_fires_quickly(self):
        kb = manager_kb()
        verdict = chase_entails_prefix(
            kb, boolean_cq("mgr(ann, X), mgr(X, Y)"), max_steps=20
        )
        assert verdict.entailed is True
        assert verdict.method == "chase-prefix-hit"

    def test_fixpoint_miss_is_exact_no(self):
        kb = transitive_closure_kb(2)
        verdict = chase_entails_prefix(kb, boolean_cq("e(v2, v0)"), max_steps=50)
        assert verdict.entailed is False
        assert verdict.method == "chase-fixpoint-miss"

    def test_budget_exhaustion_is_open(self):
        verdict = chase_entails_prefix(
            bts_not_fes_kb(), boolean_cq("r(X, X)"), max_steps=8
        )
        assert verdict.entailed is None


class TestModelFinder:
    def test_finds_model_of_divergent_kb(self):
        kb = bts_not_fes_kb()
        result = find_finite_model(kb, domain_budget=4)
        assert result.found
        assert kb.is_model(result.model)

    def test_model_respects_avoid(self):
        kb = bts_not_fes_kb()
        query = boolean_cq("r(X, X)")
        result = find_finite_model(kb, domain_budget=4, avoid=query)
        assert result.found
        assert not query.holds_in(result.model)

    def test_unavoidable_query_exhausts(self):
        kb = transitive_closure_kb(2)
        # e(v0, v1) is a fact: no model avoids it
        result = find_finite_model(
            kb, domain_budget=4, avoid=boolean_cq("e(v0, v1)")
        )
        assert not result.found
        assert result.exhausted

    def test_countermodel_search_deepens(self):
        kb = bts_not_fes_kb()
        result = find_countermodel(kb, boolean_cq("r(X, X)"), max_domain=5)
        assert result.found
        assert kb.is_model(result.model)


class TestDecisionRace:
    def test_entailed_query_decided_yes(self):
        kb = manager_kb()
        verdict = decide_entailment(kb, boolean_cq("mgr(ann, X)"))
        assert verdict.entailed is True

    def test_non_entailed_decided_by_countermodel(self):
        kb = bts_not_fes_kb()
        verdict = decide_entailment(
            kb, boolean_cq("r(X, X)"), chase_budget=10
        )
        assert verdict.entailed is False
        assert verdict.method == "finite-countermodel"
        assert kb.is_model(verdict.countermodel)

    def test_race_on_terminating_kb(self):
        kb = transitive_closure_kb(3)
        assert decide_entailment(kb, boolean_cq("e(v0, v3)")).entailed is True
        assert decide_entailment(kb, boolean_cq("e(v3, v0)")).entailed is False

    def test_deep_chain_query_entailed(self):
        kb = bts_not_fes_kb()
        query = boolean_cq("r(X1, X2), r(X2, X3), r(X3, X4), r(X4, X5)")
        verdict = decide_entailment(kb, query, chase_budget=20)
        assert verdict.entailed is True

    def test_mixed_query_refuted(self):
        # "some element is both source and target of r from b onward with
        # a c-labelled partner" — never derivable from the chain KB
        kb = KnowledgeBase(
            parse_atoms("r(a, b)"),
            parse_rules("[Succ] r(X, Y) -> r(Y, Z)"),
        )
        verdict = decide_entailment(kb, boolean_cq("r(X, a)"), chase_budget=10)
        assert verdict.entailed is False

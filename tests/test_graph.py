"""Tests for repro.treewidth.graph."""

from repro.treewidth.graph import Graph


def path_graph(n: int) -> Graph:
    return Graph((i, i + 1) for i in range(n - 1))


def complete_graph(n: int) -> Graph:
    g = Graph()
    g.add_clique(range(n))
    return g


class TestConstruction:
    def test_add_edge_adds_vertices(self):
        g = Graph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g
        assert g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_self_loops_ignored(self):
        g = Graph()
        g.add_edge(1, 1)
        assert 1 in g
        assert g.degree(1) == 0

    def test_add_clique(self):
        g = complete_graph(4)
        assert g.edge_count() == 6
        assert g.is_clique(range(4))

    def test_isolated_vertex(self):
        g = Graph()
        g.add_vertex("x")
        assert len(g) == 1
        assert g.degree("x") == 0

    def test_remove_vertex(self):
        g = path_graph(3)
        g.remove_vertex(1)
        assert len(g) == 2
        assert not g.has_edge(0, 2)

    def test_copy_independent(self):
        g = path_graph(3)
        clone = g.copy()
        clone.add_edge(0, 2)
        assert not g.has_edge(0, 2)

    def test_subgraph(self):
        g = complete_graph(4)
        sub = g.subgraph([0, 1, 2])
        assert len(sub) == 3
        assert sub.edge_count() == 3


class TestElimination:
    def test_eliminate_returns_degree(self):
        g = path_graph(3)
        assert g.eliminate(1) == 2
        assert g.has_edge(0, 2)  # fill edge added

    def test_eliminate_leaf(self):
        g = path_graph(3)
        assert g.eliminate(0) == 1
        assert len(g) == 2


class TestQueries:
    def test_min_degree_vertex_deterministic(self):
        g = Graph([(1, 2), (2, 3), (3, 1), (3, 4)])
        assert g.min_degree_vertex() == 4

    def test_fill_in_count(self):
        g = path_graph(3)
        assert g.fill_in_count(1) == 1
        assert g.fill_in_count(0) == 0

    def test_edges_each_once(self):
        g = complete_graph(3)
        assert len(list(g.edges())) == 3

    def test_connected_components(self):
        g = Graph([(1, 2), (3, 4)])
        g.add_vertex(5)
        components = sorted(g.connected_components(), key=lambda c: min(c))
        assert components == [frozenset({1, 2}), frozenset({3, 4}), frozenset({5})]

    def test_neighbors_frozen(self):
        g = path_graph(3)
        assert g.neighbors(1) == {0, 2}

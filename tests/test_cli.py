"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.kbs.generators import grid_instance
from repro.kbs.witnesses import manager_kb, transitive_closure_kb
from repro.logic.serialization import dump_instance, save_kb


@pytest.fixture()
def kb_file(tmp_path):
    path = tmp_path / "tc.repro"
    save_kb(transitive_closure_kb(3), path)
    return str(path)


@pytest.fixture()
def manager_file(tmp_path):
    path = tmp_path / "mgr.repro"
    save_kb(manager_kb(), path)
    return str(path)


class TestChaseCommand:
    def test_terminating_run(self, kb_file, capsys):
        code = main(["chase", kb_file, "--variant", "core", "--steps", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "terminated" in out
        assert "e(v0, v3)" in out

    def test_quiet_mode(self, kb_file, capsys):
        main(["chase", kb_file, "--quiet"])
        out = capsys.readouterr().out
        assert "e(v0, v3)" not in out
        assert out.startswith("#")

    def test_budget_exhaustion_reported(self, manager_file, capsys):
        main(["chase", manager_file, "--steps", "5"])
        assert "budget-exhausted" in capsys.readouterr().out

    def test_variant_validated(self, kb_file):
        with pytest.raises(SystemExit):
            main(["chase", kb_file, "--variant", "turbo"])


class TestEntailCommand:
    def test_entailed_returns_zero(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(ann, X)"])
        assert code == 0
        assert "ENTAILED" in capsys.readouterr().out

    def test_not_entailed_returns_one(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(X, ann)"])
        assert code == 1
        assert "NOT ENTAILED" in capsys.readouterr().out

    def test_undecided_returns_two(self, tmp_path, capsys):
        # force undecidedness with starvation budgets on a KB whose
        # countermodels are out of reach for a 1-element domain
        from repro.kbs.staircase import staircase_kb

        path = tmp_path / "kh.repro"
        save_kb(staircase_kb(), path)
        code = main(
            [
                "entail",
                str(path),
                "f(X), c(X)",
                "--chase-budget",
                "1",
                "--model-budget",
                "1",
            ]
        )
        assert code == 2
        assert "UNDECIDED" in capsys.readouterr().out


class TestClassifyCommand:
    def test_reports_all_criteria(self, kb_file, capsys):
        code = main(["classify", kb_file])
        out = capsys.readouterr().out
        assert code == 0
        for needle in ("weakly acyclic", "guarded", "rule-acyclic", "fes"):
            assert needle in out

    def test_fes_certificate_shown(self, kb_file, capsys):
        main(["classify", kb_file])
        assert "core chase terminated" in capsys.readouterr().out


class TestTreewidthCommand:
    def test_grid_width(self, tmp_path, capsys):
        path = tmp_path / "grid.atoms"
        path.write_text(dump_instance(grid_instance(3)))
        code = main(["treewidth", str(path)])
        assert code == 0
        assert "treewidth: 3" in capsys.readouterr().out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert "chase" in parser.format_help()

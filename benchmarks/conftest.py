"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment bench (``bench_fig*`` / ``bench_prop*`` / ``bench_thm*``)
regenerates one figure or proposition of the paper: it measures the
relevant computation with pytest-benchmark, prints the series/verdicts
the paper reports, asserts the expected *shape*, and archives the table
under ``benchmarks/results/`` (the source of EXPERIMENTS.md numbers).

Run with::

    pytest benchmarks/ --benchmark-only            # timings + assertions
    pytest benchmarks/ --benchmark-only -s         # + live tables

Every figure's series is archived twice: human-readable
(``results/<name>.txt``) and machine-readable (``results/<name>.json``,
one record per table row with raw numbers) — the JSON twins are the
BENCH trajectory future perf PRs diff against.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import core_chase, restricted_chase
from repro.kbs.elevator import elevator_kb
from repro.kbs.staircase import staircase_kb
from repro.util import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Version of the results-JSON layout (bump when the shape changes).
RESULTS_SCHEMA = 1


def save_table(name: str, table: Table, extra: str = "") -> None:
    """Print a table and archive it (.txt + .json) under
    benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render() + (extra + "\n" if extra else "")
    print("\n" + rendered)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered)
    payload = table.to_json_payload(name=name, extra=extra)
    payload["schema"] = RESULTS_SCHEMA
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


@pytest.fixture(scope="session")
def staircase_core_run():
    """A 45-application core chase of K_h (shared by E3/E7/E8)."""
    return core_chase(staircase_kb(), max_steps=45)


@pytest.fixture(scope="session")
def staircase_restricted_run():
    """A 45-application restricted chase of K_h (E2)."""
    return restricted_chase(staircase_kb(), max_steps=45)


@pytest.fixture(scope="session")
def elevator_core_run():
    """A 35-application core chase of K_v (E6)."""
    return core_chase(elevator_kb(), max_steps=35)


@pytest.fixture(scope="session")
def elevator_restricted_run():
    """A 30-application restricted chase of K_v (E5)."""
    return restricted_chase(elevator_kb(), max_steps=30)

"""P1c — engine performance: chase throughput by variant.

Applications per second across the four variants on terminating and
diverging workloads; the core variant pays per-step core computation,
the restricted variant pays satisfaction checks, the oblivious variants
pay almost nothing — the classical trade-off from the introduction.
"""

import pytest

from repro.chase.engine import ChaseVariant, run_chase
from repro.kbs.generators import layered_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import bts_not_fes_kb, transitive_closure_kb


@pytest.mark.parametrize("variant", ChaseVariant.ALL)
def bench_terminating_datalog(benchmark, variant):
    """Transitive closure of a 5-chain under each variant."""
    kb = transitive_closure_kb(5)
    result = benchmark(lambda: run_chase(kb, variant=variant, max_steps=300))
    assert result.terminated


@pytest.mark.parametrize("variant", [ChaseVariant.RESTRICTED, ChaseVariant.CORE])
def bench_diverging_chain(benchmark, variant):
    """20 applications on the infinite-chain KB."""
    kb = bts_not_fes_kb()
    result = benchmark(lambda: run_chase(kb, variant=variant, max_steps=20))
    assert result.applications == 20


def bench_layered_existentials(benchmark):
    """A 5-layer existential cascade (weakly acyclic, terminating)."""
    kb = layered_kb(5)
    result = benchmark(lambda: run_chase(kb, variant=ChaseVariant.RESTRICTED, max_steps=100))
    assert result.terminated


def bench_staircase_core_chase_short(benchmark):
    """The headline workload: 12 core-chase applications on K_h
    (each step folds a freshly grown staircase fragment)."""
    kb = staircase_kb()
    result = benchmark.pedantic(
        lambda: run_chase(kb, variant=ChaseVariant.CORE, max_steps=12),
        rounds=2,
        iterations=1,
    )
    assert result.applications == 12

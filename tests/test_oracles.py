"""Brute-force oracle tests.

Two core algorithms are validated against exhaustive reference
implementations on tiny inputs:

* exact treewidth vs. minimization over **all** elimination orders;
* homomorphism counting vs. enumeration of **all** variable assignments.

These oracles are exponential, but on 5–6 element inputs they are
absolute ground truth — any divergence is a genuine bug in the
optimized implementations.
"""

from itertools import permutations, product

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom, Predicate
from repro.logic.atomset import AtomSet
from repro.logic.homomorphism import count_homomorphisms, find_homomorphism
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.treewidth import eliminate_in_order, treewidth_exact
from repro.treewidth.graph import Graph

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# treewidth oracle
# ---------------------------------------------------------------------------


def brute_force_treewidth(graph: Graph) -> int:
    """Minimum elimination width over all vertex orders."""
    vertices = list(graph.vertices())
    if not vertices:
        return -1
    best = len(vertices)
    for order in permutations(vertices):
        best = min(best, eliminate_in_order(graph, order))
    return best


@SETTINGS
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        min_size=1,
        max_size=9,
    )
)
def test_exact_treewidth_matches_brute_force(edges):
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    assert treewidth_exact(graph) == brute_force_treewidth(graph)


def test_exact_on_known_hard_small_graphs():
    # wheel W5: hub + 5-cycle, treewidth 3
    wheel = Graph()
    for i in range(5):
        wheel.add_edge(i, (i + 1) % 5)
        wheel.add_edge(i, "hub")
    assert treewidth_exact(wheel) == brute_force_treewidth(wheel) == 3

    # complete bipartite K_{2,3}: treewidth 2
    k23 = Graph()
    for left in ("l0", "l1"):
        for right in ("r0", "r1", "r2"):
            k23.add_edge(left, right)
    assert treewidth_exact(k23) == brute_force_treewidth(k23) == 2


# ---------------------------------------------------------------------------
# homomorphism oracle
# ---------------------------------------------------------------------------


def brute_force_homomorphism_count(source: AtomSet, target: AtomSet) -> int:
    """Enumerate every assignment of source variables to target terms."""
    variables = sorted(source.variables(), key=lambda v: v.name)
    terms = sorted(target.terms(), key=lambda t: t.name)
    if not variables:
        return 1 if all(at in target for at in source) else 0
    if not terms:
        return 0
    count = 0
    for values in product(terms, repeat=len(variables)):
        sigma = Substitution(dict(zip(variables, values)))
        if all(sigma.apply_atom(at) in target for at in source):
            count += 1
    return count


VARS = [Variable(f"O{i}") for i in range(3)]
CONSTS = [Constant(c) for c in "ab"]
PREDS = [Predicate("p", 1), Predicate("e", 2)]


@st.composite
def small_atomset(draw, pool, max_size):
    atoms = draw(
        st.lists(
            st.builds(
                lambda pred, args: Atom(pred, tuple(args[: pred.arity])),
                st.sampled_from(PREDS),
                st.lists(st.sampled_from(pool), min_size=2, max_size=2),
            ),
            min_size=1,
            max_size=max_size,
        )
    )
    return AtomSet(atoms)


@SETTINGS
@given(
    small_atomset(VARS + CONSTS, 3),
    small_atomset(CONSTS + [Constant("c")], 5),
)
def test_homomorphism_count_matches_brute_force(source, target):
    assert count_homomorphisms(source, target) == brute_force_homomorphism_count(
        source, target
    )


@SETTINGS
@given(
    small_atomset(VARS + CONSTS, 3),
    small_atomset(CONSTS + [Constant("c")], 5),
)
def test_find_agrees_with_count(source, target):
    found = find_homomorphism(source, target) is not None
    assert found == (brute_force_homomorphism_count(source, target) > 0)

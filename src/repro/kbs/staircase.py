"""The steepening staircase KB ``K_h`` (Section 6, Definition 7).

``K_h`` is the paper's first counterexample: its core chase is uniformly
treewidth-bounded by 2 (Proposition 4), yet **no** universal model of
``K_h`` has finite treewidth (Proposition 5) — every universal model
contains arbitrarily large grids.

Besides the KB itself this module provides closed-form window generators
for the structures the paper reasons about:

* ``I^h`` (Definition 8) — the infinite universal model obtained as the
  natural aggregation of the restricted chase; windows are its induced
  substructures on the first columns.
* the columns ``C^h_k``, steps ``S^h_k``, and prefixes ``P^h_k`` used in
  the proofs of Propositions 3–5;
* ``Ĩ^h`` — the infinite-column model that is *not* universal but
  satisfies exactly the entailed CQs (it is the shape of the robust
  aggregation of the core chase, Section 8's walkthrough);
* a finite *capped* model of ``K_h`` used as a homomorphism target when
  testing universality claims on finite prefixes.

Naming: the null with cartesian coordinates ``(i, j)`` (column ``i``,
row ``j``) is ``Xh_i_j``; coordinates are recoverable via
:func:`coordinates`.  Terms exist for ``0 ≤ j ≤ i + 1``.

Atoms of ``I^h`` (reconstructed from Definition 8 together with the
derivation of Proposition 3 — the typeset condition on the h-loops is
ambiguous in the source, but the rules force loops exactly on the
column-proper elements ``j ≤ i``):

* ``f(X^i_0)`` for all ``i``;
* ``c(X^i_j)`` for ``1 ≤ j ≤ i``;
* ``h(X^i_j, X^i_j)`` for ``j ≤ i``;
* ``h(X^i_j, X^{i+1}_j)`` for ``j ≤ i + 1``;
* ``v(X^i_j, X^i_{j+1})`` for ``j ≤ i``.
"""

from __future__ import annotations

from typing import Iterable

from ..logic.atoms import Atom, atom
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.parser import parse_atoms, parse_rules
from ..logic.terms import Term, Variable

__all__ = [
    "staircase_kb",
    "universal_model_window",
    "prefix",
    "column",
    "step",
    "infinite_column_model",
    "capped_model",
    "coordinates",
    "term_at",
]

_RULES_TEXT = """
# Definition 7 / Figure 2 of the paper.
[Rh1] h(X,X) -> h(X,Y), v(X,Xp), h(Xp,Yp), v(Y,Yp), c(Yp)
[Rh2] h(X,X), v(X,Xp), h(Xp,Xp), h(Xp,Yp) -> c(Yp), h(X,Y), v(Y,Yp)
[Rh3] f(X), h(X,X), h(X,Y) -> f(Y), h(Y,Y)
[Rh4] h(X,X), v(X,Xp), c(Xp) -> h(Xp,Xp)
"""

_FACTS_TEXT = "f(Xh_0_0), h(Xh_0_0, Xh_0_0)"


def staircase_kb() -> KnowledgeBase:
    """The steepening staircase KB ``K_h = (F_h, Σ_h)``."""
    return KnowledgeBase(
        parse_atoms(_FACTS_TEXT), parse_rules(_RULES_TEXT), name="steepening-staircase"
    )


def term_at(i: int, j: int) -> Variable:
    """The null ``X^i_j`` (requires ``0 ≤ j ≤ i + 1``)."""
    if i < 0 or j < 0 or j > i + 1:
        raise ValueError(f"no staircase term at column {i}, row {j}")
    return Variable(f"Xh_{i}_{j}")


def _exists(i: int, j: int) -> bool:
    return i >= 0 and 0 <= j <= i + 1


def _atoms_for_columns(max_column: int) -> Iterable[Atom]:
    """All atoms of ``I^h`` among terms with column index ≤ max_column."""
    for i in range(max_column + 1):
        yield atom("f", term_at(i, 0))
        for j in range(0, i + 2):
            if 1 <= j <= i:
                yield atom("c", term_at(i, j))
            if j <= i:
                yield atom("h", term_at(i, j), term_at(i, j))
                yield atom("v", term_at(i, j), term_at(i, j + 1))
            if i + 1 <= max_column and _exists(i + 1, j):
                yield atom("h", term_at(i, j), term_at(i + 1, j))


def universal_model_window(max_column: int) -> AtomSet:
    """The induced substructure of ``I^h`` on columns ``0..max_column``
    — the paper's ``P^h_{max_column}`` including the column tops."""
    if max_column < 0:
        raise ValueError("max_column must be >= 0")
    return AtomSet(_atoms_for_columns(max_column))


def prefix(k: int) -> AtomSet:
    """``P^h_k`` — alias of :func:`universal_model_window`."""
    return universal_model_window(k)


def column(k: int) -> AtomSet:
    """``C^h_k``: the substructure of ``I^h`` induced by the k-th column
    minus its top element (terms ``X^k_j`` with ``j ≤ k``)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    window = universal_model_window(k)
    terms = {term_at(k, j) for j in range(k + 1)}
    return window.induced(terms)


def step(k: int) -> AtomSet:
    """``S^h_k``: the substructure induced by ``C_k ∪ C_{k+1} ∪
    {X^k_{k+1}}`` — one "step" of the staircase, the repeating unit of
    the core chase (its core is ``C^h_{k+1}``)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    window = universal_model_window(k + 1)
    terms = {term_at(k, j) for j in range(k + 2)}
    terms |= {term_at(k + 1, j) for j in range(k + 2)}
    return window.induced(terms)


def infinite_column_model(height: int) -> AtomSet:
    """A height-``height`` prefix of ``Ĩ^h`` — the infinite-column model
    of Figure 2 (right): ``f`` at the bottom, an h-loop everywhere, a
    ``v``-chain upward, and ``c`` everywhere above the bottom.

    The full infinite structure is a model of ``K_h`` but *not*
    universal (its infinite v-path cannot map into ``I^h``); it is the
    shape the robust aggregation of the core chase converges to.
    """
    if height < 0:
        raise ValueError("height must be >= 0")
    rows = [Variable(f"Yh_{j}") for j in range(height + 1)]
    atoms = AtomSet()
    atoms.add(atom("f", rows[0]))
    for j, row in enumerate(rows):
        atoms.add(atom("h", row, row))
        if j >= 1:
            atoms.add(atom("c", row))
        if j + 1 <= height:
            atoms.add(atom("v", row, rows[j + 1]))
    return atoms


def capped_model(max_column: int) -> AtomSet:
    """A **finite model** of ``K_h``: a window of ``I^h`` capped with a
    saturated element ``omega``.

    ``omega`` carries every unary predicate and h/v self-loops, and every
    window term gets ``h``/``v`` edges into ``omega``, so each trigger
    that would grow the staircase beyond the window is satisfied inside
    ``omega`` instead.  The result is a model — but of course not a
    universal one (it satisfies strictly more CQs than ``K_h`` entails),
    which is exactly what makes it a useful homomorphism *target*: every
    universal (prefix) structure must map into it.
    """
    window = universal_model_window(max_column)
    omega = Variable("Omega_h")
    capped = window.copy()
    capped.add(atom("f", omega))
    capped.add(atom("c", omega))
    capped.add(atom("h", omega, omega))
    capped.add(atom("v", omega, omega))
    for term in window.terms():
        capped.add(atom("h", term, omega))
        capped.add(atom("v", term, omega))
    return capped


def coordinates(atoms: AtomSet) -> dict[Term, tuple[int, int]]:
    """Recover the cartesian coordinates of the generator-named terms of
    *atoms* (terms named ``Xh_i_j``); other terms are skipped."""
    coords: dict[Term, tuple[int, int]] = {}
    for term in atoms.terms():
        name = term.name
        if not name.startswith("Xh_"):
            continue
        try:
            _, i_text, j_text = name.split("_")
            coords[term] = (int(i_text), int(j_text))
        except ValueError:
            continue
    return coords

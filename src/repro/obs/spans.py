"""Trace contexts and spans: causal, cross-process request telemetry.

A **trace context** is the triple ``(trace_id, span_id, parent_span_id)``
minted once per accepted request and propagated — as a plain JSON-able
dict — through :class:`~repro.service.jobs.JobRequest` across the spawn
boundary into the worker, so every event any tracer emits on behalf of
that request can be stitched back into one causal timeline no matter
which process wrote it.

**Spans** are the timeline's edges: a ``span_open`` / ``span_close``
event pair (ordinary :class:`~repro.obs.tracer.JsonlTracer` events)
bracketing one lifecycle phase — the client-visible request, the shared
job it coalesced onto, each executor attempt, the retry backoff, a pool
rebuild, queue wait, snapshot load, the chase itself.  While a span is
open it is the **ambient context** (a :class:`~contextvars.ContextVar`,
so concurrent asyncio tasks and executor callback threads each see their
own), and :meth:`JsonlTracer.emit` stamps ``trace_id`` / ``span_id``
onto every event emitted under it — engine steps, homomorphism
searches, snapshot accesses all land inside the right span for free.

Everything here preserves the observer-off contract: with no observer
installed, :func:`span` yields ``None`` without minting ids, taking a
clock reading, or touching the context variable.

The second half of the module is the offline/live analysis shared by
``repro trace``, ``repro top``, the server's ``stats`` op and the chaos
benchmark: merging per-process trace files on the wall clock
(:func:`read_trace_dir`), rebuilding one trace's span tree
(:func:`build_trace` / :func:`render_trace`), and nearest-rank latency
summaries (:func:`latency_summary`, :class:`RollingLatencies`) computed
by one shared code path so the live ``stats`` op and the offline
``repro stats`` replay agree to the digit.
"""

from __future__ import annotations

import binascii
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from . import observer as _observer_state
from .observer import Observer

__all__ = [
    "TraceContext",
    "current_context",
    "activate",
    "span",
    "open_span",
    "close_span",
    "new_span_id",
    "read_trace_dir",
    "trace_ids",
    "SpanNode",
    "TraceTree",
    "build_trace",
    "trace_to_obj",
    "render_trace",
    "percentile",
    "latency_summary",
    "RollingLatencies",
]


def new_span_id() -> str:
    """A fresh 64-bit hex id (random enough to never collide in a run)."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


@dataclass(frozen=True)
class TraceContext:
    """One request's position in its trace: ``(trace, span, parent)``.

    Immutable by design — propagation mints :meth:`child` contexts
    instead of mutating, so a context captured by a closure (an executor
    retry timer, a coalesced waiter) can never be scribbled over.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    @classmethod
    def new_root(cls) -> "TraceContext":
        """Mint the root context of a brand-new trace."""
        return cls(trace_id=new_span_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A fresh context one level below this one, same trace."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
        )

    def to_obj(self) -> dict:
        """The JSON-able wire form (rides on ``JobRequest.trace``)."""
        obj = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id is not None:
            obj["parent_span_id"] = self.parent_span_id
        return obj

    @classmethod
    def from_obj(cls, obj) -> Optional["TraceContext"]:
        """Rebuild a context from its wire form; None on anything else."""
        if not isinstance(obj, dict):
            return None
        trace_id = obj.get("trace_id")
        span_id = obj.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        parent = obj.get("parent_span_id")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=parent if isinstance(parent, str) else None,
        )


#: The ambient context: per-asyncio-task and per-thread, so the server's
#: concurrent request handlers and the executor's callback threads never
#: see each other's spans.
_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    """The ambient trace context, or None outside any span."""
    return _CURRENT.get()


@contextmanager
def activate(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make *context* ambient for the duration of the ``with`` block.

    Used where a span is *not* being opened but events must still be
    stamped — e.g. the executor emitting ``service_retry`` on behalf of
    a job whose span lives on, or a worker restoring the context it was
    handed across the spawn boundary.  ``activate(None)`` is a no-op.
    """
    if context is None:
        yield None
        return
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


def open_span(
    observer: Optional[Observer],
    context: Optional[TraceContext],
    name: str,
    **attrs,
) -> None:
    """Emit a ``span_open`` for *context* through *observer* (no-op when
    either is None).  For spans whose open and close happen in different
    callbacks (the executor's attempt spans); prefer :func:`span`."""
    if observer is None or context is None:
        return
    observer.span_open(name=name, **context.to_obj(), **attrs)


def close_span(
    observer: Optional[Observer],
    context: Optional[TraceContext],
    name: str,
    status: str = "ok",
    seconds: Optional[float] = None,
    **attrs,
) -> None:
    """Emit the matching ``span_close`` (no-op when either is None)."""
    if observer is None or context is None:
        return
    if seconds is not None:
        attrs["seconds"] = seconds
    observer.span_close(name=name, status=status, **context.to_obj(), **attrs)


@contextmanager
def span(
    name: str,
    observer: Optional[Observer] = None,
    parent: Optional[TraceContext] = None,
    context: Optional[TraceContext] = None,
    **attrs,
) -> Iterator[Optional[TraceContext]]:
    """Open a span around a code block and make it ambient.

    *observer* defaults to the process-global one; when both are None
    the block runs with **zero** tracing work — no ids, no clock, no
    contextvar — preserving the observer-off cheapness contract.

    The span's context is *context* if given, else a child of *parent*,
    else a child of the ambient context, else a new trace root.  The
    ``span_close`` carries ``status`` (``"error"`` when the block
    raised; the exception propagates) and the measured ``seconds``.
    """
    obs = observer if observer is not None else _observer_state.current
    if obs is None:
        yield None
        return
    if context is None:
        base = parent if parent is not None else _CURRENT.get()
        context = base.child() if base is not None else TraceContext.new_root()
    started = time.perf_counter()
    obs.span_open(name=name, **context.to_obj(), **attrs)
    token = _CURRENT.set(context)
    status = "ok"
    try:
        yield context
    except BaseException:
        status = "error"
        raise
    finally:
        _CURRENT.reset(token)
        obs.span_close(
            name=name,
            status=status,
            seconds=round(time.perf_counter() - started, 6),
            **context.to_obj(),
        )


# ---------------------------------------------------------------------------
# timeline reconstruction (repro trace, chaos harness, tests)
# ---------------------------------------------------------------------------


def read_trace_dir(root) -> tuple[list[dict], int]:
    """Merge every ``*.jsonl`` under *root* into one wall-clock-ordered
    event list.

    This is the reader for a ``serve --trace-dir`` run directory
    (``server.jsonl`` plus one ``worker-<pid>.jsonl`` per pool worker).
    Events sort by their epoch ``ts`` (ties broken by filename and
    per-file order, so each writer's own sequence is preserved); reading
    is lenient — torn lines from a killed worker are counted, not
    fatal.  Returns ``(events, skipped)``.
    """
    from .tracer import read_trace_lenient  # local: tracer imports us

    merged: list[tuple[float, str, int, dict]] = []
    skipped = 0
    paths = sorted(str(p) for p in _jsonl_files(root))
    for path in paths:
        events, bad = read_trace_lenient(path)
        skipped += bad
        name = os.path.basename(path)
        for order, event in enumerate(events):
            ts = event.get("ts")
            key = ts if isinstance(ts, (int, float)) else 0.0
            merged.append((key, name, order, event))
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [event for (_, _, _, event) in merged], skipped


def _jsonl_files(root) -> list[str]:
    root = str(root)
    if os.path.isfile(root):
        return [root]
    try:
        names = os.listdir(root)
    except OSError:
        return []
    return [
        os.path.join(root, name)
        for name in names
        if name.endswith(".jsonl")
    ]


def trace_ids(events: Iterable[dict]) -> dict[str, int]:
    """Distinct trace ids in *events* with their event counts,
    insertion-ordered by first appearance."""
    seen: dict[str, int] = {}
    for event in events:
        tid = event.get("trace_id")
        if isinstance(tid, str):
            seen[tid] = seen.get(tid, 0) + 1
    return seen


@dataclass
class SpanNode:
    """One reconstructed span: its open/close payloads and children."""

    span_id: str
    name: str = "?"
    parent_span_id: Optional[str] = None
    trace_id: Optional[str] = None
    status: Optional[str] = None
    seconds: Optional[float] = None
    ts: Optional[float] = None
    attrs: dict = field(default_factory=dict)
    opened: bool = False
    closed: bool = False
    events: int = 0  # non-span events stamped with this span_id
    children: list["SpanNode"] = field(default_factory=list)


@dataclass
class TraceTree:
    """One trace's reconstructed span forest.

    ``roots`` are the spans with no parent inside the trace that *were*
    opened at a trace root (no ``parent_span_id`` at all); ``orphans``
    are spans whose recorded parent never appeared — the acceptance
    criterion for the serving tier is that a healthy run has none.
    ``unclosed`` lists spans opened but never closed (a crashed writer).
    """

    trace_id: str
    roots: list[SpanNode] = field(default_factory=list)
    orphans: list[SpanNode] = field(default_factory=list)
    unclosed: list[SpanNode] = field(default_factory=list)
    events: int = 0
    spans: int = 0


_SPAN_META = ("kind", "seq", "t", "ts", "name", "status", "seconds",
              "trace_id", "span_id", "parent_span_id")


def build_trace(events: Iterable[dict], trace_id: str) -> TraceTree:
    """Rebuild the span tree of *trace_id* from merged trace events."""
    nodes: dict[str, SpanNode] = {}
    tree = TraceTree(trace_id=trace_id)

    def node_for(span_id: str) -> SpanNode:
        node = nodes.get(span_id)
        if node is None:
            node = SpanNode(span_id=span_id, trace_id=trace_id)
            nodes[span_id] = node
        return node

    for event in events:
        if event.get("trace_id") != trace_id:
            continue
        tree.events += 1
        kind = event.get("kind")
        span_id = event.get("span_id")
        if not isinstance(span_id, str):
            continue
        if kind == "span_open":
            node = node_for(span_id)
            node.opened = True
            node.name = event.get("name", node.name)
            parent = event.get("parent_span_id")
            node.parent_span_id = parent if isinstance(parent, str) else None
            node.ts = event.get("ts", node.ts)
            node.attrs.update(
                {k: v for k, v in event.items() if k not in _SPAN_META}
            )
        elif kind == "span_close":
            node = node_for(span_id)
            node.closed = True
            node.name = event.get("name", node.name)
            node.status = event.get("status", node.status)
            node.seconds = event.get("seconds", node.seconds)
            parent = event.get("parent_span_id")
            if node.parent_span_id is None and isinstance(parent, str):
                node.parent_span_id = parent
            node.attrs.update(
                {k: v for k, v in event.items() if k not in _SPAN_META}
            )
        else:
            node_for(span_id).events += 1

    tree.spans = len(nodes)
    for node in nodes.values():
        if node.parent_span_id is None:
            tree.roots.append(node)
        elif node.parent_span_id in nodes:
            nodes[node.parent_span_id].children.append(node)
        else:
            tree.orphans.append(node)
        if node.opened and not node.closed:
            tree.unclosed.append(node)

    def sort_key(node: SpanNode):
        return (node.ts if node.ts is not None else 0.0, node.span_id)

    for node in nodes.values():
        node.children.sort(key=sort_key)
    tree.roots.sort(key=sort_key)
    tree.orphans.sort(key=sort_key)
    return tree


def _node_to_obj(node: SpanNode) -> dict:
    obj: dict = {
        "name": node.name,
        "span_id": node.span_id,
        "parent_span_id": node.parent_span_id,
        "status": node.status,
        "seconds": node.seconds,
        "ts": node.ts,
        "opened": node.opened,
        "closed": node.closed,
        "events": node.events,
    }
    if node.attrs:
        obj["attrs"] = node.attrs
    if node.children:
        obj["children"] = [_node_to_obj(child) for child in node.children]
    return obj


def trace_to_obj(tree: TraceTree) -> dict:
    """The JSON form of a reconstructed trace (``repro trace --format=json``)."""
    return {
        "trace_id": tree.trace_id,
        "events": tree.events,
        "spans": tree.spans,
        "roots": [_node_to_obj(node) for node in tree.roots],
        "orphans": [_node_to_obj(node) for node in tree.orphans],
        "unclosed": [node.span_id for node in tree.unclosed],
    }


def _render_node(node: SpanNode, prefix: str, last: bool, lines: list[str]) -> None:
    connector = "`- " if last else "|- "
    bits = [node.name]
    for key in ("op", "attempt", "coalesced", "wait_seconds"):
        if key in node.attrs:
            bits.append(f"{key}={node.attrs[key]}")
    if node.seconds is not None:
        bits.append(f"{node.seconds:.6f}s")
    if node.status and node.status != "ok":
        bits.append(node.status.upper())
        if "error" in node.attrs:
            bits.append(str(node.attrs["error"]))
    elif node.opened and not node.closed:
        bits.append("UNCLOSED")
    if node.events:
        bits.append(f"[{node.events} events]")
    lines.append(prefix + connector + " ".join(str(b) for b in bits))
    child_prefix = prefix + ("   " if last else "|  ")
    for index, child in enumerate(node.children):
        _render_node(child, child_prefix, index == len(node.children) - 1, lines)


def render_trace(tree: TraceTree) -> str:
    """Pretty-print one trace as an indented causal timeline."""
    lines = [
        f"trace {tree.trace_id}: {tree.spans} spans, {tree.events} events"
    ]
    for index, node in enumerate(tree.roots):
        _render_node(node, "", index == len(tree.roots) - 1, lines)
    if tree.orphans:
        lines.append(f"orphaned spans ({len(tree.orphans)}):")
        for index, node in enumerate(tree.orphans):
            _render_node(node, "", index == len(tree.orphans) - 1, lines)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# latency summaries (one code path for live stats and offline replay)
# ---------------------------------------------------------------------------


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The *q*-quantile of pre-sorted *sorted_values* (nearest-rank)."""
    if not sorted_values:
        return 0.0
    index = max(
        0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _quantile_block(values: Sequence[float]) -> dict:
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
    }


def latency_summary(
    samples: Iterable[tuple[str, bool, bool, float]],
) -> dict:
    """Per-op latency quantiles over ``(op, warm, ok, seconds)`` samples.

    For each op: ``ok`` (all successful jobs), split further into
    ``warm`` / ``cold``, and — kept strictly apart so retry-inflated and
    failed runs cannot pollute the service-level objective — ``failed``.
    Every leaf is a ``{count, mean, p50, p95, p99}`` block.
    """
    by_op: dict[str, dict[str, list[float]]] = {}
    for op, warm, ok, seconds in samples:
        groups = by_op.setdefault(
            op, {"warm": [], "cold": [], "failed": []}
        )
        if not ok:
            groups["failed"].append(seconds)
        elif warm:
            groups["warm"].append(seconds)
        else:
            groups["cold"].append(seconds)
    out: dict[str, dict] = {}
    for op in sorted(by_op):
        groups = by_op[op]
        entry: dict = {}
        ok_all = groups["warm"] + groups["cold"]
        for label, values in (
            ("ok", ok_all),
            ("warm", groups["warm"]),
            ("cold", groups["cold"]),
            ("failed", groups["failed"]),
        ):
            if values:
                entry[label] = _quantile_block(values)
        out[op] = entry
    return out


class RollingLatencies:
    """A thread-safe rolling window of the last *capacity* job latencies.

    The server records every finished job here and the ``stats`` op
    reports :meth:`summary` — the same :func:`latency_summary` the
    offline ``repro stats`` replay computes from ``service_job`` events,
    so live and offline percentiles agree within rounding by
    construction.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._samples: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, op: str, warm: bool, ok: bool, seconds: float) -> None:
        with self._lock:
            self._samples.append((op, warm, ok, seconds))

    def summary(self) -> dict:
        with self._lock:
            samples = list(self._samples)
        return latency_summary(samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

"""Rule-set analysis: syntactic termination/boundedness criteria (weak
acyclicity, guardedness, linearity), decision procedures for the linear
fragment, breadth-level k-boundedness probing, the structural-measure
machinery of Section 5 with budgeted empirical classifiers, and the
verdict → strategy planner that routes the serving tier."""

from .classes import (
    SIZE,
    TERM_COUNT,
    TREEWIDTH,
    ChaseProfile,
    StructuralMeasure,
    certify_fes,
    fes_certificate,
    is_recurringly_bounded_prefix,
    is_uniformly_bounded,
    profile_chase,
    recurring_bound_estimate,
    uniform_bound,
)
from .kbound import BreadthProbe, probe_k_bound
from .linearity import is_linear, is_linear_rule, linear_chase_terminates
from .planner import (
    STRATEGY_NAMES,
    Planner,
    Strategy,
    Verdict,
    default_planner,
    plan,
    ruleset_fingerprint,
)
from .guardedness import (
    guard_atom,
    is_frontier_guarded,
    is_frontier_guarded_rule,
    is_guarded,
    is_guarded_rule,
)
from .sticky import is_sticky, sticky_marking
from .summary import RulesetReport, analyze_ruleset
from .rule_dependencies import (
    atoms_may_unify,
    is_rule_acyclic,
    rule_dependency_edges,
    rule_depends_on,
    rule_strata,
)
from .positions import Position, positions_of_ruleset, variable_positions
from .weak_acyclicity import DependencyGraph, dependency_graph, is_weakly_acyclic

__all__ = [
    "BreadthProbe",
    "RulesetReport",
    "SIZE",
    "STRATEGY_NAMES",
    "TERM_COUNT",
    "TREEWIDTH",
    "ChaseProfile",
    "DependencyGraph",
    "Planner",
    "Position",
    "Strategy",
    "StructuralMeasure",
    "Verdict",
    "analyze_ruleset",
    "atoms_may_unify",
    "certify_fes",
    "default_planner",
    "dependency_graph",
    "fes_certificate",
    "guard_atom",
    "is_frontier_guarded",
    "is_frontier_guarded_rule",
    "is_guarded",
    "is_guarded_rule",
    "is_linear",
    "is_linear_rule",
    "is_recurringly_bounded_prefix",
    "is_uniformly_bounded",
    "is_rule_acyclic",
    "is_sticky",
    "is_weakly_acyclic",
    "linear_chase_terminates",
    "plan",
    "positions_of_ruleset",
    "probe_k_bound",
    "rule_dependency_edges",
    "rule_depends_on",
    "rule_strata",
    "ruleset_fingerprint",
    "sticky_marking",
    "profile_chase",
    "recurring_bound_estimate",
    "uniform_bound",
    "variable_positions",
]

"""Tests for repro.util: orders, reporting tables, ASCII rendering."""

import pytest

from repro.kbs import elevator as el
from repro.kbs import staircase as sc
from repro.logic.terms import Variable
from repro.util.orders import (
    coordinate_row_major_order,
    creation_rank_order,
    name_order,
)
from repro.util.render import render_coordinates
from repro.util.reporting import Table, banner


class TestOrders:
    def test_creation_rank_orders_by_age(self):
        older = Variable("OrderTestOlder_1")
        newer = Variable("OrderTestNewer_2")
        assert creation_rank_order(older) < creation_rank_order(newer)

    def test_name_order(self):
        assert name_order(Variable("A")) < name_order(Variable("B"))

    def test_coordinate_row_major(self):
        coords = {
            Variable("CA"): (0, 0),
            Variable("CB"): (1, 0),
            Variable("CC"): (0, 1),
        }
        key = coordinate_row_major_order(coords)
        # row 0 before row 1; within a row, smaller column first
        assert key(Variable("CA")) < key(Variable("CB"))
        assert key(Variable("CB")) < key(Variable("CC"))

    def test_uncoordinated_variables_sort_last(self):
        coords = {Variable("CA"): (5, 5)}
        key = coordinate_row_major_order(coords)
        assert key(Variable("CA")) < key(Variable("Unplaced"))


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], title="demo")
        table.add_row("a", 1)
        table.add_row("long-name", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert "long-name" in rendered
        # all data lines equally wide header separation
        assert lines[2].startswith("-")

    def test_row_length_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_bool_and_float_rendering(self):
        table = Table(["x"])
        table.add_row(True)
        table.add_row(1.23456)
        rendered = table.render()
        assert "yes" in rendered
        assert "1.235" in rendered

    def test_csv(self):
        table = Table(["a", "b"])
        table.add_row(1, 2)
        assert table.to_csv() == "a,b\n1,2\n"

    def test_banner(self):
        assert "hello" in banner("hello")


class TestRender:
    def test_staircase_rendering_shape(self):
        window = sc.universal_model_window(3)
        art = render_coordinates(window, sc.coordinates(window))
        lines = art.splitlines()
        # bottom row is the floor: all f-marked
        assert set(lines[-1]) == {"F"}
        # ceilings appear above
        assert any("C" in line for line in lines[:-1])

    def test_elevator_rendering_shape(self):
        window = el.universal_model_window(3)
        art = render_coordinates(window, el.coordinates(window))
        assert "@" in art or "F" in art

    def test_empty_rendering(self):
        from repro.logic.atomset import AtomSet

        assert "no coordinated terms" in render_coordinates(AtomSet(), {})

"""Ontology-mediated query answering over a guarded ontology.

Run with::

    python examples/ontology_qa.py

The practical setting the paper's introduction motivates: a guarded
ontology whose chase never terminates, queried through the decidability
machinery anyway.  The pipeline:

1. syntactic analysis certifies the ontology guarded (hence bts: every
   restricted chase sequence is treewidth-bounded and CQ entailment is
   decidable — Definition 6 / Proposition 2);
2. the measured restricted-chase treewidth profile confirms the bound
   empirically;
3. Boolean queries are decided by the Theorem-1 race;
4. certain answers are computed for a free-variable query.
"""

from repro import treewidth
from repro.analysis import (
    TREEWIDTH,
    certify_fes,
    is_guarded,
    is_sticky,
    is_weakly_acyclic,
    profile_chase,
)
from repro.chase.engine import ChaseVariant
from repro.kbs.ontology import academia_kb
from repro.logic.terms import Variable
from repro.query import ConjunctiveQuery, boolean_cq, certain_answers, decide_entailment
from repro.util import Table, banner


def main() -> None:
    kb = academia_kb()
    print(banner("The academia ontology (guarded existential rules)"))
    print(kb)

    print(banner("1. Syntactic analysis"))
    print("guarded:          ", is_guarded(kb.rules), " => bts => decidable CQs")
    print("weakly acyclic:   ", is_weakly_acyclic(kb.rules))
    print("sticky:           ", is_sticky(kb.rules))
    print(
        "fes certificate:  ",
        certify_fes(kb, max_steps=60) or "none (mentor chains never close)",
    )

    print(banner("2. Chase treewidth profile (bts, empirically)"))
    profile = profile_chase(
        kb, variant=ChaseVariant.RESTRICTED, measure=TREEWIDTH, max_steps=25
    )
    print(
        f"restricted chase, {profile.applications} applications: "
        f"treewidth per step max = {profile.uniform} (bounded, as guardedness promises)"
    )

    print(banner("3. Boolean queries through the decision race"))
    queries = [
        ("someone mentors a course teacher",
         "mentor(X, Y), teaches(X, C)", True),
        ("kleene has a supervisor with a department",
         "supervises(X, kleene), memberOf(X, D)", True),
        ("some phd supervises a professor",
         "phd(X), supervises(X, Y), prof(Y)", False),
    ]
    table = Table(["query", "expected", "verdict", "method"])
    for label, text, expected in queries:
        verdict = decide_entailment(kb, boolean_cq(text), chase_budget=40)
        table.add_row(label, expected, verdict.entailed, verdict.method)
    table.print()

    print(banner("4. Certain answers"))
    X = Variable("X")
    query = ConjunctiveQuery(
        "teaches(X, C), memberOf(X, D)",
        answer_variables=[X],
        name="teaching-staff-with-dept",
    )
    verdicts = certain_answers(kb, query, chase_budget=40)
    certain = sorted(k[0].name for k, v in verdicts.items() if v)
    print("teachers with a department (certain):", ", ".join(certain))


if __name__ == "__main__":
    main()

"""Indexed atomsets (instances).

An *atomset* is a countable set of atoms (Section 2 of the paper); a
finite atomset doubles as a database *instance* and as the body/head of a
rule or a Boolean conjunctive query.  :class:`AtomSet` is the one mutable
container of the library; everything else (atoms, terms, substitutions,
rules) is immutable.

Three incremental indexes are maintained:

* by predicate — the candidate pool for homomorphism backtracking and
  trigger enumeration;
* by term — needed to delete all atoms involving a null, to compute
  induced substructures, and to build Gaifman graphs;
* by (predicate, position, term) — the selective candidate pool of the
  indexed homomorphism engine: once an argument of a pattern atom is
  decided, only target atoms carrying that image *at that position* can
  match, a strictly tighter pool than the term index gives.

On top of the indexes a *fingerprint* — an order-independent combination
of the atom hashes, maintained in O(1) per mutation — summarizes the
current contents; it keys the homomorphism memo cache
(:mod:`repro.logic.homcache`).

Instances compare equal iff they contain the same atoms, regardless of
insertion order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Union

from .atoms import Atom, Predicate
from .terms import Constant, Term, Variable

if TYPE_CHECKING:  # pragma: no cover
    from .substitution import Substitution

__all__ = ["AtomSet"]


class AtomSet:
    """A finite set of atoms with predicate and term indexes.

    Parameters
    ----------
    atoms:
        Initial atoms (any iterable; duplicates collapse).
    """

    __slots__ = (
        "_atoms",
        "_by_predicate",
        "_by_term",
        "_by_position",
        "_fp_xor",
        "_fp_sum",
        "_compiled",
        "_sorted",
    )

    #: Mask keeping the incremental fingerprint sum in one machine word.
    _FP_MASK = (1 << 64) - 1

    def __init__(self, atoms: Iterable[Atom] = ()):
        self._atoms: set[Atom] = set()
        self._by_predicate: dict[Predicate, set[Atom]] = {}
        self._by_term: dict[Term, set[Atom]] = {}
        self._by_position: dict[tuple[Predicate, int, Term], set[Atom]] = {}
        self._fp_xor: int = 0
        self._fp_sum: int = 0
        #: Lazily attached compiled view (repro.logic.compiled.relations);
        #: None until a compiled search first touches this atomset.
        self._compiled = None
        #: Cached result of :meth:`sorted_atoms`, dropped on mutation.
        self._sorted = None
        for at in atoms:
            self.add(at)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------

    def add(self, at: Atom) -> bool:
        """Insert *at*; return True iff it was not already present."""
        if not isinstance(at, Atom):
            raise TypeError(f"expected Atom, got {at!r}")
        if at in self._atoms:
            return False
        self._atoms.add(at)
        self._by_predicate.setdefault(at.predicate, set()).add(at)
        for term in at.term_set():
            self._by_term.setdefault(term, set()).add(at)
        for position, term in enumerate(at.args):
            self._by_position.setdefault(
                (at.predicate, position, term), set()
            ).add(at)
        h = at._hash
        self._fp_xor ^= h
        self._fp_sum = (self._fp_sum + h) & AtomSet._FP_MASK
        if self._compiled is not None:
            self._compiled.add(at)
        self._sorted = None
        return True

    def update(self, atoms: Iterable[Atom]) -> int:
        """Insert many atoms; return how many were new."""
        added = 0
        for at in atoms:
            if self.add(at):
                added += 1
        return added

    def discard(self, at: Atom) -> bool:
        """Remove *at* if present; return True iff it was present."""
        if at not in self._atoms:
            return False
        self._atoms.remove(at)
        bucket = self._by_predicate[at.predicate]
        bucket.remove(at)
        if not bucket:
            del self._by_predicate[at.predicate]
        for term in at.term_set():
            bucket = self._by_term[term]
            bucket.remove(at)
            if not bucket:
                del self._by_term[term]
        for position, term in enumerate(at.args):
            key = (at.predicate, position, term)
            bucket = self._by_position[key]
            bucket.remove(at)
            if not bucket:
                del self._by_position[key]
        h = at._hash
        self._fp_xor ^= h
        self._fp_sum = (self._fp_sum - h) & AtomSet._FP_MASK
        if self._compiled is not None:
            self._compiled.discard(at)
        self._sorted = None
        return True

    def remove_term(self, term: Term) -> int:
        """Remove every atom mentioning *term*; return how many."""
        doomed = list(self._by_term.get(term, ()))
        for at in doomed:
            self.discard(at)
        return len(doomed)

    def __contains__(self, at: object) -> bool:
        return at in self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __bool__(self) -> bool:
        return bool(self._atoms)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AtomSet):
            return self._atoms == other._atoms
        if isinstance(other, (set, frozenset)):
            return self._atoms == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]  # mutable container

    def __le__(self, other: "AtomSet") -> bool:
        """Subset test ``A ⊆ B``."""
        return self._atoms <= _atom_view(other)

    def __lt__(self, other: "AtomSet") -> bool:
        return self._atoms < _atom_view(other)

    def __ge__(self, other: "AtomSet") -> bool:
        return self._atoms >= _atom_view(other)

    def __gt__(self, other: "AtomSet") -> bool:
        return self._atoms > _atom_view(other)

    def issubset(self, other: Union["AtomSet", set, frozenset]) -> bool:
        """``A ⊆ B`` (Fact 1 of the paper makes this the key relation for
        treewidth monotonicity)."""
        return self._atoms <= _atom_view(other)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def atoms(self) -> frozenset[Atom]:
        """A frozen snapshot of the atoms."""
        return frozenset(self._atoms)

    def sorted_atoms(self) -> list[Atom]:
        """The atoms in the deterministic order of :meth:`Atom.sort_key`.

        The order is cached until the next mutation — homomorphism
        searches sort their source on every call, and re-sorting an
        unchanged instance used to show up in core-chase profiles.  A
        fresh list is returned each time (callers mutate their copies).
        """
        cached = self._sorted
        if cached is None:
            cached = self._sorted = sorted(self._atoms)
        return list(cached)

    def predicates(self) -> frozenset[Predicate]:
        """All predicates with at least one atom."""
        return frozenset(self._by_predicate)

    def with_predicate(self, predicate: Predicate) -> frozenset[Atom]:
        """All atoms over *predicate* (the homomorphism candidate pool)."""
        return frozenset(self._by_predicate.get(predicate, frozenset()))

    def count_with_predicate(self, predicate: Predicate) -> int:
        """Number of atoms over *predicate*."""
        return len(self._by_predicate.get(predicate, ()))

    def containing(self, term: Term) -> frozenset[Atom]:
        """All atoms whose argument list mentions *term*."""
        return frozenset(self._by_term.get(term, frozenset()))

    def with_predicate_position(
        self, predicate: Predicate, position: int, term: Term
    ) -> frozenset[Atom]:
        """All atoms over *predicate* carrying *term* at *position* —
        the selective candidate pool of the indexed homomorphism engine."""
        return frozenset(
            self._by_position.get((predicate, position, term), frozenset())
        )

    def fingerprint(self) -> tuple[int, int, int]:
        """An order-independent summary of the current contents.

        Equal atomsets always share the fingerprint (it is a function of
        the set of atom hashes); distinct atomsets collide only if their
        atom-hash multisets agree under both XOR and 64-bit sum, which is
        what makes the fingerprint usable as a memo-cache key
        (:mod:`repro.logic.homcache`).  Maintained incrementally, so
        reading it costs O(1).
        """
        return (len(self._atoms), self._fp_xor, self._fp_sum)

    _EMPTY: frozenset = frozenset()

    def _containing_raw(self, term: Term) -> set[Atom]:
        """Internal no-copy view of the term index (do not mutate)."""
        return self._by_term.get(term, AtomSet._EMPTY)  # type: ignore[return-value]

    def _with_predicate_raw(self, predicate: Predicate) -> set[Atom]:
        """Internal no-copy view of the predicate index (do not mutate)."""
        return self._by_predicate.get(predicate, AtomSet._EMPTY)  # type: ignore[return-value]

    def _with_position_raw(
        self, predicate: Predicate, position: int, term: Term
    ) -> set[Atom]:
        """Internal no-copy view of the positional index (do not mutate)."""
        return self._by_position.get(
            (predicate, position, term), AtomSet._EMPTY
        )  # type: ignore[return-value]

    def terms(self) -> frozenset[Term]:
        """``terms(A)`` — all terms occurring in the atomset."""
        return frozenset(self._by_term)

    def variables(self) -> frozenset[Variable]:
        """``vars(A)`` — all variables (labeled nulls) occurring."""
        return frozenset(t for t in self._by_term if isinstance(t, Variable))

    def constants(self) -> frozenset[Constant]:
        """All constants occurring."""
        return frozenset(t for t in self._by_term if isinstance(t, Constant))

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------

    def copy(self) -> "AtomSet":
        """An independent copy.  Indexes are copied container-by-container
        (C-level set/dict copies) rather than rebuilt atom-by-atom, and an
        attached compiled view is cloned the same way — the chase
        snapshots its instance every step, so copy cost is on the
        per-application path of every engine."""
        new = AtomSet.__new__(AtomSet)
        new._atoms = set(self._atoms)
        new._by_predicate = {
            pred: set(bucket) for pred, bucket in self._by_predicate.items()
        }
        new._by_term = {term: set(bucket) for term, bucket in self._by_term.items()}
        new._by_position = {
            key: set(bucket) for key, bucket in self._by_position.items()
        }
        new._fp_xor = self._fp_xor
        new._fp_sum = self._fp_sum
        new._compiled = (
            self._compiled.clone() if self._compiled is not None else None
        )
        new._sorted = self._sorted
        return new

    def union(self, *others: Union["AtomSet", Iterable[Atom]]) -> "AtomSet":
        """A new atomset containing this one and all *others*."""
        result = self.copy()
        for other in others:
            result.update(other)
        return result

    def intersection(self, other: Union["AtomSet", Iterable[Atom]]) -> "AtomSet":
        """A new atomset with the atoms common to both."""
        other_atoms = _atom_view(other)
        return AtomSet(at for at in self._atoms if at in other_atoms)

    def difference(self, other: Union["AtomSet", Iterable[Atom]]) -> "AtomSet":
        """A new atomset with the atoms of self not in *other*."""
        other_atoms = _atom_view(other)
        return AtomSet(at for at in self._atoms if at not in other_atoms)

    def induced(self, terms: Iterable[Term]) -> "AtomSet":
        """The substructure induced by a set of terms: all atoms whose
        terms are *all* drawn from the given set.

        This is the operation behind the paper's window constructions
        (``P^h_k``, ``C^h_k``, ``S^h_k`` in Section 6 and the elevator
        family ``I^v_n`` in Section 7 before its extra pruning).
        """
        keep = set(terms)
        return AtomSet(
            at for at in self._atoms if all(t in keep for t in at.term_set())
        )

    def apply(self, substitution: "Substitution") -> "AtomSet":
        """``σ(A)``: a new atomset with the substitution applied."""
        return AtomSet(substitution.apply_atom(at) for at in self._atoms)

    def restrict_predicates(self, predicates: Iterable[Predicate]) -> "AtomSet":
        """A new atomset keeping only atoms over the given predicates."""
        wanted = set(predicates)
        return AtomSet(
            at
            for pred, bucket in self._by_predicate.items()
            if pred in wanted
            for at in bucket
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def predicate_histogram(self) -> dict[str, int]:
        """Mapping ``predicate name -> atom count`` (for experiment logs)."""
        return {
            str(pred): len(bucket)
            for pred, bucket in sorted(
                self._by_predicate.items(), key=lambda item: item[0]
            )
        }

    def __repr__(self) -> str:
        return f"AtomSet({len(self._atoms)} atoms, {len(self._by_term)} terms)"

    def __str__(self) -> str:
        return "{" + ", ".join(str(a) for a in self.sorted_atoms()) + "}"


def _atom_view(value: Union[AtomSet, set, frozenset, Iterable[Atom]]) -> set:
    """Normalize *value* to a set of atoms for set-algebra helpers."""
    if isinstance(value, AtomSet):
        return value._atoms
    if isinstance(value, (set, frozenset)):
        return value  # type: ignore[return-value]
    return set(value)

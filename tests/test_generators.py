"""Tests for repro.kbs.generators (the synthetic workload substrate)."""

import pytest

from repro.chase import restricted_chase
from repro.kbs.generators import (
    cycle_instance,
    grid_instance,
    layered_kb,
    path_instance,
    path_with_shortcut,
    random_instance,
    star_instance,
)
from repro.logic.cores import core_of
from repro.treewidth import treewidth


class TestInstances:
    def test_path_sizes(self):
        atoms = path_instance(5)
        assert len(atoms) == 5
        assert len(atoms.terms()) == 6

    def test_path_constant_vs_null_nodes(self):
        assert not path_instance(3).variables()
        assert path_instance(3, null_nodes=True).variables()

    def test_cycle(self):
        atoms = cycle_instance(4)
        assert len(atoms) == 4
        assert len(atoms.terms()) == 4

    def test_grid_treewidth(self):
        assert treewidth(grid_instance(3)) == 3

    def test_grid_of_one(self):
        atoms = grid_instance(1)
        assert len(atoms.terms()) == 1

    def test_star(self):
        atoms = star_instance(4)
        assert len(atoms) == 4
        assert len(core_of(atoms)) == 1

    def test_random_deterministic(self):
        assert random_instance(20, 8, seed=7) == random_instance(20, 8, seed=7)

    def test_random_size(self):
        atoms = random_instance(25, 10, seed=1)
        assert len(atoms) == 25
        assert len(atoms.terms()) <= 10

    def test_path_with_shortcut_core(self):
        atoms = path_with_shortcut(4)
        core = core_of(atoms)
        assert len(core) == 4  # the constant path
        assert not core.variables()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            path_instance(0)
        with pytest.raises(ValueError):
            grid_instance(0)
        with pytest.raises(ValueError):
            star_instance(0)
        with pytest.raises(ValueError):
            path_with_shortcut(1)


class TestLayeredKb:
    def test_terminates_with_expected_depth(self):
        kb = layered_kb(3)
        result = restricted_chase(kb, max_steps=100)
        assert result.terminated
        assert result.applications == 3

    def test_fanout_multiplies_rules(self):
        kb = layered_kb(2, fanout=3)
        assert len(kb.rules) == 6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            layered_kb(0)
        with pytest.raises(ValueError):
            layered_kb(1, fanout=0)

"""Isomorphisms between atomsets.

An isomorphism from ``A`` to ``B`` is a bijective homomorphism whose
inverse is a homomorphism from ``B`` to ``A`` (Section 2).  For atomsets
(relational structures given as sets of atoms) an injective term mapping
``h`` with ``h(A) = B`` is exactly such an isomorphism, which is what the
search below looks for.

The module also provides a cheap *invariant fingerprint* used to refute
isomorphism without search, and a canonical labelling for hashing small
atomsets up to isomorphism (used by chase-termination detection for the
semi-oblivious variant and by test assertions).
"""

from __future__ import annotations

from typing import Optional

from .atomset import AtomSet
from .homomorphism import homomorphisms
from .substitution import Substitution
from .terms import Constant, Term, Variable

__all__ = [
    "find_isomorphism",
    "isomorphic",
    "automorphisms",
    "invariant_fingerprint",
    "canonical_form",
]


def invariant_fingerprint(atoms: AtomSet) -> tuple:
    """An isomorphism-invariant fingerprint of an atomset.

    Isomorphic atomsets share the fingerprint; the converse does not hold,
    so this is only a refutation filter.  Components: atom count, term and
    variable counts, per-predicate atom counts, the multiset of constants
    (constants are rigid), and the sorted multiset of per-term incidence
    signatures (for each term: the multiset of ``(predicate, position)``
    slots it fills).
    """
    incidence: dict[Term, list[tuple[str, int, int]]] = {}
    for at in atoms:
        for position, term in enumerate(at.args):
            incidence.setdefault(term, []).append(
                (at.predicate.name, at.predicate.arity, position)
            )
    signatures = sorted(
        (
            isinstance(term, Constant) and term.name or "",
            tuple(sorted(slots)),
        )
        for term, slots in incidence.items()
    )
    histogram = tuple(sorted(atoms.predicate_histogram().items()))
    return (
        len(atoms),
        len(atoms.terms()),
        len(atoms.variables()),
        histogram,
        tuple(signatures),
    )


def find_isomorphism(left: AtomSet, right: AtomSet) -> Optional[Substitution]:
    """Return an isomorphism from *left* to *right*, or None.

    Strategy: refute with the invariant fingerprint, then search for an
    injective homomorphism.  Because the term mapping is injective and the
    atomsets have equal cardinality, the induced atom mapping is an
    injection between equinumerous finite sets, hence a bijection with
    ``h(left) = right``; its inverse is then automatically a homomorphism.
    """
    if invariant_fingerprint(left) != invariant_fingerprint(right):
        return None
    for hom in homomorphisms(left, right, injective=True):
        # Injectivity on terms makes the atom map injective; with equal
        # atom counts the image covers right entirely.
        return hom
    return None


def isomorphic(left: AtomSet, right: AtomSet) -> bool:
    """True iff the two atomsets are isomorphic."""
    return find_isomorphism(left, right) is not None


def automorphisms(atoms: AtomSet):
    """Iterate over all automorphisms of *atoms*.

    On a finite core every endomorphism is an automorphism, so this
    iterator enumerates exactly the endomorphisms there (a fact the core
    machinery exploits when folding endomorphisms to retractions).
    """
    yield from homomorphisms(atoms, atoms, injective=True)


def canonical_form(atoms: AtomSet) -> tuple:
    """A canonical, hashable form of an atomset: equal for isomorphic
    atomsets, distinct otherwise.

    The labelling is computed by trying, in a deterministic order, every
    assignment of canonical indexes to variables compatible with a greedy
    refinement of the incidence signatures, and picking the
    lexicographically least resulting atom tuple.  Exponential in the
    worst case, intended for the small structures in tests and
    termination caches.
    """
    variables = sorted(
        atoms.variables(), key=lambda v: _variable_signature(atoms, v)
    )
    best: Optional[tuple] = None
    used = [False] * len(variables)
    labels: dict[Variable, int] = {}

    grouped: dict[tuple, list[Variable]] = {}
    for var in variables:
        grouped.setdefault(_variable_signature(atoms, var), []).append(var)

    def render() -> tuple:
        rendered = []
        for at in atoms:
            args = tuple(
                ("c", t.name) if isinstance(t, Constant) else ("v", labels[t])
                for t in at.args
            )
            rendered.append((at.predicate.name, at.predicate.arity, args))
        return tuple(sorted(rendered))

    def assign(groups: list[list[Variable]], next_label: int) -> None:
        nonlocal best
        if not groups:
            candidate = render()
            if best is None or candidate < best:
                best = candidate
            return
        head, *rest = groups
        if not head:
            assign(rest, next_label)
            return
        for index, var in enumerate(head):
            remaining = head[:index] + head[index + 1 :]
            labels[var] = next_label
            assign([remaining] + rest, next_label + 1)
            del labels[var]

    ordered_groups = [grouped[key] for key in sorted(grouped)]
    assign(ordered_groups, 0)
    assert best is not None or not variables
    if best is None:
        best = tuple(
            sorted(
                (at.predicate.name, at.predicate.arity, tuple(("c", t.name) for t in at.args))
                for at in atoms
            )
        )
    return best


def _variable_signature(atoms: AtomSet, var: Variable) -> tuple:
    """The incidence signature of a variable (isomorphism-invariant)."""
    slots = sorted(
        (at.predicate.name, at.predicate.arity, position)
        for at in atoms.containing(var)
        for position, term in enumerate(at.args)
        if term == var
    )
    return tuple(slots)

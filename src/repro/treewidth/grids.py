"""Grid containment (Definition 5) and the grid lower bound (Fact 2).

An atomset *contains an n × n grid* when it has n² distinct terms
``t^i_j`` such that vertically and horizontally consecutive ones co-occur
in an atom.  Fact 2 then gives ``tw(A) ≥ n`` — this is exactly the lower
bound technique of the paper's Propositions 5 and 8(2), and both
counterexample KBs are engineered around it.

Two detection modes are provided:

* :func:`contains_grid` — generic backtracking subgraph search on the
  co-occurrence (Gaifman) graph; exponential, fine for small ``n``;
* :func:`grid_from_coordinates` — when the caller knows term coordinates
  (our generators for ``I^h`` and ``I^v_n`` do), verify the Definition 5
  conditions directly for an explicitly proposed witness; linear time.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.terms import Term
from .gaifman import gaifman_graph

__all__ = [
    "contains_grid",
    "find_grid",
    "grid_lower_bound",
    "grid_from_coordinates",
]

AtomsLike = Union[AtomSet, Iterable[Atom]]


def find_grid(
    atoms: AtomsLike, n: int, node_budget: int = 2_000_000
) -> Optional[list[list[Term]]]:
    """Search for an n × n grid witness in *atoms*.

    Returns the witness matrix ``[[t^1_1 ... t^1_n], ...]`` (row i = the
    terms with first index i) or None.  Rows are filled in row-major
    order; each new term must co-occur with its left and upper neighbor
    and must be distinct from all previously placed terms.  Pattern
    degrees prune candidates (an interior grid vertex needs Gaifman
    degree ≥ 4).
    """
    if n <= 0:
        raise ValueError("grid size must be positive")
    graph = gaifman_graph(atoms)
    if len(graph) < n * n:
        return None
    if n == 1:
        for vertex in sorted(graph.vertices(), key=repr):
            return [[vertex]]
        return None

    def needed_degree(i: int, j: int) -> int:
        return (2 if 0 < i < n - 1 else 1) + (2 if 0 < j < n - 1 else 1)

    vertices = sorted(graph.vertices(), key=repr)
    placed: list[Term] = []
    used: set[Term] = set()
    budget = [node_budget]

    def candidates(i: int, j: int) -> Iterable[Term]:
        if i == 0 and j == 0:
            return vertices
        pools = []
        if j > 0:
            pools.append(graph.neighbors(placed[i * n + j - 1]))
        if i > 0:
            pools.append(graph.neighbors(placed[(i - 1) * n + j]))
        pool = pools[0]
        for extra in pools[1:]:
            pool = pool & extra
        return sorted(pool, key=repr)

    def place(position: int) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        if position == n * n:
            return True
        i, j = divmod(position, n)
        need = needed_degree(i, j)
        for vertex in candidates(i, j):
            if vertex in used or graph.degree(vertex) < need:
                continue
            placed.append(vertex)
            used.add(vertex)
            if place(position + 1):
                return True
            placed.pop()
            used.remove(vertex)
        return False

    if place(0):
        return [placed[i * n : (i + 1) * n] for i in range(n)]
    return None


def contains_grid(atoms: AtomsLike, n: int, node_budget: int = 2_000_000) -> bool:
    """True iff *atoms* contains an n × n grid (Definition 5)."""
    return find_grid(atoms, n, node_budget=node_budget) is not None


def grid_lower_bound(
    atoms: AtomsLike, max_n: int = 6, node_budget: int = 2_000_000
) -> int:
    """The largest ``n ≤ max_n`` such that *atoms* contains an n × n grid
    — hence a treewidth lower bound by Fact 2 (0 when not even a 1 × 1
    grid, i.e. no terms, is present)."""
    best = 0
    for n in range(1, max_n + 1):
        if contains_grid(atoms, n, node_budget=node_budget):
            best = n
        else:
            break
    return best


def grid_from_coordinates(
    atoms: AtomsLike,
    coordinates: Mapping[Term, tuple[int, int]],
    n: int,
    origin: tuple[int, int] = (0, 0),
) -> bool:
    """Verify an explicitly proposed grid witness in linear time.

    *coordinates* assigns distinct plane coordinates to terms; the witness
    is the n × n block anchored at *origin*: the terms with coordinates
    ``(origin_x + i, origin_y + j)`` for ``i, j < n``.  Returns True iff
    all n² terms exist, are distinct, and all consecutive pairs co-occur
    in an atom of *atoms* — i.e. the Definition 5 conditions hold for this
    particular labelling.
    """
    graph = gaifman_graph(atoms)
    by_coordinate: dict[tuple[int, int], Term] = {}
    for term, coordinate in coordinates.items():
        if coordinate in by_coordinate and by_coordinate[coordinate] != term:
            raise ValueError(f"duplicate coordinate {coordinate}")
        by_coordinate[coordinate] = term
    ox, oy = origin
    block: list[list[Optional[Term]]] = [
        [by_coordinate.get((ox + i, oy + j)) for j in range(n)] for i in range(n)
    ]
    terms_seen: set[Term] = set()
    for i in range(n):
        for j in range(n):
            term = block[i][j]
            if term is None or term not in graph or term in terms_seen:
                return False
            terms_seen.add(term)
    for i in range(n):
        for j in range(n):
            if i + 1 < n and not graph.has_edge(block[i][j], block[i + 1][j]):
                return False
            if j + 1 < n and not graph.has_edge(block[i][j], block[i][j + 1]):
                return False
    return True

"""Tests for repro.logic.atomset."""

import pytest

from repro.logic.atoms import Predicate, atom
from repro.logic.atomset import AtomSet
from repro.logic.parser import parse_atoms
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable


class TestContainer:
    def test_add_and_contains(self):
        atoms = AtomSet()
        assert atoms.add(atom("p", "X"))
        assert atom("p", "X") in atoms

    def test_add_duplicate_returns_false(self):
        atoms = AtomSet([atom("p", "X")])
        assert not atoms.add(atom("p", "X"))
        assert len(atoms) == 1

    def test_discard(self):
        atoms = AtomSet([atom("p", "X")])
        assert atoms.discard(atom("p", "X"))
        assert not atoms
        assert not atoms.discard(atom("p", "X"))

    def test_update_counts_new(self):
        atoms = AtomSet([atom("p", "X")])
        added = atoms.update([atom("p", "X"), atom("q", "Y")])
        assert added == 1

    def test_len_and_bool(self):
        assert not AtomSet()
        assert len(AtomSet([atom("p", "X")])) == 1

    def test_equality_ignores_insertion_order(self):
        a = AtomSet([atom("p", "X"), atom("q", "Y")])
        b = AtomSet([atom("q", "Y"), atom("p", "X")])
        assert a == b

    def test_equality_with_plain_set(self):
        assert AtomSet([atom("p", "X")]) == {atom("p", "X")}

    def test_subset_relations(self):
        small = parse_atoms("p(X)")
        large = parse_atoms("p(X), q(Y)")
        assert small <= large
        assert small < large
        assert large >= small
        assert small.issubset(large)


class TestIndexes:
    def test_with_predicate(self):
        atoms = parse_atoms("p(X), p(Y), q(X)")
        assert len(atoms.with_predicate(Predicate("p", 1))) == 2

    def test_count_with_predicate(self):
        atoms = parse_atoms("p(X), p(Y), q(X)")
        assert atoms.count_with_predicate(Predicate("p", 1)) == 2
        assert atoms.count_with_predicate(Predicate("r", 1)) == 0

    def test_containing(self):
        atoms = parse_atoms("p(X, Y), q(Y), r(Z)")
        assert len(atoms.containing(Variable("Y"))) == 2

    def test_index_maintained_after_discard(self):
        atoms = parse_atoms("p(X, Y), q(Y)")
        atoms.discard(atom("q", "Y"))
        assert atoms.containing(Variable("Y")) == {atom("p", "X", "Y")}

    def test_remove_term_drops_all_incident_atoms(self):
        atoms = parse_atoms("p(X, Y), q(Y), r(Z)")
        removed = atoms.remove_term(Variable("Y"))
        assert removed == 2
        assert atoms == parse_atoms("r(Z)")

    def test_terms_variables_constants(self):
        atoms = parse_atoms("p(X, a), q(b)")
        assert atoms.terms() == {Variable("X"), Constant("a"), Constant("b")}
        assert atoms.variables() == {Variable("X")}
        assert atoms.constants() == {Constant("a"), Constant("b")}

    def test_predicates(self):
        atoms = parse_atoms("p(X), q(X, Y)")
        assert atoms.predicates() == {Predicate("p", 1), Predicate("q", 2)}


class TestStructuralOps:
    def test_copy_is_independent(self):
        original = parse_atoms("p(X)")
        clone = original.copy()
        clone.add(atom("q", "Y"))
        assert len(original) == 1

    def test_union(self):
        a = parse_atoms("p(X)")
        b = parse_atoms("q(Y)")
        assert a.union(b) == parse_atoms("p(X), q(Y)")
        assert len(a) == 1  # union is non-destructive

    def test_intersection_and_difference(self):
        a = parse_atoms("p(X), q(Y)")
        b = parse_atoms("q(Y), r(Z)")
        assert a.intersection(b) == parse_atoms("q(Y)")
        assert a.difference(b) == parse_atoms("p(X)")

    def test_induced_substructure(self):
        atoms = parse_atoms("p(X, Y), p(Y, Z), q(X)")
        induced = atoms.induced([Variable("X"), Variable("Y")])
        assert induced == parse_atoms("p(X, Y), q(X)")

    def test_apply_substitution(self):
        atoms = parse_atoms("p(X, Y)")
        sigma = Substitution({Variable("X"): Constant("a")})
        assert atoms.apply(sigma) == parse_atoms("p(a, Y)")

    def test_restrict_predicates(self):
        atoms = parse_atoms("p(X), q(X), r(X)")
        kept = atoms.restrict_predicates([Predicate("p", 1), Predicate("r", 1)])
        assert kept == parse_atoms("p(X), r(X)")

    def test_predicate_histogram(self):
        atoms = parse_atoms("p(X), p(Y), q(X)")
        assert atoms.predicate_histogram() == {"p/1": 2, "q/1": 1}

    def test_sorted_atoms_deterministic(self):
        atoms = parse_atoms("q(Y), p(X)")
        names = [a.predicate.name for a in atoms.sorted_atoms()]
        assert names == ["p", "q"]

    def test_str_rendering(self):
        assert str(parse_atoms("p(X)")) == "{p(X)}"

    def test_add_rejects_non_atoms(self):
        with pytest.raises(TypeError):
            AtomSet().add("p(X)")  # type: ignore[arg-type]

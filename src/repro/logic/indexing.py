"""Process-wide switches for the indexed evaluation layer.

Four accelerations sit under the chase (ISSUEs 2 and 3):

* the positional atom index consulted by the homomorphism search for
  candidate selection (:mod:`repro.logic.homomorphism`);
* the memoization of single-witness homomorphism checks
  (:mod:`repro.logic.homcache`);
* the incremental trigger index of the chase engine
  (:mod:`repro.chase.trigger_index` — controlled by the engine's own
  ``use_index`` flag, which also scopes the switches here);
* the incremental core maintainer (:mod:`repro.logic.coremaint` — the
  engine consults :func:`core_maintenance_enabled` when a core-variant
  run starts; the CLI's ``--no-core-maint`` flips only this switch);
* the compiled kernel (:mod:`repro.logic.compiled`, ISSUE 7 — interned
  terms, columnar relations, compiled join plans; the homomorphism
  search routes through it when *both* this switch and the atom index
  are on, since the compiled evaluator replicates the *indexed* pools;
  the CLI's ``--no-compiled`` and the :func:`no_compiled` scope disable
  just this layer, leaving the object-level indexed path as the
  differential oracle).

All are semantics-preserving accelerations of the same search, but
differential testing needs the *naive* path to stay reachable: the CLI's
``--no-index`` and :meth:`repro.chase.engine.ChaseEngine` run the legacy
code when asked, via the :func:`no_index` scope below.  The switches are
process-global (like :mod:`repro.obs.observer`'s ``current``) because the
homomorphism search is a free function with no object to hang
configuration on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "atom_index_enabled",
    "hom_memo_enabled",
    "core_maintenance_enabled",
    "compiled_enabled",
    "set_atom_index",
    "set_hom_memo",
    "set_core_maintenance",
    "set_compiled",
    "configured",
    "no_index",
    "no_compiled",
]

#: Positional-index candidate selection in ``homomorphisms()``.
_atom_index: bool = True

#: Fingerprint-keyed memoization in ``find_homomorphism()``.
_hom_memo: bool = True

#: Incremental core maintenance in core-variant chase runs.
_core_maint: bool = True

#: Compiled kernel (interned terms + columnar join plans) in
#: ``homomorphisms()`` and the chase's trigger index.
_compiled: bool = True


def atom_index_enabled() -> bool:
    """True iff the homomorphism search may consult the positional index."""
    return _atom_index


def hom_memo_enabled() -> bool:
    """True iff single-witness searches may consult the memo cache."""
    return _hom_memo


def set_atom_index(enabled: bool) -> bool:
    """Set the positional-index switch; returns the previous value."""
    global _atom_index
    previous = _atom_index
    _atom_index = bool(enabled)
    return previous


def set_hom_memo(enabled: bool) -> bool:
    """Set the memoization switch; returns the previous value."""
    global _hom_memo
    previous = _hom_memo
    _hom_memo = bool(enabled)
    return previous


def core_maintenance_enabled() -> bool:
    """True iff core-variant chase runs may use the incremental
    :class:`repro.logic.coremaint.CoreMaintainer`."""
    return _core_maint


def set_core_maintenance(enabled: bool) -> bool:
    """Set the core-maintenance switch; returns the previous value."""
    global _core_maint
    previous = _core_maint
    _core_maint = bool(enabled)
    return previous


def compiled_enabled() -> bool:
    """True iff searches may run on the compiled kernel.

    The compiled evaluator replicates the *indexed* candidate pools, so
    callers must also check :func:`atom_index_enabled` before routing —
    under :func:`no_index` the naive pools (different witnesses) are the
    reference semantics and the kernel must stay out of the way.
    """
    return _compiled


def set_compiled(enabled: bool) -> bool:
    """Set the compiled-kernel switch; returns the previous value."""
    global _compiled
    previous = _compiled
    _compiled = bool(enabled)
    return previous


@contextmanager
def configured(
    atom_index: Optional[bool] = None,
    hom_memo: Optional[bool] = None,
    core_maint: Optional[bool] = None,
    compiled: Optional[bool] = None,
) -> Iterator[None]:
    """Temporarily override the switches (None leaves one untouched)."""
    previous_index = set_atom_index(atom_index) if atom_index is not None else None
    previous_memo = set_hom_memo(hom_memo) if hom_memo is not None else None
    previous_maint = (
        set_core_maintenance(core_maint) if core_maint is not None else None
    )
    previous_compiled = set_compiled(compiled) if compiled is not None else None
    try:
        yield
    finally:
        if previous_index is not None:
            set_atom_index(previous_index)
        if previous_memo is not None:
            set_hom_memo(previous_memo)
        if previous_maint is not None:
            set_core_maintenance(previous_maint)
        if previous_compiled is not None:
            set_compiled(previous_compiled)


@contextmanager
def no_index() -> Iterator[None]:
    """Scope in which every layer runs the naive (pre-index) path —
    the compiled kernel included, since it compiles the indexed pools."""
    with configured(
        atom_index=False, hom_memo=False, core_maint=False, compiled=False
    ):
        yield


@contextmanager
def no_compiled() -> Iterator[None]:
    """Scope in which only the compiled kernel is off: the object-level
    *indexed* engine (the differential oracle for the kernel) runs."""
    with configured(compiled=False):
        yield

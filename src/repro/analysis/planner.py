"""The routing brain: KB analysis verdicts → per-job execution strategy.

The paper's Prop. 13 landscape (fes / bts / core-bts and their
separations) is a routing signal: which chase variant, core-maintenance
cadence, and step budget a KB deserves depends on where it sits.  This
module turns that observation into machinery:

* :class:`Verdict` — the structured outcome of analyzing one ruleset:
  every syntactic class the library detects (weakly acyclic, rule
  acyclic, guarded, frontier guarded, sticky, linear), the linear-
  fragment termination decision (:mod:`.linearity`), the breadth-level
  k-boundedness probe (:mod:`.kbound`) and the budgeted fes certificate
  (:func:`.classes.fes_certificate`).

* :class:`Strategy` — a named execution recipe: chase variant, core
  cadence, step budget, model-finder budget, ancestor-resume safety.
  :func:`plan` maps a Verdict to a Strategy deterministically, so the
  same ruleset fingerprint always routes the same way.

* :class:`Planner` — verdict computation with a two-tier cache: an
  in-process LRU keyed by the canonical ruleset fingerprint, backed by
  the snapshot catalog (any object with ``load_verdict``/
  ``save_verdict``) so warm shards skip re-analysis across processes.

Soundness note: the probes (k-boundedness, fes) run on the *instance*
while the cache key is the *ruleset* fingerprint, so a cached verdict
may describe a sibling KB's facts.  That is deliberate — the verdict
only routes; every strategy still carries the budgets under which a
wrong route degrades to "undecided within budget" (`ok=True,
entailed=None`), never to a wrong answer.  Answers always come from the
chase/model-finder race itself.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Optional

from ..chase.engine import ChaseVariant
from ..logic.kb import KnowledgeBase
from ..logic.rules import RuleSet
from ..logic.serialization import dump_ruleset
from ..obs import observer as _observer_state
from ..obs.spans import span as _span
from .classes import fes_certificate
from .guardedness import is_frontier_guarded, is_guarded
from .kbound import probe_k_bound
from .linearity import is_linear, linear_chase_terminates
from .rule_dependencies import is_rule_acyclic
from .sticky import is_sticky
from .weak_acyclicity import is_weakly_acyclic

__all__ = [
    "Verdict",
    "Strategy",
    "Planner",
    "plan",
    "ruleset_fingerprint",
    "default_planner",
    "STRATEGY_NAMES",
]


def ruleset_fingerprint(rules: RuleSet) -> str:
    """Canonical content hash of *rules* alone — the verdict-cache key.

    Same definition as the snapshot catalog's ``rules_fingerprint``
    (sha256 of the deterministic ruleset serialization), so verdicts and
    snapshots of one ruleset share an identity."""
    return hashlib.sha256(dump_ruleset(rules).encode()).hexdigest()


@dataclass(frozen=True)
class Verdict:
    """Everything the analyzers concluded about one ruleset (+instance).

    Syntactic fields describe the *ruleset* (cache-stable); ``k_bound``
    and ``fes_applications`` were probed on the instance the verdict was
    first computed for and are advisory under the ruleset cache key.
    """

    rules_fingerprint: str
    rule_count: int
    weakly_acyclic: bool
    rule_acyclic: bool
    guarded: bool
    frontier_guarded: bool
    sticky: bool
    linear: bool
    #: Linear-fragment decision: True = all variants terminate on all
    #: instances, False = oblivious chase diverges, None = undecided
    #: (not linear, or shape budget exhausted).
    linear_terminating: Optional[bool] = None
    #: Breadth level at which the oblivious chase of the probed instance
    #: saturated, or None.
    k_bound: Optional[int] = None
    #: Core-chase applications of the probed instance's fes certificate,
    #: or None.
    fes_applications: Optional[int] = None
    #: Chase applications the fes certification actually consumed
    #: (equals fes_applications on success, the spent budget on failure).
    fes_budget_consumed: int = 0

    @property
    def terminating(self) -> bool:
        """All chase variants terminate on all instances (certified)."""
        return bool(
            self.weakly_acyclic or self.rule_acyclic or self.linear_terminating is True
        )

    @property
    def bts_class(self) -> bool:
        """Membership in a known bounded-treewidth-set class (decidable
        CQ entailment even without termination)."""
        return bool(
            self.guarded or self.frontier_guarded or self.linear or self.sticky
        )

    @property
    def rewritable(self) -> bool:
        """The ruleset is a UCQ-rewriting candidate (see
        :mod:`repro.query.rewriting`): linear rulesets rewrite exactly
        (a finite unification set), guarded ones soundly under budget
        with a race fallback."""
        return bool(self.linear or self.guarded)

    @property
    def decidable(self) -> bool:
        return self.terminating or self.bts_class or self.fes_applications is not None

    def to_obj(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_obj(cls, obj: dict) -> "Verdict":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in obj.items() if key in known})


#: The planner's closed set of strategy names (metrics use them as
#: counter suffixes: ``planner.strategy.<name>``).
STRATEGY_NAMES = (
    "terminating-fast",
    "bounded-probe",
    "fes-core",
    "bts-core",
    "frontier-race",
    "rewrite-first",
)


@dataclass(frozen=True)
class Strategy:
    """A per-job execution recipe the service applies wholesale."""

    name: str
    variant: str
    core_every: int
    max_steps: int
    model_budget: int
    ancestor_resume: bool = True
    #: Attempt the UCQ-rewriting fast path before the chase race; the
    #: remaining fields are the sound fallback when the rewriting is
    #: incomplete or inconclusive.
    rewrite: bool = False
    reason: str = ""

    def to_obj(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_obj(cls, obj: dict) -> "Strategy":
        known = {f.name for f in fields(cls)}
        picked = {key: value for key, value in obj.items() if key in known}
        picked.setdefault("name", "override")
        missing = {"variant", "core_every", "max_steps", "model_budget"} - set(picked)
        if missing:
            raise ValueError(f"strategy override missing fields: {sorted(missing)}")
        if picked["variant"] not in ChaseVariant.ALL:
            raise ValueError(f"unknown chase variant {picked['variant']!r}")
        return cls(**picked)


def plan(verdict: Verdict) -> Strategy:
    """Map a :class:`Verdict` to a :class:`Strategy` — a pure function,
    so equal verdicts (hence equal ruleset fingerprints) always route
    identically.

    The ladder mirrors Prop. 13's landscape, cheapest certainty first:

    1. Certified terminating (weakly/rule-acyclic or linear-terminating)
       → restricted chase, no core maintenance mid-run, generous steps,
       model finder off: the restricted chase reaches a finite universal
       model by itself.
    2. Breadth probe saturated at level k → restricted with a budget
       scaled to the probe; a small model-finder budget backstops the
       instance-specific verdict under the ruleset-keyed cache.
    3. fes-certified (core chase of the probed instance terminated) →
       core variant with a relaxed cadence and a budget scaled to the
       certificate.  fes guarantees the *core* chase terminates; the
       restricted chase may not (the paper's staircase), hence core.
    4. bts-class but not terminating (guarded/linear/sticky with an
       infinite chase) → core chase with relaxed cadence under a
       moderate budget, racing a real model-finder budget: the
       countermodel side is what can answer "no" here.
    5. Unknown territory → the frontier race: restricted chase under a
       tight budget against the model finder, ancestor resume on.

    On top of the ladder: when the verdict is *rewritable* (linear or
    guarded — see :mod:`repro.query.rewriting`) the chosen rung is
    wrapped as ``rewrite-first``: entailment jobs try the backward
    UCQ-rewriting fast path before chasing, with the rung's own budgets
    as the sound fallback when the rewriting is incomplete.
    """
    base = _chase_ladder(verdict)
    if verdict.rewritable:
        fragment = "linear" if verdict.linear else "guarded"
        return replace(
            base,
            name="rewrite-first",
            rewrite=True,
            reason=(
                f"{fragment} ruleset: backward UCQ rewriting first, "
                f"falling back to {base.name} ({base.reason})"
            ),
        )
    return base


def _chase_ladder(verdict: Verdict) -> Strategy:
    if verdict.terminating:
        cause = (
            "weak acyclicity"
            if verdict.weakly_acyclic
            else "rule acyclicity" if verdict.rule_acyclic else "linear termination"
        )
        return Strategy(
            name="terminating-fast",
            variant=ChaseVariant.RESTRICTED,
            core_every=1,
            max_steps=1000,
            model_budget=0,
            reason=f"all-variant termination certified by {cause}",
        )
    if verdict.k_bound is not None:
        return Strategy(
            name="bounded-probe",
            variant=ChaseVariant.RESTRICTED,
            core_every=1,
            max_steps=400,
            model_budget=4,
            reason=f"breadth probe saturated at level {verdict.k_bound}",
        )
    if verdict.fes_applications is not None:
        return Strategy(
            name="fes-core",
            variant=ChaseVariant.CORE,
            core_every=4,
            max_steps=max(200, 2 * verdict.fes_applications),
            model_budget=4,
            reason=(
                f"fes-certified: core chase terminated in "
                f"{verdict.fes_applications} applications"
            ),
        )
    if verdict.bts_class:
        return Strategy(
            name="bts-core",
            variant=ChaseVariant.CORE,
            core_every=4,
            max_steps=200,
            model_budget=6,
            reason="bts-class ruleset with no termination certificate: "
            "core chase raced against the model finder",
        )
    return Strategy(
        name="frontier-race",
        variant=ChaseVariant.RESTRICTED,
        core_every=1,
        max_steps=150,
        model_budget=6,
        reason="no certificate: tight restricted chase raced against "
        "the model finder",
    )


class Planner:
    """Compute, cache, and apply verdicts.

    ``decide(kb, store=...)`` is the single entry point the service
    uses: it returns ``(verdict, strategy, source)`` where *source* is
    ``"memory"``, ``"store"``, or ``"computed"``, and emits the
    ``planner_decision`` observability event.
    """

    def __init__(
        self,
        cache_size: int = 128,
        fes_budget: int = 60,
        k_max: int = 6,
        k_atom_budget: int = 1500,
        shape_budget: int = 4096,
    ):
        # fes_budget stays small by design: a core-chase probe on a KB
        # whose core grows (the manager/elevator family) costs
        # super-linearly per step, and a miss is amortized over every
        # job that shares the ruleset fingerprint anyway.
        self.cache_size = cache_size
        self.fes_budget = fes_budget
        self.k_max = k_max
        self.k_atom_budget = k_atom_budget
        self.shape_budget = shape_budget
        self._cache: OrderedDict[str, Verdict] = OrderedDict()

    # ------------------------------------------------------------------

    def analyze(self, kb: KnowledgeBase, store=None) -> tuple[Verdict, str]:
        """The cached analysis: memory LRU → snapshot catalog → compute."""
        fingerprint = ruleset_fingerprint(kb.rules)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            self._cache.move_to_end(fingerprint)
            return cached, "memory"
        if store is not None:
            persisted = store.load_verdict(fingerprint)
            if persisted is not None:
                verdict = Verdict.from_obj(persisted)
                self._remember(fingerprint, verdict)
                return verdict, "store"
        with _span("analysis", rules_fingerprint=fingerprint[:16]):
            verdict = self.compute(kb, fingerprint)
        self._remember(fingerprint, verdict)
        if store is not None:
            store.save_verdict(fingerprint, verdict.to_obj())
        return verdict, "computed"

    def compute(self, kb: KnowledgeBase, fingerprint: Optional[str] = None) -> Verdict:
        """Uncached analysis, cheapest criteria first; the instance
        probes only run when no syntactic certificate settled
        termination already."""
        rules = kb.rules
        if fingerprint is None:
            fingerprint = ruleset_fingerprint(rules)
        weakly_acyclic = is_weakly_acyclic(rules)
        rule_acyclic = is_rule_acyclic(rules)
        linear = is_linear(rules)
        linear_terminating = (
            linear_chase_terminates(rules, max_shapes=self.shape_budget)
            if linear
            else None
        )
        k_bound = None
        fes_applications = None
        fes_consumed = 0
        terminating = weakly_acyclic or rule_acyclic or linear_terminating is True
        if not terminating:
            probe = probe_k_bound(
                kb, k_max=self.k_max, atom_budget=self.k_atom_budget
            )
            k_bound = probe.fixpoint_level
            if k_bound is None and len(kb.facts):
                fes_applications, fes_consumed = fes_certificate(
                    kb, max_steps=self.fes_budget
                )
        return Verdict(
            rules_fingerprint=fingerprint,
            rule_count=len(rules),
            weakly_acyclic=weakly_acyclic,
            rule_acyclic=rule_acyclic,
            guarded=is_guarded(rules),
            frontier_guarded=is_frontier_guarded(rules),
            sticky=is_sticky(rules),
            linear=linear,
            linear_terminating=linear_terminating,
            k_bound=k_bound,
            fes_applications=fes_applications,
            fes_budget_consumed=fes_consumed,
        )

    def decide(self, kb: KnowledgeBase, store=None) -> tuple[Verdict, Strategy, str]:
        """Analyze (cached) and plan; emits ``planner_decision``."""
        verdict, source = self.analyze(kb, store=store)
        strategy = plan(verdict)
        observer = _observer_state.current
        if observer is not None:
            observer.planner_decision(
                rules_fingerprint=verdict.rules_fingerprint[:16],
                strategy=strategy.name,
                cached=source,
                terminating=verdict.terminating,
                bts=verdict.bts_class,
                k_bound=verdict.k_bound,
            )
        return verdict, strategy, source

    # ------------------------------------------------------------------

    def _remember(self, fingerprint: str, verdict: Verdict) -> None:
        self._cache[fingerprint] = verdict
        self._cache.move_to_end(fingerprint)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def cache_clear(self) -> None:
        self._cache.clear()


#: Process-wide default planner (one per worker process): the in-memory
#: verdict LRU persists across jobs; the snapshot catalog persists the
#: verdicts across processes.
_default: Optional[Planner] = None


def default_planner() -> Planner:
    global _default
    if _default is None:
        _default = Planner()
    return _default

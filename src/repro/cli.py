"""Command-line interface: ``python -m repro <command> ...``.

Four subcommands cover the everyday workflows on serialized knowledge
bases (see :mod:`repro.logic.serialization` for the file format):

``chase``
    Run a chase variant with a step budget; print the final instance
    and a summary line.
``entail``
    Decide a Boolean CQ with the Theorem-1 race.
``classify``
    Print the syntactic analysis (weak acyclicity, guardedness, rule
    acyclicity) and the budgeted fes certificate.
``treewidth``
    Treewidth of an instance file (exact, with bounds fallback).

Examples::

    python -m repro chase kb.repro --variant core --steps 50
    python -m repro entail kb.repro "mgr(ann, X)"
    python -m repro classify kb.repro
    python -m repro treewidth instance.atoms
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import analyze_ruleset
from .chase.engine import ChaseVariant, run_chase
from .logic.serialization import load_instance, load_kb_file
from .query import boolean_cq, decide_entailment
from .treewidth import SearchBudgetExceeded, treewidth, treewidth_bounds

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Existential rules, chase variants, and treewidth "
        "(PODS 2023 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    chase = commands.add_parser("chase", help="run a chase on a KB file")
    chase.add_argument("kb", help="knowledge base file (sectioned format)")
    chase.add_argument(
        "--variant",
        choices=ChaseVariant.ALL,
        default=ChaseVariant.RESTRICTED,
    )
    chase.add_argument("--steps", type=int, default=100)
    chase.add_argument(
        "--quiet", action="store_true", help="summary only, no instance dump"
    )

    entail = commands.add_parser("entail", help="decide a Boolean CQ")
    entail.add_argument("kb", help="knowledge base file")
    entail.add_argument("query", help='query text, e.g. "e(X, Y), e(Y, X)"')
    entail.add_argument("--chase-budget", type=int, default=100)
    entail.add_argument("--model-budget", type=int, default=6)

    classify = commands.add_parser(
        "classify", help="syntactic analysis + fes certificate"
    )
    classify.add_argument("kb", help="knowledge base file")
    classify.add_argument("--steps", type=int, default=200)

    width = commands.add_parser("treewidth", help="treewidth of an instance")
    width.add_argument("instance", help="instance file (one atom per line)")

    return parser


def _cmd_chase(args: argparse.Namespace) -> int:
    kb = load_kb_file(args.kb)
    result = run_chase(kb, variant=args.variant, max_steps=args.steps)
    if not args.quiet:
        for at in result.final_instance.sorted_atoms():
            print(at)
    status = "terminated" if result.terminated else "budget-exhausted"
    print(
        f"# {args.variant} chase {status}: {result.applications} applications, "
        f"{len(result.final_instance)} atoms, "
        f"{len(result.final_instance.variables())} nulls"
    )
    return 0


def _cmd_entail(args: argparse.Namespace) -> int:
    kb = load_kb_file(args.kb)
    verdict = decide_entailment(
        kb,
        boolean_cq(args.query),
        chase_budget=args.chase_budget,
        model_domain_budget=args.model_budget,
    )
    if verdict.entailed is None:
        print(f"UNDECIDED within budgets ({verdict.method})")
        return 2
    print(f"{'ENTAILED' if verdict.entailed else 'NOT ENTAILED'} ({verdict.method})")
    return 0 if verdict.entailed else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    kb = load_kb_file(args.kb)
    report = analyze_ruleset(kb.rules, kb=kb, fes_budget=args.steps)
    print(f"rules: {len(kb.rules)}, facts: {len(kb.facts)}")
    print(f"weakly acyclic:    {report.weakly_acyclic}")
    print(f"guarded:           {report.guarded}")
    print(f"frontier-guarded:  {report.frontier_guarded}")
    print(f"sticky:            {report.sticky}")
    print(f"rule-acyclic:      {report.rule_acyclic}")
    if report.fes_applications is None:
        print(f"fes (this instance): unknown within {args.steps} steps")
    else:
        print(
            "fes (this instance): yes, core chase terminated in "
            f"{report.fes_applications}"
        )
    print(f"decidable CQ entailment certified: {report.decidable_cq_entailment}")
    return 0


def _cmd_treewidth(args: argparse.Namespace) -> int:
    with open(args.instance) as handle:
        atoms = load_instance(handle.read())
    try:
        print(f"treewidth: {treewidth(atoms)}")
    except SearchBudgetExceeded:
        low, high = treewidth_bounds(atoms)
        print(f"treewidth: in [{low}, {high}] (exact search exceeded budget)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "chase": _cmd_chase,
        "entail": _cmd_entail,
        "classify": _cmd_classify,
        "treewidth": _cmd_treewidth,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

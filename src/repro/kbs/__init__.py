"""The paper's knowledge bases (steepening staircase, inflating
elevator), the Proposition 13 witness rule sets, and synthetic workload
generators."""

from . import elevator, generators, ontology, staircase, witnesses
from .elevator import elevator_kb
from .ontology import academia_kb
from .staircase import staircase_kb
from .witnesses import (
    bts_not_fes_kb,
    fes_not_bts_kb,
    guarded_chain_kb,
    manager_kb,
    transitive_closure_kb,
    weakly_acyclic_kb,
)

__all__ = [
    "academia_kb",
    "bts_not_fes_kb",
    "elevator",
    "elevator_kb",
    "fes_not_bts_kb",
    "generators",
    "guarded_chain_kb",
    "manager_kb",
    "ontology",
    "staircase",
    "staircase_kb",
    "transitive_closure_kb",
    "weakly_acyclic_kb",
    "witnesses",
]

"""The compiled kernel (ISSUE 7): interning, columnar views, join
plans, and the semi-naive trigger index.

Complements ``test_differential_index.py`` (which fuzzes whole runs
across the three engines) with targeted unit tests of the compiled
layer's own invariants:

* the symbol table is injective across term *kinds* and stable across
  KB merges and re-encodings;
* a compiled view maintained incrementally through adds/discards/copies
  equals one rebuilt from scratch;
* the compiled evaluator returns the indexed object search's witness
  lists *in order*, including under partial assignments and forbidden
  images;
* the semi-naive ``CompiledTriggerIndex`` survives mid-chase
  ``CoreMaintainer`` retractions with a live pool identical to a
  from-scratch rescan;
* every documented bail-out really falls back to the object engine;
* ``compile``/``join_plan`` events and ``compiled.*`` metrics flow
  through :mod:`repro.obs`.
"""

import io
import json

from repro.chase.compiled_index import CompiledTriggerIndex
from repro.chase.engine import ChaseEngine, ChaseVariant, run_chase
from repro.chase.trigger import triggers
from repro.chase.trigger_index import TriggerIndex
from repro.kbs.elevator import elevator_kb
from repro.kbs.staircase import staircase_kb
from repro.logic import indexing
from repro.logic.atoms import Atom
from repro.logic.atomset import AtomSet
from repro.logic.compiled import compiled_homomorphisms, compiled_view
from repro.logic.compiled.interner import reset_symbol_table, symbol_table
from repro.logic.homcache import get_cache
from repro.logic.homomorphism import homomorphisms
from repro.logic.parser import parse_atoms
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, FreshVariableSource, Variable
from repro.obs import (
    JsonlTracer,
    MetricsObserver,
    MetricsRegistry,
    TracingObserver,
    observing,
)
from repro.service.snapshots import SnapshotStore


# ---------------------------------------------------------------------------
# interning
# ---------------------------------------------------------------------------


class TestSymbolTable:
    def test_same_name_different_kind_gets_distinct_codes(self):
        """``Variable("a")`` and ``Constant("a")`` are different terms
        and must never collapse to one code."""
        table = symbol_table()
        var_code = table.encode_term(Variable("a"))
        const_code = table.encode_term(Constant("a"))
        assert var_code != const_code
        assert table.decode_term(var_code) == Variable("a")
        assert table.decode_term(const_code) == Constant("a")
        assert table.is_variable_code[var_code]
        assert not table.is_variable_code[const_code]

    def test_codes_stable_across_kb_merges(self):
        """Interning the atoms of two KBs that share constant and null
        *names* must assign one code per (kind, name) — the codes a KB's
        atoms got before a merge are the codes they keep after it."""
        table = symbol_table()
        first = sorted(parse_atoms("edge(a, b), edge(b, N1)"))
        before = [table.encode_atom(at)[1:] for at in first]
        for at in parse_atoms("edge(N1, a), label(b, c)"):
            table.encode_atom(at)
        # Re-encoding the first KB's atoms (fresh Atom objects, same
        # names) reproduces the original codes exactly.
        again = [
            table.encode_atom(at)[1:]
            for at in sorted(parse_atoms("edge(a, b), edge(b, N1)"))
        ]
        assert before == again

    def test_encode_decode_round_trip(self):
        table = symbol_table()
        for at in parse_atoms("r(X, a, Y), s(b), t(X, X)"):
            _, pred_code, row = table.encode_atom(at)
            rebuilt = Atom(
                table.decode_predicate(pred_code),
                tuple(table.decode_term(code) for code in row),
            )
            assert rebuilt == at

    def test_fresh_nulls_from_independent_sources_stay_distinct(self):
        """Two engines' fresh-null streams reuse names only when the
        names really are equal — the interner must key on the name, not
        the object, so equal names collide (same code) and distinct
        names never do."""
        table = symbol_table()
        src_a, src_b = FreshVariableSource(), FreshVariableSource()
        null_a, null_b = src_a.fresh(), src_b.fresh()
        if null_a == null_b:
            assert table.encode_term(null_a) == table.encode_term(null_b)
        else:
            assert table.encode_term(null_a) != table.encode_term(null_b)

    def test_reset_retires_old_views(self):
        """After the (test-only) global reset, previously attached views
        carry a stale generation and are rebuilt, not trusted."""
        atoms = AtomSet(parse_atoms("p(a, b), p(b, c)"))
        view = compiled_view(atoms)
        reset_symbol_table()
        fresh = compiled_view(atoms)
        assert fresh is not view
        assert fresh.generation == symbol_table().generation
        assert fresh.tuples == 2


# ---------------------------------------------------------------------------
# columnar views
# ---------------------------------------------------------------------------


def _view_state(view):
    return {
        code: (
            set(rel.rows),
            {k: set(v) for k, v in rel.postings.items()},
            dict(rel.sort_keys),
        )
        for code, rel in view.relations.items()
        if rel.rows
    }


class TestCompiledView:
    def test_incremental_maintenance_matches_rebuild(self):
        """A view maintained through adds and discards equals a view
        built from scratch over the final atom set."""
        atoms = AtomSet(parse_atoms("e(a, b), e(b, c)"))
        view = compiled_view(atoms)
        extra = list(parse_atoms("e(c, d), f(a), f(d)"))
        for at in extra:
            atoms.add(at)
        atoms.discard(extra[0])
        atoms.discard(next(iter(parse_atoms("e(a, b)"))))
        rebuilt = compiled_view(AtomSet(atoms))
        assert view.tuples == rebuilt.tuples == len(atoms)
        assert _view_state(view) == _view_state(rebuilt)

    def test_copy_clones_the_view_independently(self):
        """``AtomSet.copy`` hands the copy its own cloned view: mutating
        either set afterwards must not leak into the other."""
        atoms = AtomSet(parse_atoms("e(a, b), e(b, c)"))
        compiled_view(atoms)
        copy = atoms.copy()
        assert copy._compiled is not None
        assert copy._compiled is not atoms._compiled
        copy.add(next(iter(parse_atoms("e(c, d)"))))
        atoms.discard(next(iter(parse_atoms("e(a, b)"))))
        assert _view_state(compiled_view(copy)) == _view_state(
            compiled_view(AtomSet(copy))
        )
        assert _view_state(compiled_view(atoms)) == _view_state(
            compiled_view(AtomSet(atoms))
        )


# ---------------------------------------------------------------------------
# the compiled evaluator vs the object search
# ---------------------------------------------------------------------------


def _object_witnesses(source, target, **kw):
    with indexing.no_compiled():
        return list(homomorphisms(source, target, **kw))


class TestWitnessParity:
    def test_witness_lists_identical_in_order(self):
        source = AtomSet(parse_atoms("e(X, Y), e(Y, Z)"))
        target = AtomSet(
            parse_atoms("e(a, b), e(b, c), e(c, a), e(b, d), e(d, b)")
        )
        assert list(homomorphisms(source, target)) == _object_witnesses(
            source, target
        )

    def test_witness_lists_identical_under_partial(self):
        source = AtomSet(parse_atoms("e(X, Y), e(Y, Z)"))
        target = AtomSet(parse_atoms("e(a, b), e(b, c), e(c, a)"))
        partial = Substitution({Variable("X"): Constant("a")})
        assert list(
            homomorphisms(source, target, partial=partial)
        ) == _object_witnesses(source, target, partial=partial)

    def test_witness_lists_identical_under_forbidden_images(self):
        source = AtomSet(parse_atoms("e(X, Y)"))
        target = AtomSet(parse_atoms("e(a, b), e(b, c)"))
        forbidden = (Constant("b"),)
        assert list(
            homomorphisms(source, target, forbidden_images=forbidden)
        ) == _object_witnesses(source, target, forbidden_images=forbidden)

    def test_compiled_homomorphisms_direct_entry_point(self):
        source = AtomSet(parse_atoms("e(X, Y), e(Y, X)"))
        target = AtomSet(parse_atoms("e(a, b), e(b, a), e(b, c)"))
        assert list(
            compiled_homomorphisms(source, target)
        ) == _object_witnesses(source, target)

    def test_injective_search_bails_to_object_path(self):
        """Injective (isomorphism-style) searches are not compiled; the
        router must hand them to the object engine, which enforces the
        image-disjointness discipline the plans do not model."""
        source = AtomSet(parse_atoms("e(X, Y), e(Y, Z)"))
        target = AtomSet(parse_atoms("e(a, b), e(b, c)"))
        assert list(
            homomorphisms(source, target, injective=True)
        ) == _object_witnesses(source, target, injective=True)


# ---------------------------------------------------------------------------
# the semi-naive trigger index
# ---------------------------------------------------------------------------


class TestCompiledTriggerIndex:
    def test_pool_matches_rescan_after_core_retractions(self):
        """The deep-retraction workload: a staircase core chase folds
        freshly grown fragments every step (CoreMaintainer retractions
        mid-chase), and the semi-naive pool must still equal a
        from-scratch rescan of the final instance."""
        get_cache().clear()
        engine = ChaseEngine(staircase_kb(), variant=ChaseVariant.CORE)
        result = engine.run(max_steps=12)
        assert result.retractions > 0, "workload must exercise retractions"
        assert isinstance(engine._index, CompiledTriggerIndex)
        rescanned = {
            (rule.name, trigger.full_image())
            for rule in engine.kb.rules
            for trigger in triggers(rule, result.final_instance)
        }
        assert set(engine._index._live.keys()) == rescanned

    def test_core_run_equals_indexed_oracle_after_retractions(self):
        get_cache().clear()
        compiled = run_chase(
            elevator_kb(), variant=ChaseVariant.CORE, max_steps=10
        )
        get_cache().clear()
        indexed = run_chase(
            elevator_kb(),
            variant=ChaseVariant.CORE,
            max_steps=10,
            use_compiled=False,
        )
        assert compiled.applications == indexed.applications
        assert compiled.retractions == indexed.retractions
        assert compiled.final_instance == indexed.final_instance

    def test_default_engine_installs_compiled_index(self):
        get_cache().clear()
        engine = ChaseEngine(elevator_kb(), variant=ChaseVariant.RESTRICTED)
        engine.run(max_steps=2)
        assert isinstance(engine._index, CompiledTriggerIndex)

    def test_no_compiled_scope_falls_back_to_object_index(self):
        kb = elevator_kb()
        get_cache().clear()
        with indexing.no_compiled():
            engine = ChaseEngine(kb, variant=ChaseVariant.RESTRICTED)
            engine.run(max_steps=4)
            assert type(engine._index) is TriggerIndex

    def test_use_compiled_false_falls_back_to_object_index(self):
        get_cache().clear()
        engine = ChaseEngine(
            elevator_kb(), variant=ChaseVariant.RESTRICTED, use_compiled=False
        )
        engine.run(max_steps=4)
        assert type(engine._index) is TriggerIndex

    def test_no_index_disables_both_layers(self):
        get_cache().clear()
        engine = ChaseEngine(
            elevator_kb(), variant=ChaseVariant.RESTRICTED, use_index=False
        )
        engine.run(max_steps=4)
        assert engine._index is None

    def test_scoped_off_mid_run_bails_per_delta(self):
        """A CompiledTriggerIndex asked to absorb a delta while the
        compiled layer is scoped off must take the object path — same
        pool either way."""
        kb = elevator_kb()
        get_cache().clear()
        engine = ChaseEngine(kb, variant=ChaseVariant.RESTRICTED)
        engine.run(max_steps=2)
        assert isinstance(engine._index, CompiledTriggerIndex)
        with indexing.no_compiled():
            engine.resume(extra_steps=2)
        rescanned = {
            (rule.name, trigger.full_image())
            for rule in kb.rules
            for trigger in triggers(rule, engine.current_instance)
        }
        assert set(engine._index._live.keys()) == rescanned


# ---------------------------------------------------------------------------
# snapshot round trip
# ---------------------------------------------------------------------------


class TestSnapshotRoundTrip:
    def test_symbol_table_survives_save_load_resume(self, tmp_path):
        """A compiled run checkpointed through the snapshot store and
        restored in a fresh symbol-table world must resume to the same
        instances as an uninterrupted compiled run — the interner is
        process-local state the snapshot format must not depend on."""
        kb = staircase_kb()
        get_cache().clear()
        straight = run_chase(kb, variant=ChaseVariant.CORE, max_steps=10)

        get_cache().clear()
        engine = ChaseEngine(kb, variant=ChaseVariant.CORE)
        engine.run(max_steps=6)
        store = SnapshotStore(tmp_path)
        store.save(kb, engine.export_state())

        # A fresh process: new interner codes, nothing shared.
        reset_symbol_table()
        get_cache().clear()
        state = store.load(kb, ChaseVariant.CORE)
        assert state is not None
        resumed_engine = ChaseEngine(kb, variant=ChaseVariant.CORE)
        resumed_engine.restore_state(state)
        resumed_engine.resume(extra_steps=4)
        assert resumed_engine.current_instance == straight.final_instance


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


class TestCompiledTelemetry:
    def test_metrics_flow(self):
        registry = MetricsRegistry()
        get_cache().clear()
        with observing(MetricsObserver(registry)):
            run_chase(elevator_kb(), variant=ChaseVariant.RESTRICTED, max_steps=6)
        assert registry.counter("compiled.plans").value > 0
        assert registry.counter("compiled.delta_rounds").value > 0
        assert registry.gauge("compiled.tuples").value > 0

    def test_compile_and_join_plan_events_traced(self):
        buffer = io.StringIO()
        get_cache().clear()
        with observing(TracingObserver(JsonlTracer(buffer))):
            run_chase(elevator_kb(), variant=ChaseVariant.RESTRICTED, max_steps=4)
        kinds = {
            json.loads(line)["kind"]
            for line in buffer.getvalue().splitlines()
            if line.strip()
        }
        assert "compile" in kinds
        assert "join_plan" in kinds

    def test_no_events_when_compiled_disabled(self):
        buffer = io.StringIO()
        get_cache().clear()
        with observing(TracingObserver(JsonlTracer(buffer))):
            run_chase(
                elevator_kb(),
                variant=ChaseVariant.RESTRICTED,
                max_steps=4,
                use_compiled=False,
            )
        kinds = {
            json.loads(line)["kind"]
            for line in buffer.getvalue().splitlines()
            if line.strip()
        }
        assert "compile" not in kinds
        assert "join_plan" not in kinds

"""Equality-generating dependencies and the standard TGD+EGD chase.

The paper's framework (Definition 1) covers tuple-generating
dependencies only; classical data exchange also chases with
*equality-generating dependencies* (EGDs) of the form
``∀x̄. B[x̄] → x = y`` with ``x, y`` occurring in ``B``.  Applying an EGD
unifies the two images: two distinct constants make the chase **fail**
(the unique name assumption is violated — no model exists respecting the
dependencies); a null is merged into the other term otherwise.

EGD steps are genuine quotients, not retractions, so they fall outside
the paper's derivation format — this module is an *extension* (flagged
as such in DESIGN.md) providing the standard chase of Fagin et al.
(reference [10] of the paper): alternate TGD rounds (restricted
activity) with exhaustive EGD application, detect failure, and stop at a
fixpoint that is then a universal solution for the data-exchange
setting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.homomorphism import homomorphisms
from ..logic.parser import ParseError, parse_atoms, _NAME
from ..logic.rules import ExistentialRule, RuleSet
from ..logic.substitution import Substitution
from ..logic.terms import Constant, FreshVariableSource, Term, Variable
from .trigger import apply_trigger, unsatisfied_triggers

__all__ = [
    "EGD",
    "parse_egd",
    "parse_egds",
    "ChaseFailure",
    "EgdChaseResult",
    "standard_chase",
]

_EGD_RE = re.compile(rf"^\s*({_NAME})\s*=\s*({_NAME})\s*$")
_LABEL_RE = re.compile(rf"^\s*\[\s*({_NAME})\s*\]\s*(.*)$")


class ChaseFailure(Exception):
    """The chase failed: an EGD forced two distinct constants equal, so
    the dependencies have no model extending the data."""


class EGD:
    """An equality-generating dependency ``B → x = y``."""

    __slots__ = ("body", "left", "right", "name")

    def __init__(
        self,
        body: Union[AtomSet, Iterable[Atom]],
        left: Variable,
        right: Variable,
        name: Optional[str] = None,
    ):
        body_set = body if isinstance(body, AtomSet) else AtomSet(body)
        if not body_set:
            raise ValueError("EGD body must be nonempty")
        for var in (left, right):
            if var not in body_set.variables():
                raise ValueError(f"equated variable {var} must occur in the body")
        object.__setattr__(self, "body", body_set.copy())
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("EGD is immutable")

    def violations(self, instance: AtomSet):
        """Iterate over homomorphisms of the body mapping the equated
        variables to *distinct* terms."""
        for hom in homomorphisms(self.body, instance):
            if hom.apply_term(self.left) != hom.apply_term(self.right):
                yield hom

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        body_text = ", ".join(str(a) for a in self.body.sorted_atoms())
        return f"EGD({label}{body_text} -> {self.left} = {self.right})"


def parse_egd(text: str, name: Optional[str] = None) -> EGD:
    """Parse an EGD such as ``"dir(E, H1), dir(E, H2) -> H1 = H2"``."""
    label_match = _LABEL_RE.match(text)
    if label_match is not None:
        name = label_match.group(1)
        text = label_match.group(2)
    parts = text.split("->")
    if len(parts) != 2:
        raise ParseError(f"expected exactly one '->' in EGD {text!r}")
    body = parse_atoms(parts[0])
    eq_match = _EGD_RE.match(parts[1])
    if eq_match is None:
        raise ParseError(f"EGD head must be 'X = Y', got {parts[1]!r}")
    left, right = Variable(eq_match.group(1)), Variable(eq_match.group(2))
    return EGD(body, left, right, name=name)


def parse_egds(text: str) -> list[EGD]:
    """Parse one EGD per (non-comment) line."""
    egds = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            egds.append(parse_egd(line))
        except ParseError as error:
            raise ParseError(f"line {line_number}: {error}") from error
    if not egds:
        raise ParseError("no EGDs in text")
    return egds


@dataclass
class EgdChaseResult:
    """Outcome of a standard (TGD + EGD) chase run."""

    instance: AtomSet
    terminated: bool
    failed: bool
    tgd_applications: int = 0
    egd_applications: int = 0

    def __repr__(self) -> str:
        status = (
            "failed"
            if self.failed
            else ("terminated" if self.terminated else "budget-exhausted")
        )
        return (
            f"EgdChaseResult({status}, {self.tgd_applications} TGD + "
            f"{self.egd_applications} EGD applications, "
            f"{len(self.instance)} atoms)"
        )


def _unification(left: Term, right: Term) -> Substitution:
    """The substitution merging two terms (older/constant survives)."""
    if isinstance(left, Constant) and isinstance(right, Constant):
        raise ChaseFailure(f"cannot unify distinct constants {left} and {right}")
    if isinstance(left, Constant):
        return Substitution({right: left})  # type: ignore[dict-item]
    if isinstance(right, Constant):
        return Substitution({left: right})
    older, newer = sorted((left, right), key=lambda v: (v.rank, v.name))
    return Substitution({newer: older})  # type: ignore[dict-item]


def _saturate_egds(instance: AtomSet, egds: list[EGD], budget: int) -> tuple[AtomSet, int]:
    """Apply EGDs until none is violated (or the budget runs out)."""
    applications = 0
    changed = True
    while changed and applications < budget:
        changed = False
        for egd in egds:
            for violation in egd.violations(instance):
                unifier = _unification(
                    violation.apply_term(egd.left),
                    violation.apply_term(egd.right),
                )
                instance = unifier.apply(instance)
                applications += 1
                changed = True
                break  # instance changed: re-enumerate
            if changed:
                break
    return instance, applications


def standard_chase(
    facts: AtomSet,
    tgds: Union[RuleSet, Iterable[ExistentialRule]],
    egds: Iterable[EGD],
    max_steps: int = 1000,
) -> EgdChaseResult:
    """The standard chase with TGDs and EGDs.

    Alternates exhaustive EGD saturation with single restricted-style TGD
    applications.  Raises nothing: failure is reported in the result (a
    failed chase means the setting admits no solution).
    """
    rule_set = tgds if isinstance(tgds, RuleSet) else RuleSet(tgds)
    egd_list = list(egds)
    fresh = FreshVariableSource(prefix="_s")
    instance = facts.copy()
    tgd_applications = 0
    egd_applications = 0
    try:
        instance, done = _saturate_egds(instance, egd_list, max_steps)
        egd_applications += done
        while tgd_applications < max_steps:
            pending = None
            for rule in rule_set:
                for trigger in unsatisfied_triggers(rule, instance):
                    pending = trigger
                    break
                if pending is not None:
                    break
            if pending is None:
                return EgdChaseResult(
                    instance, True, False, tgd_applications, egd_applications
                )
            instance, _ = apply_trigger(instance, pending, fresh)
            tgd_applications += 1
            instance, done = _saturate_egds(
                instance, egd_list, max_steps - egd_applications
            )
            egd_applications += done
        return EgdChaseResult(
            instance, False, False, tgd_applications, egd_applications
        )
    except ChaseFailure:
        return EgdChaseResult(
            instance, True, True, tgd_applications, egd_applications
        )

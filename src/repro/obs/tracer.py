"""Structured JSONL tracing and metrics-updating observers.

A trace is a sequence of flat JSON objects, one per line::

    {"seq": 17, "t": 0.00421, "ts": 1754640000.104211,
     "kind": "chase_step_finished", "step": 3, "rule": "Rup",
     "atoms_before": 10, "atoms_applied": 13, "atoms_after": 11,
     "retracted": 2}

``seq`` is a per-tracer sequence number, ``t`` the elapsed time in
seconds since the tracer was created (monotonic clock — exact for
intra-tracer deltas), ``ts`` the wall-clock epoch time (the field that
lets traces from *different processes* — the server and each pool
worker — merge onto one timeline), ``kind`` one of :data:`EVENT_KINDS`;
the remaining fields are the event payload (see
:class:`~repro.obs.observer.Observer` for the schema of each kind, and
``docs/OBSERVABILITY.md`` for the full catalogue).

When a trace context is ambient (:mod:`repro.obs.spans`), every emitted
event is additionally stamped with ``trace_id`` and ``span_id``, tying
engine steps, snapshot accesses and service events to the request that
caused them.

The file format is append-only and crash-tolerant: every event is a
complete line, so a truncated trace loses at most its last event.
``repro stats FILE`` replays a trace into summary tables.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Iterable, Optional, Union

from . import spans as _span_state
from .metrics import MetricsRegistry
from .observer import Observer

__all__ = [
    "EVENT_KINDS",
    "LATENCY_BOUNDS",
    "JsonlTracer",
    "TracingObserver",
    "MetricsObserver",
    "read_trace",
    "read_trace_lenient",
]

#: Every event kind an Observer callback can emit.
EVENT_KINDS = (
    "chase_step_started",
    "trigger_selected",
    "trigger_retired",
    "chase_step_finished",
    "core_retraction",
    "core_maintenance",
    "homomorphism_search",
    "hom_memo_lookup",
    "trigger_index_update",
    "compile",
    "join_plan",
    "service_request",
    "service_job",
    "service_retry",
    "service_pool_rebuild",
    "planner_decision",
    "query_rewrite",
    "snapshot_access",
    "treewidth_search",
    "robust_step",
    "span_open",
    "span_close",
)

#: Histogram bucket bounds for service job latencies, in seconds: the
#: default 1-2-5 decades start at 1 and would lump every sub-second job
#: into one bucket, useless for p50/p95 targets on a warm-started path.
LATENCY_BOUNDS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
)


class JsonlTracer:
    """Serialize events as JSON lines into a file-like sink.

    The tracer owns sequence numbering and timestamps; it does not own
    the sink (callers close what they open) unless :meth:`close` is
    asked to.
    """

    def __init__(self, sink: IO[str]):
        self.sink = sink
        self.seq = 0
        self._epoch = time.perf_counter()
        # The server's asyncio thread and the executor's callback
        # threads share one tracer; the lock keeps lines whole and seq
        # gapless.
        self._lock = threading.Lock()

    def emit(self, kind: str, **payload) -> None:
        context = _span_state.current_context()
        with self._lock:
            record = {
                "seq": self.seq,
                "t": round(time.perf_counter() - self._epoch, 6),
                "ts": round(time.time(), 6),
                "kind": kind,
            }
            if context is not None:
                record["trace_id"] = context.trace_id
                record["span_id"] = context.span_id
            # payload last: span_open/span_close carry their own
            # context fields, which win over the ambient stamp.
            record.update(payload)
            self.sink.write(json.dumps(record, separators=(",", ":")) + "\n")
            self.seq += 1

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


class MetricsObserver(Observer):
    """Update a :class:`MetricsRegistry` from the event stream.

    Metric names (see ``docs/OBSERVABILITY.md``):

    ======================  =========  ==================================
    ``chase.steps``         counter    rule applications recorded
    ``chase.retractions``   counter    steps with a proper simplification
    ``chase.atoms_retracted``  counter  total atoms removed by retractions
    ``chase.atoms``         gauge      atoms in the latest ``F_i``
    ``chase.retraction_size``  histogram  per-step retraction sizes
    ``trigger.selected``    counter    fair-scheduler selections
    ``trigger.retired``     counter    triggers leaving the active pool
    ``core.retractions``    counter    ``core_retraction`` calls
    ``core.variables_folded``  counter  variables folded away by cores
    ``core.time``           timer      time in ``core_retraction``
    ``core.maintained``     counter    incremental-maintainer calls
    ``core.skip_hits``      counter    certified variables skipped
    ``core.candidates_tried``  counter  per-variable fold searches run
    ``core.pairs_checked``  counter    escape-scan (old, delta) pins
    ``core.cert_invalidated``  counter  certificates invalidated by deltas
    ``core.clean_broken``   counter    steps that fell back to exact search
    ``hom.searches``        counter    single-witness searches
    ``hom.found``           counter    successful searches
    ``hom.backtracks``      counter    total undo operations
    ``hom.backtracks_per_search``  histogram  per-search backtracks
    ``hom.time``            timer      time in the search
    ``hom.memo_hits``       counter    memo-cache hits
    ``hom.memo_misses``     counter    memo-cache misses
    ``index.delta_atoms``   counter    atoms absorbed by the trigger index
    ``index.triggers_new``  counter    triggers found by delta re-matching
    ``index.triggers_reused``  counter  triggers carried over unchanged
    ``index.satisfaction_rechecks``  counter  satisfaction tests that ran
    ``index.collapsed``     counter    trigger keys folded by transport
    ``compiled.plans``      counter    rule bodies compiled to join plans
    ``compiled.delta_rounds``  counter  semi-naive delta rounds absorbed
    ``compiled.tuples``     gauge      interned tuples in the instance
    ``tw.searches``         counter    "width ≤ k?" decisions
    ``tw.budget_consumed``  counter    states consumed by the searches
    ``robust.steps``        counter    robust-sequence steps built
    ``robust.renamed``      counter    variables renamed by ``ρ_σ'``
    ``service.requests``    counter    requests accepted by the server
    ``service.coalesced``   counter    requests absorbed by in-flight dedup
    ``service.jobs``        counter    jobs finished
    ``service.job_errors``  counter    jobs that failed
    ``service.warm_hits``   counter    jobs warm-started from a snapshot
    ``service.warm_misses``  counter   jobs that chased cold
    ``service.incomplete``  counter    jobs degraded to partial answers
    ``service.deadline_expired``  counter  jobs halted by their deadline
    ``service.applications``  counter  new rule applications across jobs
    ``service.ancestor_resumes``  counter  jobs resumed from an ancestor
    ``service.job_seconds``  timer     job wall-clock latency
    ``service.job_latency``  histogram  per-job latency (LATENCY_BOUNDS)
    ``planner.verdicts``    counter    verdicts computed from scratch
    ``planner.cache_hits``  counter    verdicts served from a cache tier
    ``planner.strategy.<name>``  counter  jobs routed to each strategy
    ``query.plan_lookups``  counter    query-plan cache lookups
    ``query.plan_cache_hits``  counter  plans served from memory/store
    ``query.rewrites``      counter    rewriting saturations computed
    ``query.disjuncts_pruned``  counter  candidates dropped by subsumption
    ``query.rewrite_fallbacks``  counter  incomplete plans (race fallback)
    ``snapshot.loads``      counter    snapshot-store load attempts
    ``snapshot.hits``       counter    loads returning a usable state
    ``snapshot.corrupt``    counter    unreadable records discarded
    ``snapshot.saves``      counter    snapshot-store saves
    ``snapshot.evicted``    counter    snapshots evicted by LRU bounds
    ``snapshot.ancestor_probes``  counter  nearest-ancestor resolutions
    ``snapshot.ancestor_hits``  counter  resolutions that found an ancestor
    ``snapshot.chain_broken``  counter  delta chains dropped as corrupt
    ``snapshot.bytes_saved``  counter  bytes not written thanks to deltas
    ``snapshot.delta_chain_depth``  gauge  chain length last touched
    ``span.<name>``         timer      closed-span durations, per phase
    ======================  =========  ==================================

    (``service.queue_depth`` — a gauge — plus the ``service.retries``
    and ``service.pool_rebuilds`` counters are written directly by the
    executor into its own registry — they are supervisor state, so the
    observer deliberately does not double-count them from the
    ``service_retry`` / ``service_pool_rebuild`` events it traces.)
    """

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def chase_step_started(self, *, step, variant, atoms) -> None:
        self.registry.gauge("chase.atoms").set(atoms)

    def trigger_selected(self, *, step, rule, active) -> None:
        self.registry.counter("trigger.selected").inc()
        self.registry.gauge("chase.active_triggers").set(active)

    def trigger_retired(self, *, step, rule, reason, count=1) -> None:
        self.registry.counter("trigger.retired").inc(count)

    def chase_step_finished(
        self, *, step, rule, atoms_before, atoms_applied, atoms_after, retracted
    ) -> None:
        reg = self.registry
        reg.counter("chase.steps").inc()
        reg.gauge("chase.atoms").set(atoms_after)
        if retracted > 0:
            reg.counter("chase.retractions").inc()
            reg.counter("chase.atoms_retracted").inc(retracted)
        reg.histogram("chase.retraction_size").observe(retracted)

    def core_retraction(
        self, *, atoms_before, atoms_after, variables_folded, seconds
    ) -> None:
        reg = self.registry
        reg.counter("core.retractions").inc()
        reg.counter("core.variables_folded").inc(variables_folded)
        reg.timer("core.time").record(seconds)

    def core_maintenance(
        self,
        *,
        mode,
        atoms_before,
        atoms_after,
        folds,
        candidates_tried,
        skip_hits,
        seeded_searches,
        pairs_checked,
        cert_invalidated,
        clean_broken,
        seconds,
    ) -> None:
        reg = self.registry
        reg.counter("core.maintained").inc()
        reg.counter("core.skip_hits").inc(skip_hits)
        reg.counter("core.candidates_tried").inc(candidates_tried)
        reg.counter("core.pairs_checked").inc(pairs_checked)
        reg.counter("core.cert_invalidated").inc(cert_invalidated)
        if clean_broken:
            reg.counter("core.clean_broken").inc()

    def homomorphism_search(
        self, *, found, backtracks, source_atoms, target_atoms, seconds
    ) -> None:
        reg = self.registry
        reg.counter("hom.searches").inc()
        if found:
            reg.counter("hom.found").inc()
        reg.counter("hom.backtracks").inc(backtracks)
        reg.histogram("hom.backtracks_per_search").observe(backtracks)
        reg.timer("hom.time").record(seconds)

    def hom_memo_lookup(self, *, hit, entries) -> None:
        reg = self.registry
        if hit:
            reg.counter("hom.memo_hits").inc()
        else:
            reg.counter("hom.memo_misses").inc()
        reg.gauge("hom.memo_entries").set(entries)

    def trigger_index_update(
        self,
        *,
        step,
        delta_atoms,
        triggers_new,
        triggers_reused,
        satisfaction_rechecks,
        transported,
        collapsed,
    ) -> None:
        reg = self.registry
        reg.counter("index.delta_atoms").inc(delta_atoms)
        reg.counter("index.triggers_new").inc(triggers_new)
        reg.counter("index.triggers_reused").inc(triggers_reused)
        reg.counter("index.satisfaction_rechecks").inc(satisfaction_rechecks)
        reg.counter("index.collapsed").inc(collapsed)

    def compile(self, *, rule, body_atoms, variables) -> None:
        self.registry.counter("compiled.plans").inc()

    def join_plan(self, *, delta_atoms, plans_run, triggers_new, tuples) -> None:
        reg = self.registry
        reg.counter("compiled.delta_rounds").inc()
        reg.gauge("compiled.tuples").set(tuples)

    def service_request(self, *, op, coalesced) -> None:
        reg = self.registry
        reg.counter("service.requests").inc()
        if coalesced:
            reg.counter("service.coalesced").inc()

    def service_job(
        self,
        *,
        op,
        ok,
        warm,
        incomplete,
        deadline_expired,
        applications,
        seconds,
        ancestor=False,
    ) -> None:
        reg = self.registry
        reg.counter("service.jobs").inc()
        if not ok:
            reg.counter("service.job_errors").inc()
        if warm:
            reg.counter("service.warm_hits").inc()
        else:
            reg.counter("service.warm_misses").inc()
        if ancestor:
            reg.counter("service.ancestor_resumes").inc()
        if incomplete:
            reg.counter("service.incomplete").inc()
        if deadline_expired:
            reg.counter("service.deadline_expired").inc()
        reg.counter("service.applications").inc(applications)
        reg.timer("service.job_seconds").record(seconds)
        reg.histogram("service.job_latency", LATENCY_BOUNDS).observe(seconds)

    def planner_decision(
        self,
        *,
        strategy,
        cached,
        rules_fingerprint="",
        terminating=False,
        bts=False,
        k_bound=None,
    ) -> None:
        reg = self.registry
        if cached == "computed":
            reg.counter("planner.verdicts").inc()
        else:
            reg.counter("planner.cache_hits").inc()
        reg.counter(f"planner.strategy.{strategy}").inc()

    def query_rewrite(
        self,
        *,
        source,
        fragment="",
        complete=False,
        disjuncts=0,
        pruned=0,
    ) -> None:
        reg = self.registry
        reg.counter("query.plan_lookups").inc()
        if source == "computed":
            if fragment:
                reg.counter("query.rewrites").inc()
            reg.counter("query.disjuncts_pruned").inc(pruned)
        else:
            reg.counter("query.plan_cache_hits").inc()
        if fragment and not complete:
            reg.counter("query.rewrite_fallbacks").inc()

    def snapshot_access(
        self,
        *,
        op,
        hit,
        corrupt=False,
        atoms=0,
        seconds=0.0,
        chain_depth=0,
        chain_broken=False,
        bytes_saved=0,
        ancestor=False,
    ) -> None:
        reg = self.registry
        if op == "load":
            reg.counter("snapshot.loads").inc()
            if hit:
                reg.counter("snapshot.hits").inc()
            if corrupt:
                reg.counter("snapshot.corrupt").inc()
        elif op == "resolve":
            reg.counter("snapshot.ancestor_probes").inc()
            if hit:
                reg.counter("snapshot.ancestor_hits").inc()
        elif op == "evict":
            reg.counter("snapshot.evicted").inc()
        else:
            reg.counter("snapshot.saves").inc()
            if bytes_saved > 0:
                reg.counter("snapshot.bytes_saved").inc(bytes_saved)
        if chain_broken:
            reg.counter("snapshot.chain_broken").inc()
        if hit and chain_depth:
            reg.gauge("snapshot.delta_chain_depth").set(chain_depth)

    def treewidth_search(self, *, k, verdict, budget_consumed) -> None:
        reg = self.registry
        reg.counter("tw.searches").inc()
        reg.counter("tw.budget_consumed").inc(budget_consumed)

    def robust_step(self, *, step, renamed, atoms, stable_terms) -> None:
        reg = self.registry
        reg.counter("robust.steps").inc()
        reg.counter("robust.renamed").inc(renamed)

    def span_close(
        self,
        *,
        name,
        trace_id,
        span_id,
        parent_span_id=None,
        status="ok",
        seconds=0.0,
        **attrs,
    ) -> None:
        # Span names form a small closed set (request lifecycle phases),
        # so one timer per name stays bounded; workers ship these back
        # in their snapshot, giving the parent per-phase durations.
        self.registry.timer(f"span.{name}").record(seconds)


class TracingObserver(MetricsObserver):
    """Emit every event to a :class:`JsonlTracer` (and, optionally, into
    a metrics registry — pass ``registry=None`` to trace only)."""

    __slots__ = ("tracer",)

    def __init__(
        self, tracer: JsonlTracer, registry: Optional[MetricsRegistry] = None
    ):
        # `registry if ... is not None`, not `registry or`: a registry
        # with no instruments yet is empty and therefore falsy.
        super().__init__(
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self.tracer = tracer

    def chase_step_started(self, **kw) -> None:
        self.tracer.emit("chase_step_started", **kw)
        super().chase_step_started(**kw)

    def trigger_selected(self, **kw) -> None:
        self.tracer.emit("trigger_selected", **kw)
        super().trigger_selected(**kw)

    def trigger_retired(self, **kw) -> None:
        self.tracer.emit("trigger_retired", **kw)
        super().trigger_retired(**kw)

    def chase_step_finished(self, **kw) -> None:
        self.tracer.emit("chase_step_finished", **kw)
        super().chase_step_finished(**kw)

    def core_retraction(self, **kw) -> None:
        self.tracer.emit("core_retraction", **kw)
        super().core_retraction(**kw)

    def core_maintenance(self, **kw) -> None:
        self.tracer.emit("core_maintenance", **kw)
        super().core_maintenance(**kw)

    def homomorphism_search(self, **kw) -> None:
        self.tracer.emit("homomorphism_search", **kw)
        super().homomorphism_search(**kw)

    def hom_memo_lookup(self, **kw) -> None:
        self.tracer.emit("hom_memo_lookup", **kw)
        super().hom_memo_lookup(**kw)

    def trigger_index_update(self, **kw) -> None:
        self.tracer.emit("trigger_index_update", **kw)
        super().trigger_index_update(**kw)

    def compile(self, **kw) -> None:
        self.tracer.emit("compile", **kw)
        super().compile(**kw)

    def join_plan(self, **kw) -> None:
        self.tracer.emit("join_plan", **kw)
        super().join_plan(**kw)

    def service_request(self, **kw) -> None:
        self.tracer.emit("service_request", **kw)
        super().service_request(**kw)

    def service_job(self, **kw) -> None:
        self.tracer.emit("service_job", **kw)
        super().service_job(**kw)

    def service_retry(self, **kw) -> None:
        self.tracer.emit("service_retry", **kw)
        super().service_retry(**kw)

    def service_pool_rebuild(self, **kw) -> None:
        self.tracer.emit("service_pool_rebuild", **kw)
        super().service_pool_rebuild(**kw)

    def planner_decision(self, **kw) -> None:
        self.tracer.emit("planner_decision", **kw)
        super().planner_decision(**kw)

    def query_rewrite(self, **kw) -> None:
        self.tracer.emit("query_rewrite", **kw)
        super().query_rewrite(**kw)

    def snapshot_access(self, **kw) -> None:
        self.tracer.emit("snapshot_access", **kw)
        super().snapshot_access(**kw)

    def treewidth_search(self, **kw) -> None:
        self.tracer.emit("treewidth_search", **kw)
        super().treewidth_search(**kw)

    def robust_step(self, **kw) -> None:
        self.tracer.emit("robust_step", **kw)
        super().robust_step(**kw)

    def span_open(self, **kw) -> None:
        self.tracer.emit("span_open", **kw)
        super().span_open(**kw)

    def span_close(self, **kw) -> None:
        self.tracer.emit("span_close", **kw)
        super().span_close(**kw)


def _trace_lines(source: Union[str, IO[str], Iterable[str]]) -> list[str]:
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    elif hasattr(source, "read"):
        lines = source.readlines()
    else:
        lines = list(source)
    stripped = [line.strip() for line in lines]
    return [line for line in stripped if line]


def read_trace(source: Union[str, IO[str], Iterable[str]]) -> list[dict]:
    """Parse a JSONL trace from a path, open file, or iterable of lines.

    Blank lines are skipped; a malformed *final* line (a run cut short
    mid-write) is dropped, while malformed interior lines raise."""
    stripped = _trace_lines(source)
    events: list[dict] = []
    for index, line in enumerate(stripped):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(stripped) - 1:
                break  # torn final write
            raise
    return events


def read_trace_lenient(
    source: Union[str, IO[str], Iterable[str]],
) -> tuple[list[dict], int]:
    """Best-effort variant of :func:`read_trace` for offline analysis.

    Never raises on malformed content: every unparseable non-blank line
    is skipped (a crashed writer, interleaved writers, or a truncated
    copy can all leave torn lines anywhere, not just at the end).
    Returns ``(events, skipped)`` so callers can surface how much of the
    trace was unreadable."""
    events: list[dict] = []
    skipped = 0
    for line in _trace_lines(source):
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            skipped += 1
    return events, skipped

"""Incremental, exact maintenance of per-step core retractions.

The core chase retracts to a core after every rule application
(Definition 1), yet between two consecutive retractions the instance
changes only by the freshly applied trigger's atoms Δ.  Recomputing
``core_retraction(pre_instance)`` from scratch each step therefore
re-proves, for *every* variable of the instance, a fact that was already
certified one step earlier.  :class:`CoreMaintainer` keeps enough state
across steps to avoid that — while remaining **exact**: its result is a
genuine idempotent retraction onto a core, bit-for-bit a valid
simplification, differentially tested against the naive path (which
stays reachable via ``--no-core-maint`` / :func:`repro.logic.indexing.
no_index`).

Invariant and certificates
--------------------------
After step ``n`` the maintainer holds the certified core ``F_n`` and one
*certificate* per variable ``v`` of ``F_n``: the fingerprint of ``v``'s
atom neighborhood ``{a ∈ F_n : v ∈ a}`` at certification time.  On the
next call with ``pre = F_n ∪ Δ`` the certificates drive scheduling, and
three lemmas make the scheduling *sound* rather than heuristic:

**(L1) Cores are rigid.**  Every endomorphism of a finite core is an
automorphism (fold it to a retraction: on a core that retraction is the
identity, so some power of the endomorphism is the identity — it is
injective and surjective on terms).

**(L2) Escapes go through the delta.**  Let ``pre = F ∪ Δ`` with ``F`` a
core, and let ``h`` be an endomorphism of ``pre`` avoiding a variable
``v ∈ vars(F)``.  Then ``h`` maps some atom of ``F`` onto an atom of
``Δ \\ F``: otherwise ``h(F) ⊆ F``, so ``h|F`` is an endomorphism of the
core ``F``, by (L1) an automorphism — whose image contains every
variable of ``F``, contradicting that ``h`` avoids ``v``.  So to decide
removability of *all* old variables at once it suffices to enumerate,
for every (old atom ``a``, delta atom ``δ``) pair that unifies,
the endomorphisms of ``pre`` pinned with ``a ↦ δ``: if none of them is
*proper* (misses some variable), no old variable is removable — a
wholesale certification that replaces ``|vars(F)|`` individual searches
with a scan of the (usually tiny, often empty) set of unifiable pairs.

**(L3) Unremovability persists downward.**  If no endomorphism of ``A``
avoids ``v`` and ``B = g(A) ⊆ A`` for an endomorphism ``g`` with ``v``
in ``vars(B)``, then no endomorphism of ``B`` avoids ``v`` either
(compose with ``g``).  Failed searches are therefore never repeated
within a call, and certificates survive folds.

The scheduler
-------------
A call ``retract(pre, delta)`` with usable state runs three phases,
restarting after every fold (each fold strictly shrinks the variable
set, so the loop terminates):

1. **Fresh nulls first.**  Variables of ``Δ`` outside the certified core
   are the likely-removable ones.  Each search is first *seeded* with
   the identity on the certified variables (the untouched-atoms seed —
   typically succeeding or failing almost immediately), then, if the
   seeded attempt fails, repeated unrestricted — exactness is never
   entrusted to the seed.
2. **Delta-neighborhood probes.**  Certified variables whose Gaifman
   neighborhood intersects ``Δ`` get a cheap *seeded* probe (identity on
   the certified variables outside the delta neighborhood).  A failed
   probe proves nothing and is not trusted — phase 3 provides the proof.
3. **The escape scan (L2).**  Enumerate pinned endomorphisms per
   unifiable (old, delta) atom pair, up to :data:`PAIR_ENUM_CAP` per
   pair.  A proper one is a fold; exhausting every pair without one
   certifies **all** certified variables unremovable at once — the
   common "instance is already a core" step costs O(|Δ| · pairs), not
   O(vars × hom-search).

Whenever the certified part stops being pinned — a fold moves a
certified variable, the cap is hit, or the caller's delta does not match
the stored core — the maintainer falls back to exact unrestricted
per-variable search for everything not already proven under (L3).  The
fallback is the same single pass :func:`repro.logic.cores.core_retraction`
runs, so the worst case is the naive cost plus the cheap probes.

Retraction transport
--------------------
When the final retraction σ fires, certificates are σ-transported rather
than recomputed: if the certified part was never moved, a surviving
variable's neighborhood changed only where a surviving delta atom (or an
entry invalidation) touched it, so only those certificates are
refreshed; the rest carry over verbatim.  If the certified part *was*
moved, every certificate of the new core is recomputed — the regression
tests pin down the case where a certificate must be invalidated by a
retraction rather than an addition.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

from ..obs import observer as _observer_state
from . import homcache as _homcache
from . import indexing as _indexing
from .atoms import Atom
from .atomset import AtomSet
from . import compiled as _compiled
from .compiled import plans as _compiled_plans
from .cores import _fold_pass, _variable_order
from .homomorphism import find_homomorphism, homomorphisms
from .substitution import Substitution
from .terms import Constant, Term, Variable

__all__ = ["CoreMaintainer", "PAIR_ENUM_CAP"]

#: Endomorphism-enumeration budget per pinned (old, delta) atom pair in
#: the escape scan; hitting it abandons wholesale certification for this
#: step and falls back to exact per-variable search.
PAIR_ENUM_CAP = 64


def _neighborhood_fingerprint(atoms: AtomSet, var: Variable) -> tuple:
    """Order-independent digest of ``{a ∈ atoms : var ∈ a}`` — the
    certificate a variable's unremovability proof is filed under."""
    count = 0
    fp_xor = 0
    fp_sum = 0
    for at in atoms._containing_raw(var):
        h = at._hash
        count += 1
        fp_xor ^= h
        fp_sum = (fp_sum + h) & AtomSet._FP_MASK
    return (count, fp_xor, fp_sum)


def _unify_onto(source: Atom, target: Atom) -> Optional[Substitution]:
    """The substitution pinning ``source ↦ target`` argument-wise, or
    None when the two atoms do not unify that way (mirrors the trigger
    index's delta pinning)."""
    if source.predicate != target.predicate:
        return None
    binding: dict[Variable, Term] = {}
    for src_term, tgt_term in zip(source.args, target.args):
        if isinstance(src_term, Constant):
            if src_term != tgt_term:
                return None
            continue
        bound = binding.get(src_term)
        if bound is None:
            binding[src_term] = tgt_term
        elif bound != tgt_term:
            return None
    return Substitution(binding)


def _is_proper(endo: Substitution, variables: Iterable[Variable]) -> bool:
    """True iff *endo* misses some of *variables* in its image — i.e. it
    folds to a proper retraction."""
    image = {endo.apply_term(v) for v in variables}
    return any(v not in image for v in variables)


class CoreMaintainer:
    """Delta-aware, certificate-carrying core retraction (module
    docstring).  One maintainer serves one monotone-between-retractions
    instance sequence — the chase engine owns one per run."""

    def __init__(self) -> None:
        #: The core certified by the previous call (None before that).
        self.core: Optional[AtomSet] = None
        #: var -> neighborhood fingerprint it was certified under.
        self.certificates: dict[Variable, tuple] = {}
        #: Telemetry of the most recent :meth:`retract` call.
        self.last_stats: dict = {}

    # ------------------------------------------------------------------

    def retract(
        self,
        pre_instance: AtomSet,
        delta: Optional[Sequence[Atom]] = None,
    ) -> Substitution:
        """An exact core retraction of *pre_instance* (same contract as
        :func:`repro.logic.cores.core_retraction`), incremental when
        *delta* extends the previously certified core.

        *delta* are the atoms added since the last call (in application
        order); pass None — or anything inconsistent with the stored
        state — and the maintainer transparently runs the full pass.
        """
        observer = _observer_state.current
        started = time.perf_counter() if observer is not None else 0.0
        stats = {
            "mode": "full",
            "candidates_tried": 0,
            "seeded_searches": 0,
            "pairs_checked": 0,
            "pair_endomorphisms": 0,
            "cert_invalidated": 0,
            "skip_hits": 0,
            "folds": 0,
            "clean_broken": False,
        }

        usable = (
            delta is not None
            and self.core is not None
            and self._delta_extends_core(pre_instance, delta)
        )
        if usable:
            stats["mode"] = "incremental"
            total, current = self._incremental_pass(
                pre_instance, list(delta), stats
            )
        else:
            total, current = _fold_pass(pre_instance, _stats=stats)

        if total:
            sigma = total.fold_to_retraction(pre_instance)
            core = sigma.apply(pre_instance)
        else:
            sigma = total
            core = pre_instance
        # `core` equals `current` as a set: the idempotent fold of an
        # endomorphism onto a core retracts onto that same core (the
        # fold restricted to the core is a retraction of a core, hence
        # the identity).  Certificates are filed against `core`.
        self._refresh_certificates(core, stats)
        self.core = core
        self.last_stats = stats

        if observer is not None:
            seconds = time.perf_counter() - started
            observer.core_retraction(
                atoms_before=len(pre_instance),
                atoms_after=len(core),
                variables_folded=len(pre_instance.variables())
                - len(core.variables()),
                seconds=seconds,
            )
            observer.core_maintenance(
                mode=stats["mode"],
                atoms_before=len(pre_instance),
                atoms_after=len(core),
                folds=stats["folds"],
                candidates_tried=stats["candidates_tried"],
                skip_hits=stats["skip_hits"],
                seeded_searches=stats["seeded_searches"],
                pairs_checked=stats["pairs_checked"],
                cert_invalidated=stats["cert_invalidated"],
                clean_broken=stats["clean_broken"],
                seconds=seconds,
            )
        return sigma

    # ------------------------------------------------------------------
    # state validation
    # ------------------------------------------------------------------

    def _delta_extends_core(
        self, pre_instance: AtomSet, delta: Sequence[Atom]
    ) -> bool:
        """True iff ``pre_instance = stored core ⊎ delta`` — the
        precondition of every incremental lemma."""
        core = self.core
        fresh = [at for at in delta if at not in core]
        if len(core) + len(fresh) != len(pre_instance):
            return False
        if len(set(fresh)) != len(fresh):
            return False
        return core.issubset(pre_instance) and all(
            at in pre_instance for at in fresh
        )

    # ------------------------------------------------------------------
    # the incremental pass
    # ------------------------------------------------------------------

    def _incremental_pass(
        self, pre_instance: AtomSet, delta: list[Atom], stats: dict
    ) -> tuple[Substitution, AtomSet]:
        clean = self.core
        clean_vars = frozenset(clean.variables())
        dirty_atoms = [at for at in delta if at not in clean]

        # Entry invalidation: a certified variable occurring in a delta
        # atom no longer matches its certificate.  (Variables merely
        # *adjacent* to the delta keep valid certificates but are still
        # probed first — their neighborhood's neighborhood changed.)
        hot: set[Variable] = set()
        for at in dirty_atoms:
            hot.update(at.variables())
        invalidated = {v for v in hot if v in clean_vars}
        stats["cert_invalidated"] = len(invalidated)
        adjacent: set[Variable] = set()
        for at in dirty_atoms:
            for term in at.args:
                for neighbor in pre_instance._containing_raw(term):
                    adjacent.update(neighbor.variables())
        hot_clean = sorted(
            (adjacent | invalidated) & clean_vars,
            key=lambda v: (v.rank, v.name),
        )

        fresh_nulls = sorted(
            (v for v in pre_instance.variables() if v not in clean_vars),
            key=lambda v: (v.rank, v.name),
        )

        current = pre_instance
        total = Substitution.identity()
        proven: set[Variable] = set()  # unremovable, by (L3) forever
        probed: set[Variable] = set()  # certified vars given a phase-2 probe
        clean_ok = True  # certified part still untouched and pinned
        clean_seed = Substitution({v: v for v in clean_vars})
        probe_seed = clean_seed.without(hot_clean)

        def fold(shrink: Substitution) -> None:
            nonlocal current, total, clean_ok
            total = shrink.compose(total)
            shrunk = shrink.apply(current)
            if current is not pre_instance and _indexing.hom_memo_enabled():
                _homcache.get_cache().invalidate(current.fingerprint())
            current = shrunk
            stats["folds"] += 1
            if clean_ok and not all(
                shrink.apply_term(v) == v for v in clean_vars
            ):
                clean_ok = False
                stats["clean_broken"] = True

        while True:
            shrink = None
            live = current.variables()

            # Phase 1: fresh nulls — seeded first, then unrestricted.
            for var in fresh_nulls:
                if var in proven or var not in live:
                    continue
                stats["candidates_tried"] += 1
                hom = None
                if clean_ok:
                    stats["seeded_searches"] += 1
                    hom = find_homomorphism(
                        current,
                        current,
                        partial=clean_seed,
                        forbidden_images=[var],
                    )
                if hom is None:
                    hom = find_homomorphism(
                        current, current, forbidden_images=[var]
                    )
                if hom is None:
                    proven.add(var)
                else:
                    shrink = hom
                    break

            # Phase 2: certified variables adjacent to the delta — a
            # cheap seeded probe each; failure proves nothing (phase 3
            # carries the proof), success is a fold like any other.
            if shrink is None and clean_ok:
                for var in hot_clean:
                    if var in proven or var not in live:
                        continue
                    stats["candidates_tried"] += 1
                    stats["seeded_searches"] += 1
                    probed.add(var)
                    # Pin everything outside the delta neighborhood; the
                    # probed region stays free to move.
                    hom = find_homomorphism(
                        current,
                        current,
                        partial=probe_seed,
                        forbidden_images=[var],
                    )
                    if hom is not None:
                        shrink = hom
                        break

            # Phase 3: the escape scan (L2) — certifies every certified
            # variable wholesale, or finds the fold phase 2's seed hid.
            if shrink is None and clean_ok:
                shrink, certified = self._escape_scan(
                    current, clean, stats
                )
                if shrink is None:
                    if certified:
                        stats["skip_hits"] += sum(
                            1
                            for v in clean_vars
                            if v in live
                            and v not in proven
                            and v not in probed
                        )
                        break  # all fresh proven + all clean certified
                    clean_ok = False
                    stats["clean_broken"] = True

            # Fallback: the certified part moved or the scan gave up —
            # finish with exact unrestricted searches, skipping (L3)
            # facts already proven.
            if shrink is None and not clean_ok:
                for var in _variable_order(current):
                    if var in proven:
                        continue
                    stats["candidates_tried"] += 1
                    hom = find_homomorphism(
                        current, current, forbidden_images=[var]
                    )
                    if hom is None:
                        proven.add(var)
                    else:
                        shrink = hom
                        break
                if shrink is None:
                    break  # every variable proven unremovable

            if shrink is None:
                break
            fold(shrink)

        return total, current

    def _escape_scan(
        self, current: AtomSet, clean: AtomSet, stats: dict
    ) -> tuple[Optional[Substitution], bool]:
        """Search for a proper endomorphism of *current* through every
        unifiable (old atom, delta atom) pin (L2).

        Returns ``(fold, certified)``: a proper endomorphism and False,
        or ``(None, True)`` when the exhaustive scan proves no certified
        variable removable, or ``(None, False)`` when a pair exceeded
        :data:`PAIR_ENUM_CAP` enumerated endomorphisms.
        """
        current_vars = current.variables()
        dirty = [at for at in current.sorted_atoms() if at not in clean]
        if not dirty:
            return None, True

        # Compiled fast path (ISSUE 7): the scan runs one endomorphism
        # search per pin against the *same* source, so the pattern is
        # encoded once and each pinned search runs in int space, testing
        # properness on the live assignment (a proper endomorphism has
        # some variable code outside its own image) — a Substitution is
        # materialized only for the one fold actually returned.  Pin
        # order, enumeration order, cap semantics and stats are
        # identical to the object loop below (the compiled evaluator
        # replicates the indexed search witness-for-witness).
        compiled_on = (
            _indexing.compiled_enabled() and _indexing.atom_index_enabled()
        )
        if compiled_on:
            table = _compiled.symbol_table()
            encode_term = table.encode_term
            decode_term = table.decode_term
            encoded, var_codes = _compiled_plans.source_plan(
                current, current.sorted_atoms()
            )
            view = _compiled.compiled_view(current)

        seen_pins: set[Substitution] = set()
        for delta_atom in dirty:
            pool = clean._with_predicate_raw(delta_atom.predicate)
            for old_atom in sorted(pool, key=Atom.sort_key):
                if old_atom not in current:
                    continue  # folded away earlier in this call
                if not old_atom.variables():
                    continue  # ground atoms never witness an escape
                pin = _unify_onto(old_atom, delta_atom)
                if pin is None or pin in seen_pins:
                    continue
                seen_pins.add(pin)
                stats["pairs_checked"] += 1
                enumerated = 0
                if compiled_on:
                    seed = {
                        encode_term(v): encode_term(t)
                        for v, t in pin.items()
                    }
                    for assignment in _compiled_plans.run_plan(
                        encoded, view, seed, frozenset()
                    ):
                        enumerated += 1
                        stats["pair_endomorphisms"] += 1
                        image = {assignment[vc] for vc in var_codes}
                        if any(vc not in image for vc in var_codes):
                            endo = Substitution(
                                {
                                    decode_term(v): decode_term(t)
                                    for v, t in assignment.items()
                                    if v in var_codes
                                }
                            )
                            return endo, False
                        if enumerated >= PAIR_ENUM_CAP:
                            return None, False  # budget blown: fall back
                    continue
                for endo in homomorphisms(current, current, partial=pin):
                    enumerated += 1
                    stats["pair_endomorphisms"] += 1
                    if _is_proper(endo, current_vars):
                        return endo, False
                    if enumerated >= PAIR_ENUM_CAP:
                        return None, False  # budget blown: fall back
        return None, True

    # ------------------------------------------------------------------
    # certificate transport
    # ------------------------------------------------------------------

    def _refresh_certificates(self, core: AtomSet, stats: dict) -> None:
        """File certificates for the new *core*, recomputing only where
        the step could have changed a neighborhood.

        With the certified part untouched end-to-end (``clean_broken``
        False and an incremental pass), a surviving variable's
        neighborhood differs from its certificate only if a surviving
        non-clean atom mentions it — the clean atoms all survived
        verbatim.  Everything else transports.  Any other outcome
        (full pass, moved clean part) recomputes from scratch, which is
        exactly the retraction-invalidation rule the regression tests
        pin down.
        """
        transportable = (
            stats["mode"] == "incremental"
            and not stats["clean_broken"]
            and self.core is not None
        )
        refreshed: dict[Variable, tuple] = {}
        if transportable:
            clean = self.core
            touched: set[Variable] = set()
            for at in core:
                if at not in clean:
                    touched.update(at.variables())
            for var in core.variables():
                cert = self.certificates.get(var)
                if cert is not None and var not in touched:
                    refreshed[var] = cert  # σ-transported verbatim
                else:
                    refreshed[var] = _neighborhood_fingerprint(core, var)
        else:
            for var in core.variables():
                refreshed[var] = _neighborhood_fingerprint(core, var)
        self.certificates = refreshed

"""Homomorphism search between atomsets.

A homomorphism from atomset ``A`` to atomset ``B`` is a substitution ``π``
with ``π(A) ⊆ B`` (Section 2).  Homomorphisms are the single semantic
primitive of the paper: modelhood, universality, CQ entailment, trigger
existence and trigger satisfaction, cores — all reduce to (variants of)
the search implemented here.

The search is plain backtracking over the atoms of the source, made
practical by:

* candidate pools from the target's (predicate, position, term) index —
  every already-decided argument of a pattern atom narrows the pool to
  the target atoms carrying its image at that exact position (the legacy
  term-containment pools remain reachable via
  :func:`repro.logic.indexing.no_index` for differential testing);
* a selectivity-driven atom order (most-constrained atom first, i.e.
  smallest current candidate pool), which keeps the partial assignment
  propagating instead of guessing;
* cheap pre-checks (every source predicate must occur in the target);
* a fingerprint-keyed memo of single-witness searches
  (:mod:`repro.logic.homcache`), so deterministic re-runs — the
  entailment race, repeated certain-answer chases — pay for each
  distinct check once.

Three extra knobs cover every use in the library:

``partial``
    A substitution fixing the images of some source variables — trigger
    satisfaction (extend ``π`` from the body to body ∪ head) and CQ
    answering with distinguished variables use this.
``forbidden_images``
    Target terms that may not be used as images — the core computation
    asks for endomorphisms avoiding a given null.
``injective``
    Demand an injective term mapping — the isomorphism search builds on
    this.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Optional, Union

from ..obs import observer as _observer_state
from . import homcache as _homcache
from . import indexing as _indexing
from .atoms import Atom
from .compiled import plans as _plans
from .atomset import AtomSet
from .substitution import Substitution
from .terms import Constant, Term, Variable

__all__ = [
    "find_homomorphism",
    "homomorphisms",
    "count_homomorphisms",
    "maps_into",
    "homomorphically_equivalent",
]

AtomsLike = Union[AtomSet, Iterable[Atom]]


def _as_atom_list(atoms: AtomsLike) -> list[Atom]:
    if isinstance(atoms, AtomSet):
        return atoms.sorted_atoms()
    return sorted(set(atoms))


def homomorphisms(
    source: AtomsLike,
    target: AtomSet,
    partial: Optional[Substitution] = None,
    forbidden_images: Iterable[Term] = (),
    injective: bool = False,
    _stats: Optional[dict] = None,
) -> Iterator[Substitution]:
    """Iterate over all homomorphisms from *source* into *target*.

    Every yielded substitution has exactly the variables of *source* in
    its domain (bindings of *partial* for variables outside the source are
    re-attached so callers can keep composing).

    ``_stats`` is the telemetry hook: when a dict is passed, the search
    records its problem sizes and counts every undo of a tentative atom
    match under ``"backtracks"`` (:mod:`repro.obs`); when None — the
    default — the only cost is one identity check per undo.
    """
    if not isinstance(target, AtomSet):
        target = AtomSet(target)
    source_atoms = _as_atom_list(source)
    forbidden = set(forbidden_images)
    if _stats is not None:
        _stats.setdefault("backtracks", 0)
        _stats["source_atoms"] = len(source_atoms)
        _stats["target_atoms"] = len(target)

    # Compiled kernel (ISSUE 7): non-injective searches run as join
    # plans over interned int tuples.  The kernel replicates the
    # *indexed* pools/order/tie-breaks exactly — identical witnesses,
    # identical backtrack counts — so it only engages when the atom
    # index is the reference semantics; isomorphism searches
    # (``injective``) bail to the object path below.
    if (
        not injective
        and _indexing.compiled_enabled()
        and _indexing.atom_index_enabled()
    ):
        yield from _plans.compiled_homomorphisms(
            source_atoms,
            target,
            partial=partial,
            forbidden_images=forbidden,
            _stats=_stats,
            source_set=source if isinstance(source, AtomSet) else None,
        )
        return

    assignment: dict[Variable, Term] = {}
    if partial is not None:
        for var, term in partial.items():
            assignment[var] = term
    if forbidden and any(t in forbidden for t in assignment.values()):
        return
    if injective and len(set(assignment.values())) < len(assignment):
        return

    # Fail fast: a predicate of the source absent from the target kills
    # every candidate branch.
    for at in source_atoms:
        if target.count_with_predicate(at.predicate) == 0:
            return

    used_images: set[Term] = set(assignment.values()) if injective else set()
    source_vars = set()
    for at in source_atoms:
        source_vars.update(at.variables())

    if _indexing.atom_index_enabled():

        def candidates(at: Atom):
            """Candidate target atoms for *at* under the current
            assignment, narrowed through the positional index: every
            already-decided argument (constant or bound variable)
            restricts the pool to the atoms carrying its image at that
            exact position.  Pools are predicate-pure by construction
            and returned *unsorted* — only the pool of the atom the
            search actually branches on gets ordered."""
            pool: Optional[set[Atom]] = None
            for position, src_term in enumerate(at.args):
                if isinstance(src_term, Constant):
                    image: Optional[Term] = src_term
                else:
                    image = assignment.get(src_term)
                if image is None:
                    continue
                bucket = target._with_position_raw(at.predicate, position, image)
                pool = bucket if pool is None else (pool & bucket)
                if not pool:
                    return AtomSet._EMPTY
            if pool is None:
                return target._with_predicate_raw(at.predicate)
            return pool

        def ordered(pool) -> list[Atom]:
            return sorted(pool, key=Atom.sort_key)

    else:

        def candidates(at: Atom) -> list[Atom]:
            """The naive pools (term-containment index, filtered to the
            predicate, sorted eagerly) — kept reachable for differential
            testing against the indexed path."""
            pool: Optional[set[Atom]] = None
            for src_term in at.args:
                if isinstance(src_term, Constant):
                    image: Optional[Term] = src_term
                else:
                    image = assignment.get(src_term)
                if image is None:
                    continue
                bucket = target._containing_raw(image)
                pool = bucket if pool is None else (pool & bucket)
                if not pool:
                    return []
            if pool is None:
                pool = target._with_predicate_raw(at.predicate)
            matching = [cand for cand in pool if cand.predicate == at.predicate]
            matching.sort(key=Atom.sort_key)
            return matching

        def ordered(pool: list[Atom]) -> list[Atom]:
            return pool

    def match_atom(at: Atom, candidate: Atom) -> Optional[list[Variable]]:
        """Try to extend the assignment so that ``at ↦ candidate``.
        Return the list of newly bound variables, or None on clash."""
        newly_bound: list[Variable] = []
        for src_term, tgt_term in zip(at.args, candidate.args):
            if isinstance(src_term, Constant):
                if src_term != tgt_term:
                    _undo(newly_bound)
                    return None
                continue
            bound_value = assignment.get(src_term)
            if bound_value is not None:
                if bound_value != tgt_term:
                    _undo(newly_bound)
                    return None
                continue
            if tgt_term in forbidden:
                _undo(newly_bound)
                return None
            if injective and tgt_term in used_images:
                _undo(newly_bound)
                return None
            assignment[src_term] = tgt_term
            if injective:
                used_images.add(tgt_term)
            newly_bound.append(src_term)
        return newly_bound

    def _undo(newly_bound: list[Variable]) -> None:
        if _stats is not None:
            _stats["backtracks"] += 1
        for var in newly_bound:
            value = assignment.pop(var)
            if injective:
                used_images.discard(value)

    remaining = list(source_atoms)

    def search() -> Iterator[Substitution]:
        if not remaining:
            yield Substitution(
                {v: t for v, t in assignment.items() if v in source_vars}
            )
            return
        # Most-constrained-first: pick the remaining atom with the
        # smallest candidate pool (recomputed under the current
        # assignment — this is what makes dense instances tractable).
        best_index = 0
        best_pool = None
        for index, at in enumerate(remaining):
            pool = candidates(at)
            if best_pool is None or len(pool) < len(best_pool):
                best_index, best_pool = index, pool
                if not pool:
                    return  # dead end, no candidate for some atom
                if len(pool) == 1:
                    break
        chosen = remaining.pop(best_index)
        assert best_pool is not None
        for candidate in ordered(best_pool):
            newly_bound = match_atom(chosen, candidate)
            if newly_bound is None:
                continue
            yield from search()
            _undo(newly_bound)
        remaining.insert(best_index, chosen)

    yield from search()


def find_homomorphism(
    source: AtomsLike,
    target: AtomSet,
    partial: Optional[Substitution] = None,
    forbidden_images: Iterable[Term] = (),
    injective: bool = False,
) -> Optional[Substitution]:
    """Return one homomorphism from *source* to *target*, or None.

    The search is deterministic, so repeated calls return the same
    witness — the chase engine depends on this for reproducible runs,
    and the memo cache depends on it for transparency: a cached answer
    is bit-identical to what the search would have recomputed.
    """
    cache = key = None
    if (
        isinstance(source, AtomSet)
        and isinstance(target, AtomSet)
        and _indexing.hom_memo_enabled()
    ):
        cache = _homcache.get_cache()
        key = (
            source.fingerprint(),
            target.fingerprint(),
            partial,
            frozenset(forbidden_images),
            injective,
        )
        hit, value = cache.lookup(key)
        observer = _observer_state.current
        if observer is not None:
            observer.hom_memo_lookup(hit=hit, entries=len(cache))
        if hit:
            return value

    observer = _observer_state.current
    if observer is None:
        found = None
        for hom in homomorphisms(
            source,
            target,
            partial=partial,
            forbidden_images=forbidden_images,
            injective=injective,
        ):
            found = hom
            break
        if cache is not None:
            cache.store(key, found)
        return found
    stats: dict = {}
    started = time.perf_counter()
    found: Optional[Substitution] = None
    for hom in homomorphisms(
        source,
        target,
        partial=partial,
        forbidden_images=forbidden_images,
        injective=injective,
        _stats=stats,
    ):
        found = hom
        break
    observer.homomorphism_search(
        found=found is not None,
        backtracks=stats.get("backtracks", 0),
        source_atoms=stats.get("source_atoms", 0),
        target_atoms=stats.get("target_atoms", 0),
        seconds=time.perf_counter() - started,
    )
    if cache is not None:
        cache.store(key, found)
    return found


def count_homomorphisms(source: AtomsLike, target: AtomSet) -> int:
    """Count all homomorphisms from *source* to *target*."""
    return sum(1 for _ in homomorphisms(source, target))


def maps_into(source: AtomsLike, target: AtomSet) -> bool:
    """True iff *source* (homomorphically) maps to *target* — i.e.
    ``target ⊨ source`` when both are read as existentially closed
    conjunctions (Section 2)."""
    return find_homomorphism(source, target) is not None


def homomorphically_equivalent(left: AtomSet, right: AtomSet) -> bool:
    """True iff the two atomsets map into each other.

    Homomorphic equivalence is the right notion of "same content" for
    universal models: any two universal models of a KB are equivalent in
    this sense (used, e.g., in the proof of Proposition 5).
    """
    return maps_into(left, right) and maps_into(right, left)

"""Certain answers under existential rules.

A tuple of constants is a *certain answer* to a CQ with answer variables
iff the Boolean query obtained by instantiating the answer variables
with the tuple is entailed by the KB — equivalently, iff the tuple is an
answer over every model.  Over a (finitely) universal model this reduces
to: the tuple is an answer whose values are all constants (nulls are
model-specific and never certain).

Two evaluation routes are provided:

* :func:`certain_answers_over` — against a *given* universal structure
  (a terminated chase result, or any universal prefix for a sound
  under-approximation): enumerate answers, keep the all-constant ones;
* :func:`certain_answers` — against a KB directly: enumerate candidate
  tuples over the active domain (the constants of facts and rules) and
  decide each instantiated Boolean query with the Theorem-1 race.

The races of :func:`certain_answers` re-chase the *same* KB once per
candidate; their homomorphism tests (trigger satisfaction inside the
chase, the query probes against the aggregation) all route through
:func:`repro.logic.homomorphism.find_homomorphism` and therefore hit the
process-global fingerprint-keyed memo (:mod:`repro.logic.homcache`)
after the first candidate — the later races pay only for the searches
whose inputs genuinely differ (the instantiated query atoms).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Optional

from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.substitution import Substitution
from ..logic.terms import Constant
from .cq import ConjunctiveQuery
from .entailment import decide_entailment

__all__ = ["certain_answers_over", "certain_answers", "active_domain"]


def active_domain(kb: KnowledgeBase) -> list[Constant]:
    """The constants of the KB (facts and rules), sorted by name."""
    constants = set(kb.facts.constants())
    for rule in kb.rules:
        constants |= rule.constants()
    return sorted(constants, key=lambda c: c.name)


def certain_answers_over(
    query: ConjunctiveQuery, universal: AtomSet
) -> Iterator[tuple[Constant, ...]]:
    """Certain answers read off a universal (or finitely universal)
    structure: answers whose values are all constants.

    If *universal* is only a chase *prefix*, the result is a sound
    under-approximation (prefixes are universal, so every emitted tuple
    is certain; more may appear as the prefix grows).
    """
    if not query.answer_variables:
        raise ValueError("certain answers need answer variables; use holds_in")
    for answer in query.answers(universal):
        if all(isinstance(term, Constant) for term in answer):
            yield answer  # type: ignore[misc]


def certain_answers(
    kb: KnowledgeBase,
    query: ConjunctiveQuery,
    chase_budget: int = 100,
    model_domain_budget: int = 6,
    candidates: Optional[Iterable[tuple[Constant, ...]]] = None,
) -> dict[tuple[Constant, ...], Optional[bool]]:
    """Decide, per candidate tuple, whether it is a certain answer.

    Candidates default to all tuples over the active domain.  Returns a
    mapping tuple -> True / False / None (None when the race stayed
    undecided within its budgets).
    """
    if not query.answer_variables:
        raise ValueError("certain answers need answer variables")
    domain = active_domain(kb)
    if candidates is None:
        candidates = product(domain, repeat=len(query.answer_variables))
    verdicts: dict[tuple[Constant, ...], Optional[bool]] = {}
    for candidate in candidates:
        binding = Substitution(
            dict(zip(query.answer_variables, candidate))
        )
        instantiated = ConjunctiveQuery(
            binding.apply(query.atoms), name=f"{query.name or 'q'}{candidate}"
        )
        verdict = decide_entailment(
            kb,
            instantiated,
            chase_budget=chase_budget,
            model_domain_budget=model_domain_budget,
        )
        verdicts[tuple(candidate)] = verdict.entailed
    return verdicts

"""Tests for stickiness analysis and union queries."""

import pytest

from repro.analysis import is_sticky, sticky_marking
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import bts_not_fes_kb, transitive_closure_kb
from repro.kbs.witnesses import manager_kb
from repro.logic.parser import parse_atoms, parse_rules
from repro.logic.terms import Variable
from repro.query import (
    ConjunctiveQuery,
    UnionQuery,
    boolean_cq,
    decide_union_entailment,
)


class TestStickyMarking:
    def test_initial_marking_of_dropped_variables(self):
        rules = parse_rules("[R] p(X, Y) -> q(X)")
        marking = sticky_marking(rules)
        assert (0, Variable("Y")) in marking
        assert (0, Variable("X")) not in marking

    def test_propagation_through_positions(self):
        # R2 drops V (marked); V sits at b[1]; R1's head has frontier Y at
        # b[1], so Y gets marked in R1 as well.
        rules = parse_rules(
            """
            [R1] a(X, Y) -> b(X, Y)
            [R2] b(U, V) -> d(U)
            """
        )
        marking = sticky_marking(rules)
        assert (1, Variable("V")) in marking
        assert (0, Variable("Y")) in marking


class TestIsSticky:
    def test_linear_rules_are_sticky(self):
        assert is_sticky(bts_not_fes_kb().rules)

    def test_transitive_closure_not_sticky(self):
        # the join variable Y is dropped from the head and repeats
        assert not is_sticky(transitive_closure_kb(2).rules)

    def test_join_preserved_in_head_is_sticky(self):
        rules = parse_rules("[R] p(X, Y), q(Y, Z) -> s(X, Y, Z)")
        assert is_sticky(rules)

    def test_join_dropped_from_head_not_sticky(self):
        rules = parse_rules("[R] p(X, Y), q(Y, Z) -> s(X, Z)")
        assert not is_sticky(rules)

    def test_staircase_not_sticky(self):
        # K_h's rules join loop variables heavily
        assert not is_sticky(staircase_kb().rules)

    def test_repeated_unmarked_variable_is_fine(self):
        # X repeats in the body but is fully propagated to the head
        rules = parse_rules("[R] p(X, X) -> q(X, X)")
        assert is_sticky(rules)


class TestUnionQuery:
    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionQuery([])

    def test_non_boolean_disjunct_rejected(self):
        q = ConjunctiveQuery("p(X)", answer_variables=[Variable("X")])
        with pytest.raises(ValueError):
            UnionQuery([q])

    def test_holds_if_any_disjunct_holds(self):
        union = UnionQuery([boolean_cq("p(X)"), boolean_cq("q(X)")])
        assert union.holds_in(parse_atoms("q(a)"))
        assert not union.holds_in(parse_atoms("r(a)"))

    def test_entailed_union_decided_yes(self):
        union = UnionQuery([boolean_cq("mgr(X, ann)"), boolean_cq("mgr(ann, X)")])
        verdict = decide_union_entailment(manager_kb(), union, chase_budget=20)
        assert verdict.entailed is True

    def test_refuted_union_needs_joint_countermodel(self):
        union = UnionQuery(
            [boolean_cq("mgr(X, ann)"), boolean_cq("emp(X), mgr(X, X)")]
        )
        verdict = decide_union_entailment(manager_kb(), union, chase_budget=15)
        assert verdict.entailed is False
        assert verdict.countermodel is not None
        assert not union.holds_in(verdict.countermodel)

    def test_singleton_union_behaves_like_cq(self):
        kb = transitive_closure_kb(3)
        union = UnionQuery([boolean_cq("e(v0, v3)")])
        assert decide_union_entailment(kb, union).entailed is True

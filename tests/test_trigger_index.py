"""Unit tests for the incremental trigger index and the homomorphism
memo — in particular their behaviour under core retraction."""

import pytest

from repro.chase.engine import ChaseEngine, ChaseVariant
from repro.chase.trigger import Trigger, apply_trigger, triggers, triggers_from_delta
from repro.chase.trigger_index import TriggerIndex
from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import random_kb, star_instance
from repro.kbs.staircase import staircase_kb
from repro.logic.cores import core_retraction
from repro.logic.homcache import HomomorphismCache, get_cache, set_cache
from repro.logic.homomorphism import find_homomorphism
from repro.logic.parser import parse_atoms, parse_rules
from repro.logic.substitution import Substitution
from repro.logic.terms import FreshVariableSource


def rescan(rules, instance):
    """The naive trigger pool the index must always agree with."""
    return {
        TriggerIndex.key(trigger)
        for rule in rules
        for trigger in triggers(rule, instance)
    }


def rescan_satisfied(rules, instance):
    return {
        TriggerIndex.key(trigger)
        for rule in rules
        for trigger in triggers(rule, instance)
        if trigger.is_satisfied_in(instance)
    }


class TestTriggersFromDelta:
    def test_finds_exactly_the_delta_touching_triggers(self):
        rules = parse_rules("[R] e(X, Y), e(Y, Z) -> e(X, Z)")
        rule = rules[0]
        instance = parse_atoms("e(a, b), e(b, c)").copy()
        old = {tr.mapping for tr in triggers(rule, instance)}
        delta = list(parse_atoms("e(c, d)"))
        for at in delta:
            instance.add(at)
        from_delta = {tr.mapping for tr in triggers_from_delta(rule, instance, delta)}
        rescanned = {tr.mapping for tr in triggers(rule, instance)}
        assert old | from_delta == rescanned
        assert all(mapping not in old for mapping in from_delta)

    def test_repeated_variable_unification_respects_equality(self):
        rules = parse_rules("[R] e(X, X) -> p(X, X)")
        rule = rules[0]
        instance = parse_atoms("e(a, b)").copy()
        delta = list(parse_atoms("e(c, c)"))
        for at in delta:
            instance.add(at)
        found = list(triggers_from_delta(rule, instance, delta))
        assert len(found) == 1
        ((_, image),) = list(found[0].mapping.items())
        assert image.name == "c"


class TestTriggerIndexMaintenance:
    def step_and_check(self, kb, variant, max_steps=8):
        """Drive the index through an actual engine run, rescanning the
        pool from scratch after every recorded step."""
        engine = ChaseEngine(kb, variant=variant)
        mismatches = []

        def on_step(step):
            index = getattr(engine, "_index", None)
            if index is None or step.index == 0:
                return
            expected = rescan(kb.rules, step.instance)
            if set(index._live.keys()) != expected:
                mismatches.append((step.index, "live"))
            if index.track_satisfaction:
                if index._satisfied != rescan_satisfied(kb.rules, step.instance):
                    mismatches.append((step.index, "satisfied"))

        engine.run(max_steps=max_steps, on_step=on_step)
        assert mismatches == []

    @pytest.mark.parametrize(
        "variant",
        [
            ChaseVariant.OBLIVIOUS,
            ChaseVariant.SEMI_OBLIVIOUS,
            ChaseVariant.RESTRICTED,
            ChaseVariant.FRUGAL,
            ChaseVariant.CORE,
        ],
    )
    def test_pool_tracks_rescan_on_random_kbs(self, variant):
        for seed in range(6):
            kb = random_kb(rule_count=3, fact_count=5, term_pool=3, seed=seed)
            self.step_and_check(kb, variant)

    def test_pool_tracks_rescan_on_elevator_core(self):
        self.step_and_check(elevator_kb(), ChaseVariant.CORE, max_steps=10)

    def test_transport_collapse_adopts_the_counterpart_satisfaction(self):
        """Folding an unsatisfied trigger's frontier onto better-served
        terms collapses it onto its (satisfied) counterpart; the
        transported pool must mark it satisfied, exactly as a from-
        scratch recomputation would."""
        rules = parse_rules("[R] p(X) -> q(X, Y)")
        rule = rules[0]
        instance = parse_atoms("p(N1), p(b), q(b, c)").copy()
        index = TriggerIndex([rule], instance, track_satisfaction=True)
        assert len(index) == 2
        assert len(index.unsatisfied_triggers()) == 1  # the N1 trigger
        n1 = next(iter(parse_atoms("p(N1)").variables()))
        b = next(iter(parse_atoms("p(b)").constants()))
        sigma = Substitution({n1: b})
        retracted = sigma.apply(instance)
        stats = index.transport(sigma)
        assert stats["transported"] == 2
        assert stats["collapsed"] == 1
        assert set(index._live.keys()) == rescan([rule], retracted)
        assert index._satisfied == rescan_satisfied([rule], retracted)
        assert index.unsatisfied_triggers() == []

    def test_apply_delta_matches_manual_application(self):
        kb = random_kb(rule_count=2, fact_count=4, seed=2)
        instance = kb.facts.copy()
        index = TriggerIndex(kb.rules, instance)
        fresh = FreshVariableSource(prefix="_t")
        pool = index.live_triggers()
        assert pool, "seed 2 is known to produce initial triggers"
        chosen = sorted(pool, key=Trigger.sort_key)[0]
        grown, pi_safe = apply_trigger(instance, chosen, fresh)
        delta = [
            at
            for at in sorted(
                {pi_safe.apply_atom(h) for h in chosen.rule.head.sorted_atoms()},
                key=lambda a: a.sort_key(),
            )
            if at not in instance
        ]
        stats = index.apply_delta(grown, delta, satisfied_hint=chosen)
        assert stats["delta_atoms"] == len(delta)
        assert set(index._live.keys()) == rescan(kb.rules, grown)
        assert index._satisfied == rescan_satisfied(kb.rules, grown)


class TestHomomorphismCache:
    def setup_method(self):
        self._previous = set_cache(HomomorphismCache(max_entries=8))

    def teardown_method(self):
        set_cache(self._previous)

    def test_memo_hit_on_repeated_search(self):
        cache = get_cache()
        source = parse_atoms("e(X, Y)")
        target = parse_atoms("e(a, b)")
        first = find_homomorphism(source, target)
        assert first is not None
        assert cache.misses >= 1
        hits_before = cache.hits
        second = find_homomorphism(source, target)
        assert second == first
        assert cache.hits == hits_before + 1

    def test_negative_results_are_cached_too(self):
        cache = get_cache()
        source = parse_atoms("e(X, X)")
        target = parse_atoms("e(a, b)")
        assert find_homomorphism(source, target) is None
        hits_before = cache.hits
        assert find_homomorphism(source, target) is None
        assert cache.hits == hits_before + 1

    def test_mutation_changes_fingerprint_and_misses(self):
        cache = get_cache()
        source = parse_atoms("e(X, X)")
        target = parse_atoms("e(a, b)").copy()
        assert find_homomorphism(source, target) is None
        for at in parse_atoms("e(c, c)"):
            target.add(at)
        assert find_homomorphism(source, target) is not None
        assert cache.hits == 0  # the grown target is a different key

    def test_invalidate_drops_entries_of_a_fingerprint(self):
        cache = get_cache()
        source = parse_atoms("e(X, Y)")
        target = parse_atoms("e(a, b)")
        find_homomorphism(source, target)
        assert len(cache) == 1
        dropped = cache.invalidate(target.fingerprint())
        assert dropped == 1
        assert len(cache) == 0
        assert cache.invalidations == 1
        hit, _ = cache.lookup(
            (source.fingerprint(), target.fingerprint(), None, frozenset(), False)
        )
        assert not hit

    def test_eviction_keeps_the_cache_bounded(self):
        cache = get_cache()
        for i in range(40):
            find_homomorphism(
                parse_atoms(f"p(c{i})"), parse_atoms(f"p(c{i}), p(d{i})")
            )
        assert len(cache) <= cache.max_entries

    def test_core_retraction_invalidates_intermediate_retracts(self, monkeypatch):
        """core_retraction invalidates the memo entries of every
        *intermediate* retract it folds through, keeping the caller's
        input cached (it is still live).  A sequential one-null-per-step
        folder is injected, since the real search usually folds
        everything in a single endomorphism."""
        import repro.logic.cores as cores_module

        class RecordingCache(HomomorphismCache):
            invalidated: list

            def __init__(self):
                super().__init__()
                self.invalidated = []

            def invalidate(self, fingerprint):
                self.invalidated.append(fingerprint)
                return super().invalidate(fingerprint)

        cache = RecordingCache()
        set_cache(cache)

        def single_fold(source, target, **kwargs):
            nulls = sorted(source.variables(), key=lambda v: v.name)
            if len(nulls) <= 1:
                return None
            return Substitution({nulls[0]: nulls[1]})

        monkeypatch.setattr(cores_module, "find_homomorphism", single_fold)
        star = star_instance(3)  # e(hub, R0..R2): folds R0->R1, R1->R2
        intermediate = parse_atoms("e(hub, R1), e(hub, R2)")
        core_retraction(star)
        assert cache.invalidated == [intermediate.fingerprint()]
        assert star.fingerprint() not in cache.invalidated

    def test_indexed_core_chase_invalidates_retracted_pre_instances(self):
        cache = get_cache()
        result = ChaseEngine(staircase_kb(), variant=ChaseVariant.CORE).run(
            max_steps=12
        )
        retracting = [
            step
            for step in result.derivation.steps
            if step.trigger is not None and not step.is_identity_step()
        ]
        assert retracting, "workload must retract for this test to bite"
        for step in retracting:
            assert step.pre_instance.fingerprint() not in cache._by_fingerprint

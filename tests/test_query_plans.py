"""Tests for compiled query plans (repro.query.plans), the plan-cache
tiers, and the ``batch_entail`` service path."""

import asyncio
import json

import pytest

from repro.kbs.generators import layered_kb
from repro.kbs.witnesses import manager_kb, transitive_closure_kb
from repro.logic.parser import parse_atoms
from repro.logic.serialization import dump_kb
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import observing
from repro.obs.tracer import MetricsObserver
from repro.query import (
    CompiledQueryPlan,
    QueryPlanCache,
    boolean_cq,
    query_shape,
)
from repro.service.jobs import JobRequest, execute_job
from repro.service.snapshots import SnapshotStore

MANAGERS = dump_kb(manager_kb())
TC = dump_kb(transitive_closure_kb(3))


class TestQueryShape:
    def test_alpha_variants_share_a_shape(self):
        a = query_shape(boolean_cq("mgr(X, Y), emp(Y)").atoms)
        b = query_shape(boolean_cq("mgr(U, V), emp(V)").atoms)
        assert a == b

    def test_different_join_patterns_differ(self):
        a = query_shape(boolean_cq("mgr(X, Y), emp(Y)").atoms)
        b = query_shape(boolean_cq("mgr(X, Y), emp(X)").atoms)
        assert a != b

    def test_constants_are_not_variables(self):
        a = query_shape(boolean_cq("mgr(ann, Y)").atoms)
        b = query_shape(boolean_cq("mgr(X, Y)").atoms)
        assert a != b
        assert "c:ann" in a

    def test_shape_ignores_atom_order(self):
        a = query_shape(boolean_cq("emp(Y), mgr(X, Y)").atoms)
        b = query_shape(boolean_cq("mgr(X, Y), emp(Y)").atoms)
        assert a == b


class TestPlanRoundTrip:
    def test_plan_survives_catalog_json(self):
        cache = QueryPlanCache()
        plan = cache.plan_for(manager_kb(), boolean_cq("mgr(X, Y)"))
        back = CompiledQueryPlan.from_obj(
            json.loads(json.dumps(plan.to_obj()))
        )
        assert back.fragment == plan.fragment
        assert back.complete == plan.complete
        assert len(back.disjuncts) == len(plan.disjuncts)
        facts = manager_kb().facts
        assert back.evaluate(facts) == plan.evaluate(facts) is True

    def test_malformed_payload_raises_value_error(self):
        with pytest.raises(ValueError):
            CompiledQueryPlan.from_obj({"disjuncts": [["not", "a", "str"]]})

    def test_negative_plan_answers_none(self):
        cache = QueryPlanCache()
        plan = cache.plan_for(transitive_closure_kb(2), boolean_cq("e(X, Y)"))
        assert not plan.rewritable
        assert plan.evaluate(transitive_closure_kb(2).facts) is None


class TestCacheTiers:
    def test_memory_tier_hits_for_alpha_variants(self):
        cache = QueryPlanCache()
        kb = manager_kb()
        first = cache.plan_for(kb, boolean_cq("mgr(X, Y)"))
        second = cache.plan_for(kb, boolean_cq("mgr(A, B)"))
        assert second is first  # same object: compiled joins stay warm
        assert cache.lookups == 2 and cache.hits == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_store_tier_survives_a_fresh_process_cache(self, tmp_path):
        store = SnapshotStore(tmp_path)
        kb = manager_kb()
        warm = QueryPlanCache(store=store)
        warm.plan_for(kb, boolean_cq("mgr(X, Y)"))
        # a second in-process cache simulates another pool worker
        cold = QueryPlanCache(store=store)
        plan = cold.plan_for(kb, boolean_cq("mgr(U, V)"))
        assert cold.hits == 1
        assert plan.evaluate(kb.facts) is True

    def test_ruleset_change_invalidates(self, tmp_path):
        store = SnapshotStore(tmp_path)
        cache = QueryPlanCache(store=store)
        query = boolean_cq("l4(X)")
        shallow = cache.plan_for(layered_kb(2), query)
        deep = cache.plan_for(layered_kb(4), query)
        # different fingerprints: the deeper ruleset recomputes and the
        # two plans coexist under distinct keys
        assert cache.hits == 0
        assert len(cache) == 2
        assert len(deep.disjuncts) != len(shallow.disjuncts)

    def test_corrupt_store_row_is_a_miss_not_a_crash(self, tmp_path):
        store = SnapshotStore(tmp_path)
        kb = manager_kb()
        seeded = QueryPlanCache(store=store)
        plan = seeded.plan_for(kb, boolean_cq("mgr(X, Y)"))
        from repro.analysis.planner import ruleset_fingerprint

        fp = ruleset_fingerprint(kb.rules)
        shape = query_shape(boolean_cq("mgr(X, Y)").atoms)
        store.save_query_plan(fp, shape, {"disjuncts": [[1, 2]]})
        fresh = QueryPlanCache(store=store)
        recomputed = fresh.plan_for(kb, boolean_cq("mgr(X, Y)"))
        assert fresh.hits == 0  # corrupt row did not count as a hit
        assert recomputed.evaluate(kb.facts) == plan.evaluate(kb.facts)

    def test_memory_lru_evicts_oldest(self):
        cache = QueryPlanCache(memory_limit=2)
        kb = manager_kb()
        cache.plan_for(kb, boolean_cq("mgr(X, Y)"))
        cache.plan_for(kb, boolean_cq("emp(X)"))
        cache.plan_for(kb, boolean_cq("mgr(ann, Y)"))
        assert len(cache) == 2
        cache.plan_for(kb, boolean_cq("mgr(X, Y)"))  # evicted: recompute
        assert cache.hits == 0

    def test_lookups_emit_observer_events(self):
        registry = MetricsRegistry()
        cache = QueryPlanCache()
        kb = manager_kb()
        with observing(MetricsObserver(registry)):
            cache.plan_for(kb, boolean_cq("mgr(X, Y)"))
            cache.plan_for(kb, boolean_cq("mgr(U, V)"))
        snap = registry.snapshot()
        assert snap["query.plan_lookups"]["value"] == 2
        assert snap["query.rewrites"]["value"] == 1
        assert snap["query.plan_cache_hits"]["value"] == 1


class TestBatchEntailJob:
    def test_mixed_batch_over_rewritable_kb(self):
        result = execute_job(
            JobRequest(
                op="batch_entail",
                kb_text=MANAGERS,
                queries=["mgr(X, Y)", "emp(X), mgr(X, X)", "nosuch(X)"],
                planner=True,
                max_steps=60,
                model_budget=4,
            )
        )
        assert result.ok
        assert result.op == "batch_entail"
        assert result.strategy == "rewrite-first"
        answers = {r["query"]: r["entailed"] for r in result.results}
        assert answers["mgr(X, Y)"] is True
        assert answers["nosuch(X)"] is False
        methods = {r["query"]: r["method"] for r in result.results}
        assert methods["mgr(X, Y)"] == "ucq-rewrite-hit"
        assert methods["nosuch(X)"] == "ucq-rewrite-miss"

    def test_batch_on_terminating_kb_settles_all_from_one_chase(self):
        result = execute_job(
            JobRequest(
                op="batch_entail",
                kb_text=TC,
                queries=["e(v0, v3)", "e(v3, v0)", "e(v0, X), e(X, v3)"],
                max_steps=200,
            )
        )
        assert result.ok and result.terminated
        answers = [r["entailed"] for r in result.results]
        assert answers == [True, False, True]
        miss = result.results[1]
        assert miss["method"] == "chase-fixpoint-miss"
        assert not result.incomplete

    def test_batch_verdicts_match_single_query_jobs(self):
        queries = ["e(v0, v2)", "e(v2, v0)", "e(X, X)"]
        batch = execute_job(
            JobRequest(op="batch_entail", kb_text=TC, queries=queries)
        )
        for row in batch.results:
            single = execute_job(
                JobRequest(op="entail", kb_text=TC, query=row["query"])
            )
            assert row["entailed"] == single.entailed, row["query"]

    def test_batch_reuses_warm_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        chase = JobRequest(op="chase", kb_text=TC, max_steps=200)
        assert execute_job(chase, store=store).ok
        result = execute_job(
            JobRequest(
                op="batch_entail",
                kb_text=TC,
                queries=["e(v0, v3)", "e(v3, v0)"],
                max_steps=200,
            ),
            store=store,
        )
        assert result.warm
        assert result.applications == 0
        answers = [r["entailed"] for r in result.results]
        assert answers == [True, False]
        assert result.results[0]["method"] == "warm-snapshot-hit"

    def test_empty_batch_is_error_result(self):
        result = execute_job(
            JobRequest(op="batch_entail", kb_text=MANAGERS, queries=[])
        )
        assert not result.ok
        assert "queries" in result.error

    def test_expired_deadline_leaves_open_queries_incomplete(self):
        result = execute_job(
            JobRequest(
                op="batch_entail",
                kb_text=dump_kb(transitive_closure_kb(6)),
                queries=["e(v0, v6)", "e(v6, v0)"],
                timeout=0.0,
                max_steps=500,
            )
        )
        assert result.ok
        assert result.deadline_expired and result.incomplete
        for row in result.results:
            assert row["entailed"] is None
            assert row["method"] == "deadline-expired"
            assert row["incomplete"]

    def test_request_round_trip_with_queries(self):
        req = JobRequest(
            op="batch_entail",
            kb_text=MANAGERS,
            queries=["mgr(X, Y)", "emp(X)"],
            rewrite=True,
        )
        back = JobRequest.from_obj(req.to_obj())
        assert back == req
        assert back.dedup_key() == req.dedup_key()
        other = JobRequest(
            op="batch_entail", kb_text=MANAGERS, queries=["emp(X)"]
        )
        assert other.dedup_key() != req.dedup_key()


class TestRewriteRouting:
    def test_explicit_rewrite_false_forces_chase(self):
        result = execute_job(
            JobRequest(
                op="entail",
                kb_text=MANAGERS,
                query="mgr(X, Y)",
                planner=True,
                rewrite=False,
            )
        )
        assert result.entailed is True
        assert result.method == "chase-prefix-hit"

    def test_planner_routes_rewrite_hit_with_zero_applications(self):
        result = execute_job(
            JobRequest(
                op="entail", kb_text=MANAGERS, query="mgr(X, Y)", planner=True
            )
        )
        assert result.entailed is True
        assert result.method == "ucq-rewrite-hit"
        assert result.strategy == "rewrite-first"
        assert not result.applications

    def test_explicit_rewrite_true_without_planner(self):
        result = execute_job(
            JobRequest(
                op="entail", kb_text=MANAGERS, query="nosuch(X)", rewrite=True
            )
        )
        assert result.entailed is False
        assert result.method == "ucq-rewrite-miss"

    def test_inconclusive_rewrite_falls_back_to_race(self):
        # transitive closure is not rewritable: rewrite=True must not
        # change the verdict, only fail over to the race.
        result = execute_job(
            JobRequest(
                op="entail",
                kb_text=TC,
                query="e(v0, v3)",
                rewrite=True,
                max_steps=200,
            )
        )
        assert result.entailed is True
        assert result.method == "chase-prefix-hit"


class TestServerBatchOp:
    def test_batch_entail_over_the_wire_and_stats(self, tmp_path):
        from tests.test_service_server import (
            request_lines,
            shut_down,
            start_server,
        )

        async def scenario():
            server, executor, task = await start_server(tmp_path)
            [batch] = await request_lines(
                server.port,
                [
                    {
                        "op": "batch_entail",
                        "kb_text": MANAGERS,
                        "queries": ["mgr(X, Y)", "nosuch(X)"],
                        "planner": True,
                        "id": "b1",
                    }
                ],
            )
            # stats only after the batch response: the counters are live
            [stats] = await request_lines(
                server.port, [{"op": "stats", "id": "s"}]
            )
            await shut_down(server, executor, task)
            return batch, stats

        batch, stats = asyncio.run(scenario())
        assert batch["id"] == "b1" and batch["ok"]
        answers = [r["entailed"] for r in batch["results"]]
        assert answers == [True, False]
        query_stats = stats["query"]
        assert query_stats["plan_lookups"] >= 2
        assert query_stats["rewrites"] >= 1

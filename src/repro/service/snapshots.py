"""A content-addressed store of resumable chase checkpoints.

The serving system's warm-start path: after answering a job the worker
exports the engine's :class:`~repro.chase.engine.ChaseState` and files
it here; the next job over the same KB (and chase configuration)
restores it and resumes instead of re-chasing from the facts.  Because
:meth:`~repro.chase.engine.ChaseEngine.restore_state` continues the
derivation *exactly*, answers computed from a snapshot are
indistinguishable from cold ones (the differential suite in
``tests/test_service_snapshots.py`` checks this on every KB family).

Keys and invalidation
---------------------
A snapshot is valid only for the precise KB it was exported under, so
the key bakes in everything that shapes the derivation:

``key = sha256(schema | variant | core_every | kb_fingerprint)``

where :func:`kb_fingerprint` hashes the canonical text of the facts
(sorted atoms) and rules.  Editing a fact or a rule changes the
fingerprint, which changes the key — stale snapshots are never *read*,
they are simply orphaned (and overwritten only by their own
configuration).  A schema-version bump orphans every older snapshot the
same way.  Corrupt or torn files are discarded on load and reported via
the :meth:`~repro.obs.Observer.snapshot_access` telemetry event.

Storage format
--------------
One JSON file per key under the store root: a small envelope
(``schema``, ``kb_fingerprint`` for a defense-in-depth recheck) around
the tagged-object serialization of the state
(:mod:`repro.logic.serialization` — the text DSL cannot express
engine-invented nulls, the tagged form can).  Writes go through a
temp-file + :func:`os.replace` so readers never observe a half-written
snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Optional, Union

from ..chase.engine import ChaseState
from ..logic.kb import KnowledgeBase
from ..logic.serialization import (
    atom_from_obj,
    atom_to_obj,
    dump_instance,
    dump_ruleset,
    instance_from_obj,
    instance_to_obj,
    term_from_obj,
    term_to_obj,
)
from ..obs import observer as _observer_state

__all__ = [
    "SNAPSHOT_SCHEMA",
    "TMP_ORPHAN_GRACE",
    "kb_fingerprint",
    "snapshot_key",
    "chase_state_to_obj",
    "chase_state_from_obj",
    "SnapshotStore",
]

#: Bump when the on-disk layout changes; old snapshots are then orphaned
#: (never mis-read) because the schema participates in the key.
SNAPSHOT_SCHEMA = 1

PathLike = Union[str, pathlib.Path]


def kb_fingerprint(kb: KnowledgeBase) -> str:
    """A canonical content hash of *kb* (facts + rules, order-free).

    The fingerprint is over the deterministic text serialization —
    sorted atoms, rules in declaration order — so two KBs with the same
    facts and rules hash identically however they were constructed.
    The KB's display ``name`` deliberately does not participate.
    """
    text = dump_instance(kb.facts) + "\n" + dump_ruleset(kb.rules)
    return hashlib.sha256(text.encode()).hexdigest()


def snapshot_key(kb: KnowledgeBase, variant: str, core_every: int = 1) -> str:
    """The store key for chasing *kb* with *variant* / *core_every*."""
    tag = f"{SNAPSHOT_SCHEMA}|{variant}|{core_every}|{kb_fingerprint(kb)}"
    return hashlib.sha256(tag.encode()).hexdigest()


# ---------------------------------------------------------------------------
# ChaseState <-> JSON objects
# ---------------------------------------------------------------------------


def _trigger_key_to_obj(key) -> list:
    rule_name, image = key
    return [rule_name, [[var.name, term_to_obj(term)] for var, term in image]]


def _trigger_key_from_obj(obj):
    from ..logic.terms import Variable

    rule_name, image = obj
    return (
        rule_name,
        tuple((Variable(name), term_from_obj(term)) for name, term in image),
    )


def chase_state_to_obj(state: ChaseState) -> dict:
    """Serialize a :class:`ChaseState` as a JSON-ready dict.

    Trigger keys (``applied_keys`` entries and ``ages`` keys) are
    ``(rule_name, ((Variable, Term), ...))`` tuples; they serialize
    through the tagged term objects and are emitted in sorted order so
    the output is deterministic."""
    applied = sorted(map(_trigger_key_to_obj, state.applied_keys))
    ages = sorted(
        [_trigger_key_to_obj(key), age] for key, age in state.ages.items()
    )
    return {
        "variant": state.variant,
        "core_every": state.core_every,
        "fresh_prefix": state.fresh_prefix,
        "fresh_count": state.fresh_count,
        "instance": instance_to_obj(state.instance),
        "applied_keys": applied,
        "ages": ages,
        "terminated": state.terminated,
        "applications": state.applications,
        "applications_since_core": state.applications_since_core,
        "delta_since_core": [atom_to_obj(at) for at in state.delta_since_core],
    }


def chase_state_from_obj(obj: dict) -> ChaseState:
    """Parse a state serialized by :func:`chase_state_to_obj`."""
    return ChaseState(
        variant=obj["variant"],
        core_every=obj["core_every"],
        fresh_prefix=obj["fresh_prefix"],
        fresh_count=obj["fresh_count"],
        instance=instance_from_obj(obj["instance"]),
        applied_keys={
            _trigger_key_from_obj(item) for item in obj["applied_keys"]
        },
        ages={
            _trigger_key_from_obj(key): age for key, age in obj["ages"]
        },
        terminated=obj["terminated"],
        applications=obj["applications"],
        applications_since_core=obj["applications_since_core"],
        delta_since_core=[
            atom_from_obj(item) for item in obj["delta_since_core"]
        ],
    )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


#: A ``.tmp`` file older than this (seconds) at store construction is an
#: orphan from a crashed writer, never a live write in progress, and is
#: garbage-collected.  Young ``.tmp`` files are left alone — a sibling
#: worker may be mid-save.
TMP_ORPHAN_GRACE = 300.0


class SnapshotStore:
    """Filesystem store of chase snapshots, one JSON file per key.

    Safe for concurrent use by multiple worker processes: writes are
    atomic replacements, loads treat anything unreadable as a miss (the
    offending file is discarded), and two workers racing to save the
    same key simply leave whichever finished last — both states are
    valid checkpoints of the same deterministic derivation.

    Hygiene (the store must survive crashing writers and run forever):

    * construction garbage-collects orphaned ``.tmp`` files — the
      droppings of workers killed mid-save — once they are older than
      *tmp_grace_seconds*;
    * *max_entries* / *max_bytes* bound the store; past either bound,
      saves evict least-recently-used snapshots (load hits refresh a
      file's mtime, so "used" means read *or* written) and report each
      eviction via the ``snapshot_access`` telemetry event
      (``op="evict"``, the ``snapshot.evicted`` metric).  The
      just-written snapshot is never evicted, even when it alone
      exceeds *max_bytes* — such saves are counted in
      :attr:`eviction_shortfalls` instead.
    """

    def __init__(
        self,
        root: PathLike,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        tmp_grace_seconds: float = TMP_ORPHAN_GRACE,
    ):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: saves after which a bound could not be met because eviction
        #: never removes the most-recently-written snapshot
        self.eviction_shortfalls = 0
        self._gc_orphan_tmp_files(tmp_grace_seconds)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # -- hygiene -------------------------------------------------------

    def _gc_orphan_tmp_files(self, grace_seconds: float) -> int:
        """Unlink crashed writers' temp files older than the grace
        period; returns how many were collected."""
        cutoff = time.time() - grace_seconds
        collected = 0
        for path in self.root.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    collected += 1
            except OSError:
                continue  # a racing GC or the writer finishing; fine
        return collected

    def _evict_lru(self) -> int:
        """Evict least-recently-used snapshots until within bounds.

        Called after every save; a no-op for unbounded stores.  Racing
        evictors are harmless — unlink losers skip the file.  The
        most-recently-written entry is never evicted: a single snapshot
        larger than *max_bytes* would otherwise delete itself on every
        save, silently disabling warm starts for that store.  Saves that
        leave the store over a bound for that reason are counted in
        :attr:`eviction_shortfalls`."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        entries = []
        for path in self.root.glob("*.json"):
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
        entries.sort()
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        evicted = 0
        observer = _observer_state.current
        for _, size, path in entries[:-1]:  # the newest entry is protected
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            try:
                path.unlink()
            except OSError:
                continue
            count -= 1
            total -= size
            evicted += 1
            if observer is not None:
                observer.snapshot_access(op="evict", hit=False)
        over_entries = self.max_entries is not None and count > self.max_entries
        over_bytes = self.max_bytes is not None and total > self.max_bytes
        if over_entries or over_bytes:
            self.eviction_shortfalls += 1
        return evicted

    # -- save ----------------------------------------------------------

    def save(self, kb: KnowledgeBase, state: ChaseState) -> pathlib.Path:
        """File *state* under the key for (*kb*, its chase config)."""
        started = time.perf_counter()
        key = snapshot_key(kb, state.variant, state.core_every)
        payload = {
            "schema": SNAPSHOT_SCHEMA,
            "kb_fingerprint": kb_fingerprint(kb),
            "state": chase_state_to_obj(state),
        }
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            dir=self.root,
            prefix=f".{key[:16]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._evict_lru()
        observer = _observer_state.current
        if observer is not None:
            observer.snapshot_access(
                op="save",
                hit=True,
                atoms=len(state.instance),
                seconds=time.perf_counter() - started,
            )
        return path

    # -- load ----------------------------------------------------------

    def load(
        self, kb: KnowledgeBase, variant: str, core_every: int = 1
    ) -> Optional[ChaseState]:
        """The stored state for (*kb*, *variant*, *core_every*), or None.

        Misses, schema/fingerprint mismatches, and unparseable files all
        come back as None; corrupt files are deleted so they are paid
        for only once."""
        started = time.perf_counter()
        key = snapshot_key(kb, variant, core_every)
        path = self.path_for(key)
        state: Optional[ChaseState] = None
        corrupt = False
        try:
            text = path.read_text()
        except OSError:
            text = None
        if text is not None:
            try:
                payload = json.loads(text)
                if payload["schema"] != SNAPSHOT_SCHEMA:
                    raise ValueError("snapshot schema mismatch")
                if payload["kb_fingerprint"] != kb_fingerprint(kb):
                    raise ValueError("snapshot fingerprint mismatch")
                state = chase_state_from_obj(payload["state"])
                if state.variant != variant or state.core_every != core_every:
                    raise ValueError("snapshot config mismatch")
            except Exception:  # noqa: BLE001 - any deserialization failure
                # Adversarially-corrupt files can raise essentially
                # anything out of the decoder (AttributeError on a
                # mistyped node, RecursionError on pathological nesting,
                # ...), not just the polite ValueError/KeyError family —
                # and a worker crash here would turn one bad file into a
                # broken pool.  Every failure is a corrupt miss.
                corrupt = True
                state = None
                try:
                    path.unlink()
                except OSError:
                    pass
        if state is not None:
            try:
                os.utime(path)  # refresh recency for mtime-LRU eviction
            except OSError:
                pass
        observer = _observer_state.current
        if observer is not None:
            observer.snapshot_access(
                op="load",
                hit=state is not None,
                corrupt=corrupt,
                atoms=len(state.instance) if state is not None else 0,
                seconds=time.perf_counter() - started,
            )
        return state

"""CQ evaluation by dynamic programming over a tree decomposition.

Theorem 1's decidability argument leans on the model theory of
bounded-treewidth structures; the *algorithmic* face of the same
phenomenon is that CQ evaluation is tractable when the **query** has
bounded treewidth: join the atoms bag-by-bag along a tree decomposition
instead of backtracking over the whole query at once.

This module implements the classical two-phase algorithm:

1. decompose the query's Gaifman graph (min-fill heuristic — exactness
   of the width is irrelevant for correctness, only for the exponent);
2. assign every query atom to a bag containing its terms, root the
   decomposition, and run a bottom-up semi-join pass: each bag's table
   holds the assignments of its variables that satisfy its atoms and are
   extendable into every child subtree.

The Boolean answer is "nonempty root table"; a satisfying assignment is
reconstructed by a top-down pass.  For queries whose treewidth is small
(all of the paper's example queries have treewidth ≤ 2) this evaluates
in time |instance|^(width+1) instead of |instance|^|vars| — and it gives
the test suite an independent oracle to cross-check the backtracking
search against.
"""

from __future__ import annotations

from typing import Optional

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.homomorphism import homomorphisms
from ..logic.substitution import Substitution
from ..logic.terms import Term, Variable
from ..treewidth.decomposition import TreeDecomposition
from ..treewidth.elimination import decomposition_from_order, min_fill_order
from ..treewidth.gaifman import gaifman_graph
from .cq import ConjunctiveQuery

__all__ = ["DecomposedQuery", "holds_via_decomposition"]

Assignment = tuple[tuple[Variable, Term], ...]


def _freeze(mapping: dict[Variable, Term], variables) -> Assignment:
    return tuple(sorted(((v, mapping[v]) for v in variables), key=lambda p: p[0].name))


class DecomposedQuery:
    """A conjunctive query compiled to a rooted tree decomposition.

    The compilation is instance-independent; :meth:`holds_in` and
    :meth:`satisfying_assignment` evaluate against any instance.
    """

    def __init__(self, query: ConjunctiveQuery):
        self.query = query
        graph = gaifman_graph(query.atoms)
        order = min_fill_order(graph)
        decomposition = decomposition_from_order(graph, order)
        self.decomposition = decomposition
        self.width = decomposition.width
        self._build_tree(decomposition)
        self._assign_atoms()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    def _build_tree(self, decomposition: TreeDecomposition) -> None:
        """Root the decomposition at bag 0 and record parent/children."""
        bag_count = len(decomposition.bags)
        adjacency: dict[int, list[int]] = {i: [] for i in range(bag_count)}
        for u, v in decomposition.edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        self.children: dict[int, list[int]] = {i: [] for i in range(bag_count)}
        self.order: list[int] = []  # bottom-up order
        visited = set()
        # the decomposition may be a forest; treat every component
        for root in range(bag_count):
            if root in visited:
                continue
            stack = [(root, -1)]
            component_order = []
            while stack:
                node, parent = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                component_order.append(node)
                for neighbor in adjacency[node]:
                    if neighbor != parent and neighbor not in visited:
                        self.children[node].append(neighbor)
                        stack.append((neighbor, node))
            self.order.extend(reversed(component_order))
        self.roots = [
            i
            for i in range(bag_count)
            if all(i not in kids for kids in self.children.values())
        ]

    def _assign_atoms(self) -> None:
        """Assign each query atom to one bag containing all its terms."""
        self.bag_atoms: dict[int, list[Atom]] = {
            i: [] for i in range(len(self.decomposition.bags))
        }
        for at in self.query.atoms:
            terms = at.term_set()
            for index, bag in enumerate(self.decomposition.bags):
                if terms <= bag:
                    self.bag_atoms[index].append(at)
                    break
            else:  # pragma: no cover - decomposition validity guarantees a bag
                raise RuntimeError(f"no bag covers atom {at}")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _bag_variables(self, index: int) -> list[Variable]:
        return sorted(
            (t for t in self.decomposition.bags[index] if isinstance(t, Variable)),
            key=lambda v: v.name,
        )

    def _bag_table(self, index: int, instance: AtomSet) -> set[Assignment]:
        """All assignments of the bag's variables satisfying its atoms."""
        variables = self._bag_variables(index)
        atoms = self.bag_atoms[index]
        if not atoms:
            # no constraints: single empty row; unconstrained bag
            # variables stay unbound and join freely below
            return {_freeze({}, [])}
        table: set[Assignment] = set()
        for hom in homomorphisms(atoms, instance):
            bound = {v: hom.apply_term(v) for v in variables if v in hom}
            table.add(_freeze(bound, bound))
        return table

    @staticmethod
    def _merge(row: Assignment, child_row: Assignment) -> Optional[Assignment]:
        """Join two partial assignments; None on clash.

        Plain semi-join filtering would be unsound here: a connecting bag
        may carry a shared variable without any atom binding it, so child
        bindings of *parent-bag* variables must be merged upward, not
        merely checked.
        """
        merged = dict(row)
        for var, term in child_row:
            bound = merged.get(var)
            if bound is None:
                merged[var] = term
            elif bound != term:
                return None
        return tuple(sorted(merged.items(), key=lambda p: p[0].name))

    def _project(self, child_row: Assignment, parent_index: int) -> Assignment:
        """Project a child row onto the parent's bag (the separator)."""
        bag = self.decomposition.bags[parent_index]
        return tuple(
            (var, term) for var, term in child_row if var in bag
        )

    def _bottom_up(self, instance: AtomSet) -> Optional[dict[int, set[Assignment]]]:
        """The join-project pass; None as soon as some table empties."""
        tables: dict[int, set[Assignment]] = {}
        for index in self.order:
            table = self._bag_table(index, instance)
            for child in self.children[index]:
                projections = {
                    self._project(child_row, index) for child_row in tables[child]
                }
                joined: set[Assignment] = set()
                for row in table:
                    for projection in projections:
                        merged = self._merge(row, projection)
                        if merged is not None:
                            joined.add(merged)
                table = joined
                if not table:
                    return None
            tables[index] = table
        return tables

    def holds_in(self, instance: AtomSet) -> bool:
        """Boolean evaluation by the bottom-up join-project pass."""
        tables = self._bottom_up(instance)
        return tables is not None and all(tables[root] for root in self.roots)

    def satisfying_assignment(self, instance: AtomSet) -> Optional[Substitution]:
        """Reconstruct one satisfying assignment (or None).

        Runs the bottom-up pass keeping full tables, then walks top-down
        picking mutually compatible rows.  Variables that occur in no
        atom of any bag are irrelevant to the query and stay unbound.
        """
        tables = self._bottom_up(instance)
        if tables is None:
            return None

        chosen: dict[Variable, Term] = {}

        def pick(index: int) -> bool:
            for row in sorted(tables[index]):
                row_map = dict(row)
                if any(chosen.get(v, t) != t for v, t in row_map.items()):
                    continue
                added = [v for v in row_map if v not in chosen]
                chosen.update(row_map)
                if all(pick(child) for child in self.children[index]):
                    return True
                for v in added:
                    del chosen[v]
            return False

        for root in self.roots:
            if not pick(root):
                return None
        return Substitution(chosen)


def holds_via_decomposition(query: ConjunctiveQuery, instance: AtomSet) -> bool:
    """One-shot decomposition-based Boolean evaluation."""
    return DecomposedQuery(query).holds_in(instance)

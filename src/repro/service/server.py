"""The asyncio JSONL-over-TCP front end of the query service.

Protocol (one JSON object per line, responses echo the request ``id``):

========== ===========================================================
op         behaviour
========== ===========================================================
entail     :class:`~repro.service.jobs.JobRequest` fields; answers the
           Boolean CQ (possibly warm from a snapshot)
chase      same fields sans query; returns the (partial) final instance
batch_entail  ``queries`` list instead of ``query``: many *distinct*
           Boolean CQs against one loaded snapshot in a single indexed
           pass (one chase, per-step tests for every open query); the
           response carries a per-query ``results`` list
batch      ``{"op": "batch", "requests": [...]}`` — member requests run
           concurrently, one response with a ``results`` list
ping       liveness check
stats      service counters + the metrics-registry snapshot
shutdown   acknowledge, then stop the server gracefully
========== ===========================================================

Responses arrive as soon as each job finishes — possibly out of request
order on a pipelined connection, which is what the ``id`` echo is for.

In-flight dedup: requests with equal
:meth:`~repro.service.jobs.JobRequest.dedup_key` coalesce onto the same
running job — one execution, every waiter gets the result (flagged
``"coalesced": true``).  This is what makes a thundering herd of
identical queries cheap; *sequential* repeats are instead served by the
snapshot store's warm starts.

The server is single-threaded asyncio; the blocking chase work lives in
the :class:`~repro.service.executor.JobExecutor` process pool, bridged
with :func:`asyncio.wrap_future`.

Response guarantee
------------------
Every request line that reaches the dispatcher gets **exactly one**
reply, including executor-level failures (broken pool, shutdown),
partial batch failures, and internal errors: ``_handle_line`` carries a
catch-all that converts any escaping exception into an ``ok=False``
response carrying the request ``id``, and batch members fail
individually without poisoning their siblings.  The only way a client
sees no reply is its own connection dying.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional

from ..obs import observer as _observer_state
from ..obs.spans import (
    RollingLatencies,
    TraceContext,
    activate,
    close_span,
    open_span,
)
from .executor import JobExecutor
from .faults import FaultPlan
from .jobs import JobRequest, JobResult

__all__ = ["EntailmentServer", "serve"]

#: Grace period for draining open connections on shutdown, seconds.
SHUTDOWN_GRACE = 5.0


class EntailmentServer:
    """Serve job requests over TCP as JSON lines.

    Parameters
    ----------
    executor:
        The :class:`JobExecutor` doing the actual chasing (owned by the
        caller; the server never shuts it down).
    host, port:
        Bind address; port 0 picks an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    default_timeout:
        Per-job deadline (seconds) applied to requests that do not set
        their own ``timeout``.
    fault_plan:
        A :class:`~repro.service.faults.FaultPlan` whose armed
        ``server.drop_connection`` fuses abort the connection instead
        of writing a response (chaos testing only; None in production).
    rolling_window:
        How many recent job latencies the ``stats`` op's percentile
        summary covers (:class:`~repro.obs.spans.RollingLatencies`).
    planner:
        When True, requests that neither set ``planner`` themselves nor
        carry an explicit ``strategy`` override are routed through the
        analysis planner (the worker derives a per-ruleset strategy,
        cached by fingerprint).  Clients keep full control: sending
        ``"planner": false`` or a ``strategy`` dict opts a request out.

    Tracing
    -------
    When an observer is installed, every accepted request is minted a
    fresh trace: a ``service_request`` root span for the client-visible
    wait, and — for the request that actually starts the job — a
    ``service_job`` child span whose context rides to the executor on
    ``request.trace``.  Requests that coalesce onto a running job get
    their *own* root span carrying ``job_trace_id``/``job_span_id``
    link attributes pointing at the shared job span (a link, not a
    parent: the job belongs to the first request's trace).  With no
    observer the whole path stays a single ``is not None`` test.
    """

    def __init__(
        self,
        executor: JobExecutor,
        host: str = "127.0.0.1",
        port: int = 0,
        default_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        rolling_window: int = 512,
        planner: bool = False,
    ):
        self.executor = executor
        self.host = host
        self.port = port
        self.default_timeout = default_timeout
        self.fault_plan = fault_plan
        self.planner = planner
        self.registry = executor.registry
        self.latencies = RollingLatencies(rolling_window)
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: dedup key -> the running job's span context, for coalesced
        #: requests to link against (cleared with _inflight).
        self._inflight_spans: dict[tuple, TraceContext] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        # Server-side counters, kept independently of any installed
        # observer so the stats op always has answers.
        self.requests = 0
        self.coalesced = 0
        self.jobs = 0
        self.warm_hits = 0
        self.ancestor_hits = 0
        self.errors = 0
        #: jobs answered per planner strategy name
        self.strategies: dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "EntailmentServer":
        """Bind and start accepting; resolves the ephemeral port."""
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_stopped(self) -> None:
        """Block until a shutdown request (or :meth:`request_stop`),
        then drain open connections and close."""
        if self._server is None or self._stop is None:
            raise RuntimeError("serve_until_stopped() requires start()")
        await self._stop.wait()
        self._server.close()
        await self._server.wait_closed()
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            done, still_open = await asyncio.wait(
                pending, timeout=SHUTDOWN_GRACE
            )
            for task in still_open:
                task.cancel()
            if still_open:
                await asyncio.gather(*still_open, return_exceptions=True)

    def request_stop(self) -> None:
        """Ask :meth:`serve_until_stopped` to wind the server down."""
        if self._stop is not None:
            self._stop.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        line_tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.strip()
                if not text:
                    continue
                # One task per line, so requests on the same connection
                # overlap; responses carry the id for re-pairing.
                lt = asyncio.ensure_future(
                    self._handle_line(text, writer, write_lock)
                )
                line_tasks.add(lt)
                lt.add_done_callback(line_tasks.discard)
            if line_tasks:
                await asyncio.gather(*line_tasks, return_exceptions=True)
        finally:
            for lt in line_tasks:
                lt.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(
        self, text: bytes, writer: asyncio.StreamWriter, lock: asyncio.Lock
    ) -> None:
        try:
            obj = json.loads(text)
            if not isinstance(obj, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            await self._write(
                writer, lock, {"ok": False, "error": f"bad request: {exc}"}
            )
            return
        try:
            response = await self._dispatch(obj)
        except Exception as exc:  # noqa: BLE001 - the response guarantee
            # Nothing may escape between "request parsed" and "response
            # written": an exception here used to be swallowed by the
            # connection task's gather(return_exceptions=True) and the
            # client would wait forever for this id.
            self.errors += 1
            response = {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }
            if obj.get("id") is not None:
                response["id"] = obj["id"]
        if (
            self.fault_plan is not None
            and self.fault_plan.consume("server.drop_connection") is not None
        ):
            writer.transport.abort()
            return
        await self._write(writer, lock, response)

    async def _write(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, obj: dict
    ) -> None:
        data = (json.dumps(obj) + "\n").encode()
        async with lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; the job result still counted

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, obj: dict) -> dict:
        op = obj.get("op")
        request_id = obj.get("id")
        if op == "ping":
            response: dict = {"ok": True, "op": "ping"}
        elif op == "stats":
            response = self.stats_payload()
        elif op == "shutdown":
            self.request_stop()
            response = {"ok": True, "op": "shutdown"}
        elif op == "batch":
            members = obj.get("requests")
            if not isinstance(members, list):
                response = {
                    "ok": False,
                    "op": "batch",
                    "error": "batch needs a 'requests' list",
                }
            else:
                # return_exceptions: one poisoned member must not kill
                # the whole batch — siblings still answer, and the bad
                # member gets a per-member error object.
                results = await asyncio.gather(
                    *(self._answer(member) for member in members),
                    return_exceptions=True,
                )
                response = {
                    "ok": True,
                    "op": "batch",
                    "results": [
                        result
                        if not isinstance(result, BaseException)
                        else self._member_error(member, result)
                        for member, result in zip(members, results)
                    ],
                }
        elif op in ("entail", "chase", "batch_entail"):
            response = await self._answer(obj)
        else:
            response = {"ok": False, "error": f"unknown op {op!r}"}
        if request_id is not None:
            response["id"] = request_id
        return response

    async def _answer(self, obj) -> dict:
        try:
            if not isinstance(obj, dict):
                raise ValueError("request must be a JSON object")
            request = JobRequest.from_obj(obj)
            if request.timeout is None:
                request.timeout = self.default_timeout
            # Server-level planner default: applied before dedup_key so
            # routed and unrouted forms of the same question never
            # coalesce onto each other's job.
            if (
                self.planner
                and "planner" not in obj
                and request.strategy is None
            ):
                request.planner = True
        except (ValueError, TypeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}

        key = request.dedup_key()
        running = self._inflight.get(key)
        coalesced = running is not None
        self.requests += 1
        if coalesced:
            self.coalesced += 1
        observer = _observer_state.current
        request_context: Optional[TraceContext] = None
        started: Optional[float] = None
        if observer is not None:
            request_context = TraceContext.new_root()
            started = time.perf_counter()
            attrs: dict = {"op": request.op, "coalesced": coalesced}
            if request.id is not None:
                attrs["request_id"] = request.id
            if coalesced:
                job_context = self._inflight_spans.get(key)
                if job_context is not None:
                    attrs["job_trace_id"] = job_context.trace_id
                    attrs["job_span_id"] = job_context.span_id
            open_span(observer, request_context, "service_request", **attrs)
            with activate(request_context):
                observer.service_request(op=request.op, coalesced=coalesced)
        if not coalesced:
            job_context = None
            if request_context is not None:
                job_context = request_context.child()
                self._inflight_spans[key] = job_context
            running = asyncio.ensure_future(self._run_job(request, job_context))
            self._inflight[key] = running
            running.add_done_callback(
                lambda fut, key=key: self._clear_inflight(key, fut)
            )
        try:
            # shield(): one waiter giving up (connection dropped) must
            # not cancel the shared job the other waiters coalesced onto.
            result: JobResult = await asyncio.shield(running)
        except asyncio.CancelledError:
            if request_context is not None:
                close_span(
                    _observer_state.current,
                    request_context,
                    "service_request",
                    status="aborted",
                    seconds=round(time.perf_counter() - started, 6),
                )
            raise  # this waiter was cancelled; the shared job lives on
        except Exception as exc:  # noqa: BLE001 - per-request guarantee
            self.errors += 1
            if request_context is not None:
                close_span(
                    _observer_state.current,
                    request_context,
                    "service_request",
                    status="error",
                    seconds=round(time.perf_counter() - started, 6),
                    error=f"{type(exc).__name__}: {exc}",
                )
            response = {
                "ok": False,
                "error": f"job failed: {type(exc).__name__}: {exc}",
                "coalesced": coalesced,
            }
            if request.id is not None:
                response["id"] = request.id
            return response
        if request_context is not None:
            close_span(
                _observer_state.current,
                request_context,
                "service_request",
                status="ok" if result.ok else "error",
                seconds=round(time.perf_counter() - started, 6),
            )
        response = result.to_obj()
        response["coalesced"] = coalesced
        if request.id is not None:
            response["id"] = request.id
        return response

    @staticmethod
    def _member_error(member, exc: BaseException) -> dict:
        response = {
            "ok": False,
            "error": f"batch member failed: {type(exc).__name__}: {exc}",
        }
        if isinstance(member, dict) and member.get("id") is not None:
            response["id"] = member["id"]
        return response

    def _clear_inflight(self, key: tuple, fut: asyncio.Future) -> None:
        if self._inflight.get(key) is fut:
            del self._inflight[key]
            self._inflight_spans.pop(key, None)

    async def _run_job(
        self, request: JobRequest, context: Optional[TraceContext] = None
    ) -> JobResult:
        if context is not None:
            # The job span context crosses the spawn boundary on
            # request.trace; the executor parents its attempt spans (and
            # any retries/rebuilds) under it, so a killed-and-retried
            # job stays one causal timeline.
            request.trace = context.to_obj()
            open_span(
                _observer_state.current, context, "service_job", op=request.op
            )
        started = time.perf_counter()
        try:
            result: JobResult = await asyncio.wrap_future(
                self.executor.submit(request)
            )
        except Exception as exc:  # noqa: BLE001 - submit-time failures
            # The supervised executor resolves rather than raises, but a
            # waiter must get a well-formed result even if submission
            # itself blows up (e.g. an executor shut down under us).
            result = JobResult(
                op=request.op,
                ok=False,
                error=f"executor failure: {type(exc).__name__}: {exc}",
            )
        self.jobs += 1
        if result.strategy is not None:
            self.strategies[result.strategy] = (
                self.strategies.get(result.strategy, 0) + 1
            )
        if result.warm:
            self.warm_hits += 1
        if result.ancestor:
            self.ancestor_hits += 1
        if not result.ok:
            self.errors += 1
        # Always feed the rolling window (the stats op works with no
        # observer installed); result.seconds is the executor's wall
        # clock from first submission, the same number the service_job
        # trace event carries — live and offline percentiles agree.
        self.latencies.record(request.op, result.warm, result.ok, result.seconds)
        if context is not None:
            close_span(
                _observer_state.current,
                context,
                "service_job",
                status="ok" if result.ok else "error",
                seconds=round(time.perf_counter() - started, 6),
                ok=result.ok,
                warm=result.warm,
                ancestor=result.ancestor,
            )
        return result

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def stats_payload(self) -> dict:
        """The stats-op response: server counters, supervision counters,
        rolling latency percentiles, and the metrics snapshot."""
        metrics = self.registry.snapshot()
        return {
            "ok": True,
            "op": "stats",
            "requests": self.requests,
            "coalesced": self.coalesced,
            "jobs": self.jobs,
            "warm_hits": self.warm_hits,
            "warm_hit_ratio": (self.warm_hits / self.jobs) if self.jobs else None,
            "ancestor_hits": self.ancestor_hits,
            "errors": self.errors,
            "retries": self.executor.retries,
            "pool_rebuilds": self.executor.pool_rebuilds,
            "snapshots_evicted": metrics.get("snapshot.evicted", {}).get(
                "value", 0
            ),
            "snapshot_ancestor_hits": metrics.get(
                "snapshot.ancestor_hits", {}
            ).get("value", 0),
            "snapshot_chains_broken": metrics.get(
                "snapshot.chain_broken", {}
            ).get("value", 0),
            "snapshot_bytes_saved": metrics.get(
                "snapshot.bytes_saved", {}
            ).get("value", 0),
            "planner": {
                "enabled": self.planner,
                "strategies": dict(sorted(self.strategies.items())),
                "verdicts": metrics.get("planner.verdicts", {}).get(
                    "value", 0
                ),
                "cache_hits": metrics.get("planner.cache_hits", {}).get(
                    "value", 0
                ),
            },
            "query": {
                "plan_lookups": metrics.get("query.plan_lookups", {}).get(
                    "value", 0
                ),
                "plan_cache_hits": metrics.get(
                    "query.plan_cache_hits", {}
                ).get("value", 0),
                "rewrites": metrics.get("query.rewrites", {}).get("value", 0),
                "disjuncts_pruned": metrics.get(
                    "query.disjuncts_pruned", {}
                ).get("value", 0),
                "rewrite_fallbacks": metrics.get(
                    "query.rewrite_fallbacks", {}
                ).get("value", 0),
            },
            "pending": self.executor.pending,
            "inflight": len(self._inflight),
            "latency": self.latencies.summary(),
            "latency_window": {
                "capacity": self.latencies.capacity,
                "samples": len(self.latencies),
            },
            "metrics": metrics,
        }


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    snapshot_dir: Optional[str] = None,
    default_timeout: Optional[float] = None,
    executor: Optional[JobExecutor] = None,
    fault_plan: Optional[FaultPlan] = None,
    trace_dir: Optional[str] = None,
    planner: bool = False,
) -> None:
    """Run a server until a shutdown request arrives.

    Prints ``repro serve listening on HOST:PORT`` once ready (the CI
    smoke harness parses this line to find the ephemeral port).
    *trace_dir* is forwarded to an executor this call creates itself
    (per-worker span sinks); it is ignored when *executor* is given.
    *planner* turns on server-level planner routing (see
    :class:`EntailmentServer`)."""
    own_executor = executor is None
    if executor is None:
        executor = JobExecutor(
            workers=workers, snapshot_dir=snapshot_dir, trace_dir=trace_dir
        )
    server = EntailmentServer(
        executor,
        host=host,
        port=port,
        default_timeout=default_timeout,
        fault_plan=fault_plan,
        planner=planner,
    )
    await server.start()
    print(f"repro serve listening on {server.host}:{server.port}", flush=True)
    try:
        await server.serve_until_stopped()
    finally:
        if own_executor:
            executor.shutdown()

"""Tests for :mod:`repro.obs.spans`: trace contexts, span lifecycle,
cross-process trace reconstruction, and the shared latency machinery
behind the live ``stats`` op and offline replay."""

import io
import json
import threading

from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    RollingLatencies,
    TraceContext,
    TracingObserver,
    activate,
    current_context,
    latency_summary,
    observing,
    read_trace_dir,
    span,
)
from repro.obs.spans import (
    build_trace,
    close_span,
    new_span_id,
    open_span,
    percentile,
    render_trace,
    trace_ids,
    trace_to_obj,
)
from repro.service.executor import JobExecutor, RetryPolicy
from repro.service.faults import FaultPlan
from repro.service.jobs import JobRequest

KB_TEXT = """[rules]
p(X) -> q(X)

[facts]
p(a)
"""


def events_of(buffer: io.StringIO) -> list:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def tracing_observer(buffer: io.StringIO) -> TracingObserver:
    return TracingObserver(JsonlTracer(buffer), registry=MetricsRegistry())


class TestTraceContext:
    def test_roundtrip_through_wire_form(self):
        root = TraceContext.new_root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id
        for context in (root, child):
            again = TraceContext.from_obj(context.to_obj())
            assert again == context

    def test_wire_form_tolerates_extra_keys(self):
        root = TraceContext.new_root()
        obj = {**root.to_obj(), "submitted_ts": 123.5}
        assert TraceContext.from_obj(obj) == root

    def test_from_obj_rejects_garbage(self):
        assert TraceContext.from_obj(None) is None
        assert TraceContext.from_obj("not a dict") is None
        assert TraceContext.from_obj({}) is None
        assert TraceContext.from_obj({"trace_id": "t"}) is None
        assert TraceContext.from_obj({"trace_id": 7, "span_id": "s"}) is None

    def test_span_ids_are_fresh(self):
        ids = {new_span_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(span_id) == 16 for span_id in ids)


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_context() is None

    def test_activate_nests_and_restores(self):
        outer = TraceContext.new_root()
        inner = outer.child()
        with activate(outer):
            assert current_context() is outer
            with activate(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None

    def test_activate_none_is_a_noop(self):
        outer = TraceContext.new_root()
        with activate(outer):
            with activate(None):
                assert current_context() is outer

    def test_context_is_per_thread(self):
        seen = []
        with activate(TraceContext.new_root()):
            thread = threading.Thread(
                target=lambda: seen.append(current_context())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestSpan:
    def test_no_observer_means_no_work(self):
        with span("anything") as context:
            assert context is None
            assert current_context() is None

    def test_open_close_events_and_ambient_stamping(self):
        buffer = io.StringIO()
        observer = tracing_observer(buffer)
        with span("outer", observer=observer, op="entail") as outer:
            observer.service_request(op="entail", coalesced=False)
            with span("inner", observer=observer) as inner:
                pass
        events = events_of(buffer)
        kinds = [e["kind"] for e in events]
        assert kinds == [
            "span_open",
            "service_request",
            "span_open",
            "span_close",
            "span_close",
        ]
        opened, stamped, inner_open, inner_close, outer_close = events
        assert opened["name"] == "outer" and opened["op"] == "entail"
        assert opened["trace_id"] == outer.trace_id
        assert opened.get("parent_span_id") is None
        # the plain event inherits the ambient span's identity
        assert stamped["trace_id"] == outer.trace_id
        assert stamped["span_id"] == outer.span_id
        # the nested span parents under the outer one, same trace
        assert inner.trace_id == outer.trace_id
        assert inner_open["parent_span_id"] == outer.span_id
        assert inner_close["status"] == "ok"
        assert outer_close["status"] == "ok"
        assert outer_close["seconds"] >= 0.0
        # every event carries both clocks
        assert all("t" in e and "ts" in e for e in events)

    def test_exception_closes_with_error_status_and_reraises(self):
        buffer = io.StringIO()
        observer = tracing_observer(buffer)
        try:
            with span("bad", observer=observer):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("span swallowed the exception")
        close = events_of(buffer)[-1]
        assert close["kind"] == "span_close" and close["status"] == "error"

    def test_open_close_span_helpers_tolerate_none(self):
        context = TraceContext.new_root()
        open_span(None, context, "x")
        close_span(None, context, "x")
        buffer = io.StringIO()
        observer = tracing_observer(buffer)
        open_span(observer, None, "x")
        close_span(observer, None, "x")
        assert buffer.getvalue() == ""
        open_span(observer, context, "x", op="chase")
        close_span(observer, context, "x", status="aborted", seconds=1.5)
        opened, closed = events_of(buffer)
        assert opened["span_id"] == context.span_id
        assert closed["status"] == "aborted" and closed["seconds"] == 1.5


class TestTraceReconstruction:
    def test_read_trace_dir_merges_on_wall_clock(self, tmp_path):
        (tmp_path / "b.jsonl").write_text(
            json.dumps({"kind": "x", "ts": 2.0}) + "\n"
        )
        (tmp_path / "a.jsonl").write_text(
            json.dumps({"kind": "y", "ts": 3.0})
            + "\n"
            + json.dumps({"kind": "z", "ts": 1.0})
            + "\nnot json\n"
        )
        events, skipped = read_trace_dir(tmp_path)
        assert skipped == 1
        assert [e["kind"] for e in events] == ["z", "x", "y"]
        # a single file is accepted too
        events, _ = read_trace_dir(tmp_path / "b.jsonl")
        assert [e["kind"] for e in events] == ["x"]

    def test_build_and_render_a_tree(self):
        buffer = io.StringIO()
        observer = tracing_observer(buffer)
        with span("root", observer=observer) as root:
            observer.service_request(op="entail", coalesced=False)
            with span("leaf", observer=observer, attempt=1):
                pass
        events = events_of(buffer)
        ids = trace_ids(events)
        assert list(ids) == [root.trace_id]
        assert ids[root.trace_id] == len(events)
        tree = build_trace(events, root.trace_id)
        assert tree.spans == 2 and not tree.orphans and not tree.unclosed
        assert tree.roots[0].name == "root"
        assert tree.roots[0].events == 1  # the stamped service_request
        assert tree.roots[0].children[0].name == "leaf"
        rendered = render_trace(tree)
        assert "root" in rendered and "leaf" in rendered
        assert "attempt=1" in rendered
        obj = trace_to_obj(tree)
        json.dumps(obj)  # JSON-able all the way down
        assert obj["spans"] == 2 and obj["roots"][0]["name"] == "root"

    def test_orphans_and_unclosed_are_reported(self):
        trace = "t" * 16
        events = [
            {
                "kind": "span_open",
                "name": "lost",
                "trace_id": trace,
                "span_id": "a" * 16,
                "parent_span_id": "missing!",
                "ts": 1.0,
            },
            {
                "kind": "span_open",
                "name": "never_closed",
                "trace_id": trace,
                "span_id": "b" * 16,
                "parent_span_id": None,
                "ts": 2.0,
            },
        ]
        tree = build_trace(events, trace)
        assert [node.name for node in tree.orphans] == ["lost"]
        assert [node.name for node in tree.unclosed] == [
            "lost",
            "never_closed",
        ]
        rendered = render_trace(tree)
        assert "orphaned spans" in rendered and "UNCLOSED" in rendered


class TestLatencyMachinery:
    def test_percentile_is_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile([], 0.5) == 0.0
        assert percentile(values, 0.0) == 0.1
        assert percentile(values, 1.0) == 0.4
        assert percentile(values, 0.5) == 0.3

    def test_latency_summary_splits_classes(self):
        samples = [
            ("entail", False, True, 0.2),
            ("entail", True, True, 0.1),
            ("entail", False, False, 9.0),
            ("chase", False, True, 0.5),
        ]
        summary = latency_summary(samples)
        assert set(summary) == {"entail", "chase"}
        entail = summary["entail"]
        # failed jobs stay out of the ok row and get their own block
        assert entail["ok"]["count"] == 2
        assert entail["warm"]["count"] == 1
        assert entail["cold"]["count"] == 1
        assert entail["failed"]["count"] == 1
        assert entail["failed"]["p50"] == 9.0
        assert entail["ok"]["p95"] == 0.2
        assert "failed" not in summary["chase"]
        for block in (entail["ok"], summary["chase"]["ok"]):
            assert {"count", "mean", "p50", "p95", "p99"} <= set(block)

    def test_rolling_window_evicts_oldest(self):
        window = RollingLatencies(capacity=3)
        for index in range(5):
            window.record("entail", False, True, float(index))
        assert len(window) == 3
        summary = window.summary()
        assert summary["entail"]["ok"]["count"] == 3
        assert summary["entail"]["ok"]["p50"] == 3.0  # 2,3,4 remain

    def test_histogram_quantiles_merge_across_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.5, 1.5):
            a.histogram("lat", (1, 2, 5)).observe(value)
        for value in (3.0, 7.0):
            b.histogram("lat", (1, 2, 5)).observe(value)
        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        histogram = merged.histogram("lat", (1, 2, 5))
        assert histogram.count == 4
        assert histogram.quantile(0.5) == 2.0  # bucket upper bound
        assert histogram.quantile(0.99) == 7.0  # overflow -> observed max
        snap = histogram.snapshot()
        assert snap["p50"] == 2.0 and snap["p95"] == 7.0


class TestExecutorTracing:
    """In-process executor + fault fuse: the span story end to end
    without a process pool (the spawn-pool variant lives in
    ``test_service_chaos.py``)."""

    def test_retried_job_is_one_trace_with_closed_attempts(self, tmp_path):
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.kill_mid_job")
        trace_dir = tmp_path / "trace"
        registry = MetricsRegistry()
        executor = JobExecutor(
            0,
            snapshot_dir=tmp_path / "snaps",
            registry=registry,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.01, seed=3),
            fault_dir=plan.root,
            trace_dir=trace_dir,
        )
        sink = open(trace_dir / "server.jsonl", "w")
        observer = TracingObserver(JsonlTracer(sink), registry=registry)
        try:
            with observing(observer):
                result = executor.submit(
                    JobRequest(op="entail", kb_text=KB_TEXT, query="q(a)")
                ).result(timeout=60)
        finally:
            executor.shutdown()
            sink.close()
        assert result.ok and result.entailed is True
        assert executor.retries == 1

        events, skipped = read_trace_dir(trace_dir)
        assert skipped == 0
        ids = trace_ids(events)
        assert len(ids) == 1, "retry must stay inside the original trace"
        tree = build_trace(events, next(iter(ids)))
        assert not tree.orphans and not tree.unclosed
        # the executor owned the job span (no server minted one)
        assert [node.name for node in tree.roots] == ["service_job"]
        children = tree.roots[0].children
        attempts = [node for node in children if node.name == "job_attempt"]
        assert len(attempts) == 2
        assert attempts[0].status == "error"
        assert attempts[1].status == "ok"
        assert [node.name for node in children if node.name == "retry_backoff"]
        # the worker-side phase spans live under the surviving attempt
        phase_names = {node.name for node in attempts[1].children}
        assert {"queue_wait", "snapshot_load", "chase"} <= phase_names

    def test_observer_off_leaves_no_trace_state(self, tmp_path):
        executor = JobExecutor(0, snapshot_dir=tmp_path / "snaps")
        try:
            request = JobRequest(op="entail", kb_text=KB_TEXT, query="q(a)")
            result = executor.submit(request).result(timeout=60)
        finally:
            executor.shutdown()
        assert result.ok
        # no observer -> no context minted, nothing rides the request
        assert request.trace is None

"""Tests for chase provenance and DOT export."""

import pytest

from repro.chase import (
    ProvenanceIndex,
    core_chase,
    frugal_chase,
    restricted_chase,
)
from repro.kbs.witnesses import fes_not_bts_kb, transitive_closure_kb
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom, parse_atoms, parse_rules
from repro.treewidth import decomposition_from_order, gaifman_graph, min_fill_order
from repro.util import decomposition_to_dot, derivation_to_dot, instance_to_dot


class TestProvenance:
    @pytest.fixture(scope="class")
    def closure_run(self):
        return restricted_chase(transitive_closure_kb(3), max_steps=50)

    def test_facts_have_no_rule(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        step, rule = prov.creator(parse_atom("e(v0, v1)"))
        assert step == 0 and rule is None

    def test_derived_atoms_attributed(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        step, rule = prov.creator(parse_atom("e(v0, v2)"))
        assert rule == "Trans" and step >= 1

    def test_explanation_tree_grounded_in_facts(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        tree = prov.explain(parse_atom("e(v0, v3)"))
        leaves = []

        def collect(node):
            if not node.premises:
                leaves.append(node)
            for premise in node.premises:
                collect(premise)

        collect(tree)
        assert all(leaf.is_fact for leaf in leaves)
        assert tree.depth() >= 1

    def test_premise_steps_decrease(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        tree = prov.explain(parse_atom("e(v0, v3)"))

        def check(node):
            for premise in node.premises:
                assert premise.step < node.step
                check(premise)

        check(tree)

    def test_every_final_atom_indexed(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        for at in closure_run.final_instance:
            prov.creator(at)  # must not raise

    def test_unknown_atom_rejected(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        with pytest.raises(KeyError):
            prov.explain(parse_atom("missing(x)"))

    def test_core_chase_refused(self):
        run = core_chase(fes_not_bts_kb(), max_steps=30)
        with pytest.raises(ValueError):
            ProvenanceIndex(run.derivation)

    def test_frugal_runs_supported(self):
        kb = KnowledgeBase(
            parse_atoms("p(a)"), parse_rules("[R] p(X) -> e(X, Y), e(X, Z)")
        )
        run = frugal_chase(kb, max_steps=10)
        prov = ProvenanceIndex(run.derivation)
        assert len(prov) == len(run.derivation.natural_aggregation())

    def test_created_at_step_partition(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        total = sum(
            len(prov.created_at_step(i))
            for i in range(len(closure_run.derivation))
        )
        assert total == len(prov)

    def test_render_mentions_rule(self, closure_run):
        prov = ProvenanceIndex(closure_run.derivation)
        rendered = prov.explain(parse_atom("e(v0, v2)")).render()
        assert "Trans@" in rendered and "[fact]" in rendered


class TestDotExport:
    def test_instance_dot_structure(self):
        dot = instance_to_dot(parse_atoms("e(a, X), p(a), t(a, X, b)"))
        assert dot.startswith("digraph")
        assert '"a"' in dot and "shape=box" in dot  # constants boxed
        assert "diamond" in dot  # ternary atom hyperedge
        assert dot.rstrip().endswith("}")

    def test_unary_atoms_annotate_nodes(self):
        dot = instance_to_dot(parse_atoms("p(a), q(a)"))
        assert "p,q" in dot

    def test_decomposition_dot(self):
        atoms = parse_atoms("e(X, Y), e(Y, Z)")
        graph = gaifman_graph(atoms)
        decomposition = decomposition_from_order(graph, min_fill_order(graph))
        dot = decomposition_to_dot(decomposition)
        assert dot.startswith("graph")
        assert "--" in dot

    def test_derivation_dot(self):
        run = restricted_chase(transitive_closure_kb(2), max_steps=20)
        dot = derivation_to_dot(run.derivation)
        assert "s0" in dot and "Trans" in dot
        assert dot.count("->") == len(run.derivation) - 1

    def test_quoting_special_characters(self):
        dot = instance_to_dot(parse_atoms("e(X', Y'')"))
        assert "X'" in dot

"""Unions of conjunctive queries.

UCQs are preserved under homomorphisms just like CQs, so everything the
library does with a single CQ lifts disjunct-wise: a UCQ holds in an
instance iff some disjunct does, and ``K ⊨ Q₁ ∨ ... ∨ Qₙ`` over a
universal (or finitely universal) model reduces to per-disjunct tests.

Note the asymmetry for the decision race: the "yes" side is settled by
any single disjunct hitting, while a countermodel must avoid **all**
disjuncts simultaneously — :func:`decide_union_entailment` wires both
sides correctly instead of naively OR-ing per-disjunct verdicts (a
per-disjunct countermodel would be unsound: different disjuncts could be
refuted by different models while the union is still entailed).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from .cq import ConjunctiveQuery
from .entailment import EntailmentVerdict, chase_entails_prefix
from .modelfinder import find_finite_model

__all__ = ["UnionQuery", "decide_union_entailment"]


class UnionQuery:
    """A finite union (disjunction) of Boolean conjunctive queries."""

    __slots__ = ("disjuncts", "name")

    def __init__(
        self, disjuncts: Sequence[ConjunctiveQuery], name: Optional[str] = None
    ):
        disjunct_list = list(disjuncts)
        if not disjunct_list:
            raise ValueError("a union query needs at least one disjunct")
        for disjunct in disjunct_list:
            if not disjunct.is_boolean:
                raise ValueError("union queries are Boolean; drop answer variables")
        object.__setattr__(self, "disjuncts", tuple(disjunct_list))
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("UnionQuery is immutable")

    def __len__(self) -> int:
        return len(self.disjuncts)

    def holds_in(self, instance: AtomSet) -> bool:
        """True iff some disjunct maps into *instance*."""
        return any(disjunct.holds_in(instance) for disjunct in self.disjuncts)

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"UCQ({label}{' OR '.join(str(d.atoms) for d in self.disjuncts)})"


def decide_union_entailment(
    kb: KnowledgeBase,
    query: UnionQuery,
    chase_budget: int = 200,
    model_domain_budget: int = 8,
) -> EntailmentVerdict:
    """Decide ``K ⊨ ⋁ disjuncts`` by the Theorem-1 race, lifted to UCQs.

    "Yes" side: any disjunct mapping into the growing chase aggregation
    certifies entailment.  "No" side: one finite model avoiding **every**
    disjunct at once refutes it.
    """
    for disjunct in query.disjuncts:
        verdict = chase_entails_prefix(kb, disjunct, max_steps=chase_budget)
        if verdict.entailed is True:
            return verdict
        if verdict.entailed is False and len(query) == 1:
            return verdict
    # "no" side: a model avoiding all disjuncts simultaneously; emulate
    # by searching with a combined avoidance predicate
    for budget in range(1, model_domain_budget + 1):
        result = _find_model_avoiding_all(kb, query, budget)
        if result is not None:
            return EntailmentVerdict(
                False, "finite-countermodel", chase_budget, countermodel=result
            )
    return EntailmentVerdict(None, "race-undecided", chase_budget)


class _UnionAvoidance:
    """Adapter giving :func:`find_finite_model` a single ``holds_in``."""

    def __init__(self, query: UnionQuery):
        self._query = query

    def holds_in(self, instance: AtomSet) -> bool:
        return self._query.holds_in(instance)


def _find_model_avoiding_all(
    kb: KnowledgeBase, query: UnionQuery, domain_budget: int
) -> Optional[AtomSet]:
    result = find_finite_model(
        kb,
        domain_budget=domain_budget,
        avoid=_UnionAvoidance(query),  # type: ignore[arg-type]
    )
    return result.model

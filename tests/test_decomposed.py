"""Tests for decomposition-based CQ evaluation (repro.query.decomposed),
including property-based equivalence with the backtracking search."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kbs.generators import grid_instance, path_instance
from repro.logic.atoms import Atom, Predicate
from repro.logic.atomset import AtomSet
from repro.logic.homomorphism import maps_into
from repro.logic.parser import parse_atoms
from repro.logic.terms import Constant, Variable
from repro.query import ConjunctiveQuery, boolean_cq
from repro.query.decomposed import DecomposedQuery, holds_via_decomposition


class TestCorrectnessCases:
    def test_single_atom(self):
        q = boolean_cq("p(X)")
        assert holds_via_decomposition(q, parse_atoms("p(a)"))
        assert not holds_via_decomposition(q, parse_atoms("q(a)"))

    def test_join_through_atom_free_bag(self):
        """The soundness trap: X is shared between two atoms whose bags
        connect through a bag without X-atoms — join-projection must
        propagate the binding."""
        q = boolean_cq("p(X, A), q(X, B)")
        assert holds_via_decomposition(q, parse_atoms("p(a, c), q(a, d)"))
        assert not holds_via_decomposition(q, parse_atoms("p(a, c), q(b, c)"))

    def test_triangle_query(self):
        q = boolean_cq("e(X, Y), e(Y, Z), e(Z, X)")
        assert holds_via_decomposition(q, parse_atoms("e(a, b), e(b, c), e(c, a)"))
        assert not holds_via_decomposition(q, parse_atoms("e(a, b), e(b, c)"))

    def test_long_path_query(self):
        q = boolean_cq("e(A, B), e(B, C), e(C, D), e(D, E)")
        assert holds_via_decomposition(q, path_instance(6))
        assert not holds_via_decomposition(q, path_instance(3))

    def test_constants_in_query(self):
        q = boolean_cq("e(n0, X), e(X, n2)")
        assert holds_via_decomposition(q, path_instance(4))
        q_bad = boolean_cq("e(n2, X), e(X, n1)")
        assert not holds_via_decomposition(q_bad, path_instance(4))

    def test_grid_pattern(self):
        q = boolean_cq("h(A, B), v(A, C), h(C, D), v(B, D)")
        assert holds_via_decomposition(q, grid_instance(3))

    def test_width_of_path_query_is_1(self):
        dq = DecomposedQuery(boolean_cq("e(A, B), e(B, C), e(C, D)"))
        assert dq.width == 1

    def test_satisfying_assignment_is_homomorphism(self):
        q = boolean_cq("e(X, Y), e(Y, Z)")
        instance = parse_atoms("e(a, b), e(b, c)")
        assignment = DecomposedQuery(q).satisfying_assignment(instance)
        assert assignment is not None
        assert assignment.is_homomorphism(q.atoms, instance)

    def test_satisfying_assignment_none_when_absent(self):
        q = boolean_cq("e(X, X)")
        assert DecomposedQuery(q).satisfying_assignment(parse_atoms("e(a, b)")) is None

    def test_disconnected_query(self):
        q = boolean_cq("p(X), q(Y)")
        assert holds_via_decomposition(q, parse_atoms("p(a), q(b)"))
        assert not holds_via_decomposition(q, parse_atoms("p(a)"))


# ---------------------------------------------------------------------------
# property-based equivalence with the backtracking evaluator
# ---------------------------------------------------------------------------

VARIABLES = [Variable(f"Q{i}") for i in range(4)]
CONSTANTS = [Constant(c) for c in "ab"]
PREDICATES = [Predicate("p", 1), Predicate("e", 2)]


@st.composite
def query_strategy(draw):
    atoms = draw(
        st.lists(
            st.builds(
                lambda pred, args: Atom(pred, tuple(args[: pred.arity])),
                st.sampled_from(PREDICATES),
                st.lists(
                    st.sampled_from(VARIABLES), min_size=2, max_size=2
                ),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return ConjunctiveQuery(AtomSet(atoms))


@st.composite
def instance_strategy(draw):
    atoms = draw(
        st.lists(
            st.builds(
                lambda pred, args: Atom(pred, tuple(args[: pred.arity])),
                st.sampled_from(PREDICATES),
                st.lists(st.sampled_from(CONSTANTS), min_size=2, max_size=2),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return AtomSet(atoms)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(query_strategy(), instance_strategy())
def test_decomposed_agrees_with_backtracking(query, instance):
    expected = maps_into(query.atoms, instance)
    assert holds_via_decomposition(query, instance) == expected


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(query_strategy(), instance_strategy())
def test_decomposed_assignment_is_valid_when_found(query, instance):
    assignment = DecomposedQuery(query).satisfying_assignment(instance)
    if assignment is not None:
        assert assignment.is_homomorphism(query.atoms, instance)
    else:
        assert not maps_into(query.atoms, instance)

"""Query-side perf: UCQ rewriting, compiled-plan cache, batched eval.

Two layers:

* the original micro-benches — backtracking vs tree-decomposition DP on
  path/grid queries (the paper's treewidth theme);
* ``bench_perf_query_table`` — the CI ``query-gate`` table.  Every
  workload/query pair is answered in two modes, back to back on the
  same machine:

  - **race** — ``rewrite=False``: the Theorem-1 forward-chase /
    countermodel race, from scratch per request (the pre-rewriting
    serving path);
  - **accel** — planner-routed ``rewrite-first``: the cached compiled
    UCQ plan evaluated against the base facts, falling back to the race
    only when the plan is inconclusive.

  Three row kinds: ``rewrite`` rows (analyzer-identified linear/guarded
  rulesets — the accel side must answer from the plan alone and beat
  the race by :data:`MIN_REWRITE_SPEEDUP`); ``fallback`` rows
  (non-rewritable rulesets — the accel side degrades to the race plus a
  memoized negative plan, and must cost at most
  :data:`MAX_FALLBACK_RATIO` of the plain race); one ``batch`` row (a
  ``batch_entail`` job over distinct CQs vs the same CQs as sequential
  jobs).  Each mode's seconds are archived as twin tables
  (``results/perf_query.json`` / ``results/perf_query_race.json``) so
  the CI gate can hold the same-machine floor and ceiling with
  ``compare_results.py --min-speedup / --max-ratio``; identical
  entailment answers per row are asserted in-bench.

  The table finishes with the repeated-distinct-query smoke: a fresh
  two-tier plan cache serving :data:`SMOKE_REPEATS` rounds of the same
  distinct-query set must report a hit ratio >=
  :data:`MIN_SMOKE_HIT_RATIO` (the steady-state serving claim).
"""

import time

import pytest

from repro.kbs.generators import grid_instance, layered_kb, path_instance
from repro.kbs.witnesses import (
    guarded_chain_kb,
    manager_kb,
    transitive_closure_kb,
)
from repro.kbs.staircase import staircase_kb
from repro.logic.homcache import get_cache
from repro.logic.homomorphism import maps_into
from repro.logic.serialization import dump_kb
from repro.query import boolean_cq, default_plan_cache
from repro.query.decomposed import DecomposedQuery
from repro.query.plans import QueryPlanCache
from repro.service.jobs import JobRequest, execute_job
from repro.util import Table

from conftest import quiesced_gc, save_table

PATH_QUERY = boolean_cq("e(A, B), e(B, C), e(C, D), e(D, E), e(E, F)")
GRID_QUERY = boolean_cq(
    "h(A, B), v(A, C), h(C, D), v(B, D), h(B, E), v(E, G), h(D, G)"
)


@pytest.mark.parametrize("size", [30, 100])
def bench_backtracking_path_query(benchmark, size):
    instance = path_instance(size)
    assert benchmark(lambda: maps_into(PATH_QUERY.atoms, instance))


@pytest.mark.parametrize("size", [30, 100])
def bench_decomposed_path_query(benchmark, size):
    instance = path_instance(size)
    compiled = DecomposedQuery(PATH_QUERY)
    assert benchmark(lambda: compiled.holds_in(instance))


def bench_decomposed_compilation(benchmark):
    compiled = benchmark(lambda: DecomposedQuery(GRID_QUERY))
    assert compiled.width >= 1


@pytest.mark.parametrize("n", [4, 6])
def bench_decomposed_grid_query(benchmark, n):
    instance = grid_instance(n)
    compiled = DecomposedQuery(GRID_QUERY)
    result = benchmark(lambda: compiled.holds_in(instance))
    assert result == maps_into(GRID_QUERY.atoms, instance)


# ---------------------------------------------------------------------------
# the query-gate table (CI: query-gate)
# ---------------------------------------------------------------------------

#: Same-machine floor on ``rewrite`` rows: the cached-plan path must be
#: at least this many times faster than the per-request race.
MIN_REWRITE_SPEEDUP = 2.0

#: Same-machine ceiling on ``fallback`` rows: attempting (and memoizing
#: the refusal of) a rewrite on a non-rewritable ruleset may cost at
#: most this fraction more than the plain race.
MAX_FALLBACK_RATIO = 1.25

#: Serving steady state: each mode answers every row this many times;
#: the plan is computed once and reused on the later repetitions, the
#: race pays its full cost every time — exactly the serving asymmetry
#: the tentpole exists for.
ROW_REPS = 5

#: (workload, kb factory, query, kind).  The rewrite rows cover both
#: fragments (layered/managers linear, guarded-chain guarded) and both
#: answers, picked where the race does real work — a deep chase before
#: the hit, or a fixpoint/countermodel refutation.  (An entailed query
#: the race hits on its first steps has no 2x headroom: both modes are
#: dominated by request parsing.  The speedup claim is about the
#: requests that were expensive.)  The fallback rows are the analyzer's
#: None-fragment witnesses.
GATE_ROWS = (
    ("layered-6x2", lambda: layered_kb(6, fanout=2), "l6(X)", "rewrite"),
    ("layered-6x2", lambda: layered_kb(6, fanout=2), "nosuch(X)", "rewrite"),
    ("managers", manager_kb, "emp(X), mgr(X, X)", "rewrite"),
    ("guarded-chain", guarded_chain_kb, "q(X, Y), q(Y, Z)", "rewrite"),
    ("transitive-7", lambda: transitive_closure_kb(7), "e(v0, v6)", "fallback"),
    ("staircase", staircase_kb, "v(X, Y), v(Y, Z)", "fallback"),
)

#: The distinct-CQ batch row: one ``batch_entail`` job vs the same CQs
#: as sequential single-query jobs (non-rewritable ruleset, so the
#: amortization measured is the shared parse + single chase).
BATCH_WORKLOAD = ("transitive-7", lambda: transitive_closure_kb(7))
BATCH_QUERIES = (
    "e(v0, v6)",
    "e(v6, v0)",
    "e(v1, v5)",
    "e(X, X)",
    "e(v0, X), e(X, v6)",
    "e(v2, v2)",
)

#: The repeated-distinct-query smoke: SMOKE_REPEATS rounds over the
#: distinct set must keep the two-tier plan cache above the floor.
SMOKE_QUERIES = (
    "mgr(X, Y)",
    "mgr(ann, Y)",
    "emp(X)",
    "mgr(X, Y), emp(Y)",
    "emp(X), mgr(X, X)",
    "mgr(X, Y), mgr(Y, Z)",
)
SMOKE_REPEATS = 10
MIN_SMOKE_HIT_RATIO = 0.8

#: The chase configuration both modes share (restricted chase, the
#: step and countermodel budgets the serving default uses): the only
#: difference between the two timed jobs is the ``rewrite`` flag, so
#: the measured delta is the rewriting layer and nothing else.
RACE_CONFIG = dict(max_steps=200, model_budget=6)


def _timed(thunk, reps=ROW_REPS):
    get_cache().clear()
    with quiesced_gc():
        started = time.perf_counter()
        results = [thunk() for _ in range(reps)]
        return time.perf_counter() - started, results


def bench_perf_query_table():
    """Archive the rewrite-vs-race twin tables + the hit-ratio smoke.

    Both modes run the same explicit chase configuration and differ
    only in the ``rewrite`` flag — no planner, so neither side is
    charged the analysis probes (their cost and amortization are the
    analyzer-gate's claim, bench_perf_analyze) and the measured delta
    is the rewriting layer alone.  The race side is the serving path
    exactly as PR 9 left it."""
    headers = ["workload", "query", "kind", "entailed", "seconds"]
    accel = Table(
        headers, title="perf: cached rewriting plans + batched eval"
    )
    race = Table(
        headers, title="perf: per-request Theorem-1 race (reference)"
    )
    default_plan_cache().clear()

    for workload, make_kb, query, kind in GATE_ROWS:
        kb_text = dump_kb(make_kb())
        race_seconds, race_results = _timed(
            lambda: execute_job(
                JobRequest(
                    op="entail", kb_text=kb_text, query=query,
                    rewrite=False, **RACE_CONFIG,
                )
            )
        )
        accel_seconds, accel_results = _timed(
            lambda: execute_job(
                JobRequest(
                    op="entail", kb_text=kb_text, query=query,
                    rewrite=True, **RACE_CONFIG,
                )
            )
        )
        for result in race_results + accel_results:
            assert result.ok, result.error
        answer = race_results[0].entailed
        assert all(r.entailed == answer for r in race_results + accel_results), (
            f"{workload}/{query}: rewrite and race answers disagree"
        )
        if kind == "rewrite":
            assert accel_results[-1].method in (
                "ucq-rewrite-hit", "ucq-rewrite-miss",
            ), f"{workload}/{query}: expected a plan answer, got {accel_results[-1].method}"
            speedup = race_seconds / max(accel_seconds, 1e-9)
            assert speedup >= MIN_REWRITE_SPEEDUP, (
                f"{workload}/{query}: rewriting only {speedup:.2f}x faster "
                f"(floor {MIN_REWRITE_SPEEDUP}x)"
            )
        else:
            ratio = accel_seconds / max(race_seconds, 1e-9)
            assert ratio <= MAX_FALLBACK_RATIO, (
                f"{workload}/{query}: fallback costs {ratio:.2f}x the race "
                f"(ceiling {MAX_FALLBACK_RATIO})"
            )
        race.add_row(workload, query, kind, answer, round(race_seconds, 4))
        accel.add_row(workload, query, kind, answer, round(accel_seconds, 4))

    # -- the distinct-CQ batch row --------------------------------------
    batch_name, batch_factory = BATCH_WORKLOAD
    batch_text = dump_kb(batch_factory())
    seq_seconds, seq_rounds = _timed(
        lambda: [
            execute_job(
                JobRequest(
                    op="entail", kb_text=batch_text, query=q, **RACE_CONFIG
                )
            )
            for q in BATCH_QUERIES
        ]
    )
    batch_seconds, batch_rounds = _timed(
        lambda: execute_job(
            JobRequest(
                op="batch_entail",
                kb_text=batch_text,
                queries=list(BATCH_QUERIES),
                **RACE_CONFIG,
            )
        )
    )
    sequential = seq_rounds[0]
    batched = batch_rounds[0]
    assert batched.ok, batched.error
    batch_answers = [row["entailed"] for row in batched.results]
    assert batch_answers == [job.entailed for job in sequential], (
        "batched verdicts diverge from sequential jobs"
    )
    batch_speedup = seq_seconds / max(batch_seconds, 1e-9)
    assert batch_speedup > 1.0, (
        f"batch_entail slower than sequential jobs ({batch_speedup:.2f}x)"
    )
    label = f"{len(BATCH_QUERIES)} distinct CQs"
    race.add_row(batch_name, label, "batch", True, round(seq_seconds, 4))
    accel.add_row(batch_name, label, "batch", True, round(batch_seconds, 4))

    # -- the repeated-distinct-query hit-ratio smoke --------------------
    cache = QueryPlanCache()
    kb = manager_kb()
    for _ in range(SMOKE_REPEATS):
        for text in SMOKE_QUERIES:
            cache.plan_for(kb, boolean_cq(text))
    assert cache.hit_ratio >= MIN_SMOKE_HIT_RATIO, (
        f"plan-cache hit ratio {cache.hit_ratio:.3f} below "
        f"{MIN_SMOKE_HIT_RATIO} on the repeated-distinct-query smoke"
    )

    note = (
        f"{ROW_REPS} reps per mode per row; in-bench floors: rewrite rows "
        f">={MIN_REWRITE_SPEEDUP}x vs the race, fallback rows <="
        f"{MAX_FALLBACK_RATIO}x, batch row {batch_speedup:.1f}x over "
        f"sequential; plan-cache smoke {len(SMOKE_QUERIES)} distinct CQs x "
        f"{SMOKE_REPEATS} rounds -> hit ratio {cache.hit_ratio:.3f} "
        f"(floor {MIN_SMOKE_HIT_RATIO})."
    )
    save_table("perf_query", accel, note)
    save_table(
        "perf_query_race",
        race,
        "Reference timings for the same rows on the per-request race "
        "path, measured back to back on the same machine.",
    )

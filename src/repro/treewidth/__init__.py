"""Treewidth substrate: graphs, Gaifman graphs, tree decompositions,
heuristic and exact treewidth, lower bounds, and grid containment.

The package-level helpers :func:`treewidth` and :func:`treewidth_bounds`
are the entry points used by the chase experiments: they take atomsets
(not graphs) and go through the Gaifman graph (Definition 4 treewidth of
an atomset equals primal-graph treewidth).
"""

from __future__ import annotations

from typing import Iterable, Union

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from .decomposition import TreeDecomposition
from .elimination import (
    decomposition_from_order,
    eliminate_in_order,
    min_degree_order,
    min_fill_order,
    treewidth_upper_bound,
)
from .exact import SearchBudgetExceeded, has_width_at_most, treewidth_exact
from .gaifman import co_occurrence_pairs, gaifman_graph
from .graph import Graph
from .grids import contains_grid, find_grid, grid_from_coordinates, grid_lower_bound
from .hypertree import bag_cover_number, hypertree_width_upper_bound
from .nice import NiceNode, NiceTreeDecomposition, make_nice
from .lowerbounds import degeneracy, mmd_lower_bound

__all__ = [
    "Graph",
    "NiceNode",
    "NiceTreeDecomposition",
    "bag_cover_number",
    "hypertree_width_upper_bound",
    "make_nice",
    "SearchBudgetExceeded",
    "TreeDecomposition",
    "co_occurrence_pairs",
    "contains_grid",
    "decomposition_from_order",
    "degeneracy",
    "eliminate_in_order",
    "find_grid",
    "gaifman_graph",
    "grid_from_coordinates",
    "grid_lower_bound",
    "has_width_at_most",
    "min_degree_order",
    "min_fill_order",
    "mmd_lower_bound",
    "treewidth",
    "treewidth_bounds",
    "treewidth_exact",
    "treewidth_upper_bound",
]

AtomsLike = Union[AtomSet, Iterable[Atom]]


def treewidth(atoms: AtomsLike, state_budget: int = 2_000_000) -> int:
    """The exact treewidth of an atomset (Definition 4).

    Computed as the treewidth of the Gaifman graph.  Returns -1 for the
    empty atomset, 0 for nonempty atomsets whose atoms are all unary.
    May raise :class:`SearchBudgetExceeded` on structures beyond the
    exact solver; use :func:`treewidth_bounds` there.
    """
    return treewidth_exact(gaifman_graph(atoms), state_budget=state_budget)


def treewidth_bounds(atoms: AtomsLike) -> tuple[int, int]:
    """A cheap (lower, upper) treewidth bracket for an atomset:
    MMD lower bound and min-fill upper bound on the Gaifman graph."""
    graph = gaifman_graph(atoms)
    if len(graph) == 0:
        return (-1, -1)
    return (mmd_lower_bound(graph), treewidth_upper_bound(graph, "min_fill")[0])

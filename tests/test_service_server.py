"""Tests for the asyncio front end (repro.service.server).

No pytest-asyncio here: each test drives its own event loop with
``asyncio.run``.  The concurrency test is the satellite requirement —
at least 32 overlapping requests, answers checked, dedup coalescing
observed, clean shutdown."""

import asyncio
import io
import json

from repro import staircase_kb
from repro.kbs.witnesses import transitive_closure_kb
from repro.logic.serialization import dump_kb
from repro.obs import JsonlTracer, TracingObserver
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, observing
from repro.service.executor import JobExecutor
from repro.service.faults import FaultPlan
from repro.service.server import EntailmentServer

STAIRCASE = dump_kb(staircase_kb())
TC = dump_kb(transitive_closure_kb(3))
STAIR_QUERY = "v(X, Y), v(Y, Z)"


async def start_server(tmp_path, **server_kwargs):
    registry = MetricsRegistry()
    executor = JobExecutor(0, snapshot_dir=tmp_path, registry=registry)
    server = EntailmentServer(executor, port=0, **server_kwargs)
    await server.start()
    task = asyncio.ensure_future(server.serve_until_stopped())
    return server, executor, task


async def request_lines(port, lines):
    """Send JSON lines on one connection; collect one response each."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for line in lines:
        writer.write((json.dumps(line) + "\n").encode())
    await writer.drain()
    responses = [json.loads(await reader.readline()) for _ in lines]
    writer.close()
    await writer.wait_closed()
    return responses


async def shut_down(server, executor, task):
    server.request_stop()
    await asyncio.wait_for(task, timeout=30)
    executor.shutdown()


class TestProtocol:
    def test_ping_stats_and_unknown_op(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)
            responses = await request_lines(
                server.port,
                [
                    {"op": "ping", "id": "p"},
                    {"op": "stats", "id": "s"},
                    {"op": "nope", "id": "u"},
                ],
            )
            await shut_down(server, executor, task)
            return {r["id"]: r for r in responses}

        by_id = asyncio.run(scenario())
        assert by_id["p"]["ok"]
        assert by_id["s"]["ok"] and "metrics" in by_id["s"]
        assert not by_id["u"]["ok"]

    def test_entail_and_chase_round_trip(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)
            responses = await request_lines(
                server.port,
                [
                    {
                        "op": "entail",
                        "kb_text": STAIRCASE,
                        "query": STAIR_QUERY,
                        "max_steps": 60,
                        "id": "e",
                    },
                    {
                        "op": "chase",
                        "kb_text": TC,
                        "max_steps": 100,
                        "id": "c",
                    },
                ],
            )
            await shut_down(server, executor, task)
            return {r["id"]: r for r in responses}

        by_id = asyncio.run(scenario())
        assert by_id["e"]["ok"] and by_id["e"]["entailed"] is True
        assert by_id["c"]["ok"] and by_id["c"]["terminated"]

    def test_malformed_line_gets_error_response(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"this is not json\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await shut_down(server, executor, task)
            return response

        response = asyncio.run(scenario())
        assert not response["ok"]
        assert "bad request" in response["error"]

    def test_batch_op(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)
            responses = await request_lines(
                server.port,
                [
                    {
                        "op": "batch",
                        "id": "b",
                        "requests": [
                            {
                                "op": "entail",
                                "kb_text": STAIRCASE,
                                "query": STAIR_QUERY,
                                "max_steps": 60,
                                "id": "b1",
                            },
                            {
                                "op": "chase",
                                "kb_text": STAIRCASE,
                                "max_steps": 5,
                                "id": "b2",
                            },
                        ],
                    }
                ],
            )
            await shut_down(server, executor, task)
            return responses[0]

        batch = asyncio.run(scenario())
        assert batch["ok"] and batch["id"] == "b"
        results = {r["id"]: r for r in batch["results"]}
        assert results["b1"]["entailed"] is True
        assert results["b2"]["applications"] == 5

    def test_default_timeout_applies(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(
                tmp_path, default_timeout=0.0
            )
            responses = await request_lines(
                server.port,
                [
                    {
                        "op": "entail",
                        "kb_text": STAIRCASE,
                        "query": "nosuch(X)",
                        "max_steps": 10**6,
                        "id": "t",
                    }
                ],
            )
            await shut_down(server, executor, task)
            return responses[0]

        response = asyncio.run(scenario())
        assert response["ok"]
        assert response["entailed"] is None
        assert response["incomplete"] and response["deadline_expired"]


class _PoisonOnChase(Observer):
    """Raises from the service_request hook for chase ops only — a real
    in-tree path by which an exception can escape ``_answer``."""

    def service_request(self, *, op, coalesced):
        if op == "chase":
            raise RuntimeError("poisoned observer")


class TestResponseGuarantee:
    """Every request line gets exactly one reply — including internal
    errors, poisoned batch members, and executor-level failures."""

    def test_internal_error_still_gets_a_reply(self, tmp_path):
        # Regression: an exception escaping the dispatcher used to be
        # swallowed by gather(return_exceptions=True) in the connection
        # task; the client waited forever for this id.
        async def scenario():
            server, executor, task = await start_server(tmp_path)

            async def boom(obj):
                raise RuntimeError("dispatch exploded")

            server._dispatch = boom
            response = (
                await request_lines(server.port, [{"op": "ping", "id": "d"}])
            )[0]
            errors = server.errors
            await shut_down(server, executor, task)
            return response, errors

        response, errors = asyncio.run(scenario())
        assert response["id"] == "d"
        assert not response["ok"]
        assert "internal error: RuntimeError" in response["error"]
        assert errors == 1

    def test_observer_explosion_gets_error_reply_with_id(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)
            responses = await request_lines(
                server.port,
                [
                    {"op": "chase", "kb_text": STAIRCASE, "max_steps": 5, "id": "x"},
                    {"op": "ping", "id": "p"},
                ],
            )
            await shut_down(server, executor, task)
            return {r["id"]: r for r in responses}

        with observing(_PoisonOnChase()):
            by_id = asyncio.run(scenario())
        assert not by_id["x"]["ok"]
        assert "internal error" in by_id["x"]["error"]
        assert by_id["p"]["ok"]  # the connection survived the explosion

    def test_poisoned_batch_member_does_not_kill_siblings(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)
            batch = (
                await request_lines(
                    server.port,
                    [
                        {
                            "op": "batch",
                            "id": "b",
                            "requests": [
                                {
                                    "op": "entail",
                                    "kb_text": STAIRCASE,
                                    "query": STAIR_QUERY,
                                    "max_steps": 60,
                                    "id": "good",
                                },
                                {
                                    "op": "chase",
                                    "kb_text": STAIRCASE,
                                    "max_steps": 5,
                                    "id": "bad",
                                },
                            ],
                        }
                    ],
                )
            )[0]
            await shut_down(server, executor, task)
            return batch

        with observing(_PoisonOnChase()):
            batch = asyncio.run(scenario())
        assert batch["ok"] and batch["id"] == "b"
        results = {r["id"]: r for r in batch["results"]}
        assert results["good"]["ok"] and results["good"]["entailed"] is True
        assert not results["bad"]["ok"]
        assert "batch member failed" in results["bad"]["error"]

    def test_executor_submit_failure_becomes_error_result(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)

            def refuse(request):
                raise RuntimeError("pool is gone")

            executor.submit = refuse
            response = (
                await request_lines(
                    server.port,
                    [
                        {
                            "op": "entail",
                            "kb_text": STAIRCASE,
                            "query": STAIR_QUERY,
                            "max_steps": 60,
                            "id": "e",
                        }
                    ],
                )
            )[0]
            await shut_down(server, executor, task)
            return response

        response = asyncio.run(scenario())
        assert response["id"] == "e"
        assert not response["ok"]
        assert "executor failure" in response["error"]

    def test_drop_connection_fault_aborts_then_recovers(self, tmp_path):
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("server.drop_connection")

        async def scenario():
            server, executor, task = await start_server(
                tmp_path / "snaps", fault_plan=plan
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b'{"op": "ping", "id": "1"}\n')
            await writer.drain()
            try:
                line = await reader.readline()
            except (ConnectionError, OSError):
                line = b""
            writer.close()
            # second connection: the fuse is spent, service is healthy
            retry = (
                await request_lines(server.port, [{"op": "ping", "id": "2"}])
            )[0]
            await shut_down(server, executor, task)
            return line, retry

        line, retry = asyncio.run(scenario())
        assert line == b""  # aborted before any response bytes
        assert retry["ok"] and retry["id"] == "2"
        assert plan.fired("server.drop_connection") == 1


class TestConcurrency:
    def test_32_overlapping_requests_coalesce_and_shut_down_cleanly(
        self, tmp_path
    ):
        identical = {
            "op": "entail",
            "kb_text": STAIRCASE,
            "query": STAIR_QUERY,
            "max_steps": 60,
        }
        distinct = {
            "op": "entail",
            "kb_text": TC,
            "query": "e(X, Y), e(Y, Z)",
            "max_steps": 100,
        }

        async def scenario():
            server, executor, task = await start_server(tmp_path)
            connections = []
            for conn in range(4):
                lines = []
                for i in range(8):
                    base = identical if i % 2 == 0 else distinct
                    line = dict(base)
                    line["id"] = f"c{conn}-{i}"
                    lines.append(line)
                connections.append(request_lines(server.port, lines))
            batches = await asyncio.gather(*connections)
            responses = [r for batch in batches for r in batch]
            stats = (
                await request_lines(server.port, [{"op": "stats", "id": "s"}])
            )[0]
            await shut_down(server, executor, task)
            return responses, stats, server

        responses, stats, server = asyncio.run(scenario())
        assert len(responses) == 32
        assert {r["id"] for r in responses} == {
            f"c{conn}-{i}" for conn in range(4) for i in range(8)
        }
        assert all(r["ok"] for r in responses)
        assert all(r["entailed"] is True for r in responses)
        coalesced = sum(1 for r in responses if r["coalesced"])
        assert coalesced > 0  # identical in-flight requests shared a job
        assert stats["requests"] == 32
        assert stats["coalesced"] == coalesced
        assert stats["jobs"] + coalesced == 32
        assert stats["errors"] == 0
        # clean shutdown: nothing left in flight, nothing pending
        assert len(server._inflight) == 0
        assert server.executor.pending == 0

    def test_coalesced_requests_trace_separately_but_share_the_job_span(
        self, tmp_path
    ):
        # Satellite: dedup-coalesced requests must each mint their own
        # service_request span (their own trace) while linking to the
        # single shared service_job span via job_trace_id/job_span_id.
        # The slow_job fuse pins the first job in flight long enough for
        # the second, identical request to coalesce deterministically.
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.slow_job", payload={"seconds": 0.5})
        buffer = io.StringIO()
        registry = MetricsRegistry()
        observer = TracingObserver(JsonlTracer(buffer), registry=registry)
        line = {
            "op": "entail",
            "kb_text": STAIRCASE,
            "query": STAIR_QUERY,
            "max_steps": 60,
        }

        async def scenario():
            executor = JobExecutor(
                0,
                snapshot_dir=tmp_path / "snaps",
                registry=registry,
                fault_dir=plan.root,
            )
            server = EntailmentServer(executor, port=0)
            await server.start()
            task = asyncio.ensure_future(server.serve_until_stopped())
            responses = await request_lines(
                server.port,
                [{**line, "id": "r0"}, {**line, "id": "r1"}],
            )
            await shut_down(server, executor, task)
            return responses

        with observing(observer):
            responses = asyncio.run(scenario())

        assert all(r["ok"] and r["entailed"] is True for r in responses)
        assert sum(1 for r in responses if r["coalesced"]) == 1
        assert plan.fired("worker.slow_job") == 1

        events = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        request_opens = [
            e
            for e in events
            if e["kind"] == "span_open" and e["name"] == "service_request"
        ]
        job_opens = [
            e
            for e in events
            if e["kind"] == "span_open" and e["name"] == "service_job"
        ]
        # each request got its own span in its own trace; one shared job
        assert len(request_opens) == 2
        assert len({e["trace_id"] for e in request_opens}) == 2
        assert len(job_opens) == 1
        job = job_opens[0]
        primary = next(e for e in request_opens if not e["coalesced"])
        follower = next(e for e in request_opens if e["coalesced"])
        # the job span is a child of the primary request's span ...
        assert job["trace_id"] == primary["trace_id"]
        assert job["parent_span_id"] == primary["span_id"]
        # ... and the coalesced request records an explicit link to it
        assert follower["job_trace_id"] == job["trace_id"]
        assert follower["job_span_id"] == job["span_id"]
        # both waiters saw the result: both request spans closed ok
        request_closes = [
            e
            for e in events
            if e["kind"] == "span_close" and e["name"] == "service_request"
        ]
        assert len(request_closes) == 2
        assert all(e["status"] == "ok" for e in request_closes)

    def test_shutdown_op_stops_server(self, tmp_path):
        async def scenario():
            server, executor, task = await start_server(tmp_path)
            response = (
                await request_lines(
                    server.port, [{"op": "shutdown", "id": "x"}]
                )
            )[0]
            await asyncio.wait_for(task, timeout=30)
            executor.shutdown()
            # further connections are refused once stopped
            try:
                await asyncio.open_connection("127.0.0.1", server.port)
                refused = False
            except OSError:
                refused = True
            return response, refused

        response, refused = asyncio.run(scenario())
        assert response["ok"]
        assert refused

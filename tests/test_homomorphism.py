"""Tests for repro.logic.homomorphism."""

from repro.logic.homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    maps_into,
)
from repro.logic.parser import parse_atoms
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestBasicSearch:
    def test_variable_to_constant(self):
        hom = find_homomorphism(parse_atoms("p(X)"), parse_atoms("p(a)"))
        assert hom is not None
        assert hom[X] == a

    def test_no_homomorphism_on_predicate_mismatch(self):
        assert find_homomorphism(parse_atoms("p(X)"), parse_atoms("q(a)")) is None

    def test_constants_must_match(self):
        assert find_homomorphism(parse_atoms("p(a)"), parse_atoms("p(b)")) is None
        assert find_homomorphism(parse_atoms("p(a)"), parse_atoms("p(a)")) is not None

    def test_join_variable_consistency(self):
        source = parse_atoms("e(X, Y), e(Y, Z)")
        target = parse_atoms("e(a, b), e(b, c)")
        hom = find_homomorphism(source, target)
        assert hom is not None
        assert (hom[X], hom[Y], hom[Z]) == (a, b, c)

    def test_repeated_variable_needs_loop(self):
        source = parse_atoms("e(X, X)")
        assert find_homomorphism(source, parse_atoms("e(a, b)")) is None
        assert find_homomorphism(source, parse_atoms("e(a, a)")) is not None

    def test_three_path_does_not_map_into_two_cycle_with_constants(self):
        source = parse_atoms("h(a, X), h(X, Y), h(Y, a)")
        target = parse_atoms("h(a, Z), h(Z, a)")
        assert find_homomorphism(source, target) is None

    def test_path_folds_into_loop(self):
        source = parse_atoms("e(X, Y), e(Y, Z)")
        target = parse_atoms("e(W, W)")
        hom = find_homomorphism(source, target)
        assert hom is not None
        assert hom[X] == hom[Y] == hom[Z]

    def test_empty_source_maps_trivially(self):
        assert find_homomorphism([], parse_atoms("p(a)")) is not None

    def test_deterministic_witness(self):
        source = parse_atoms("p(X)")
        target = parse_atoms("p(a), p(b), p(c)")
        first = find_homomorphism(source, target)
        second = find_homomorphism(source, target)
        assert first == second


class TestEnumeration:
    def test_count_all(self):
        source = parse_atoms("p(X)")
        target = parse_atoms("p(a), p(b), p(c)")
        assert count_homomorphisms(source, target) == 3

    def test_count_joins(self):
        source = parse_atoms("e(X, Y)")
        target = parse_atoms("e(a, b), e(b, c), e(c, a)")
        assert count_homomorphisms(source, target) == 3

    def test_all_homs_have_full_domain(self):
        source = parse_atoms("e(X, Y), q(Y)")
        target = parse_atoms("e(a, b), q(b)")
        for hom in homomorphisms(source, target):
            assert hom.domain() == {X, Y}


class TestKnobs:
    def test_partial_pins_variables(self):
        source = parse_atoms("p(X)")
        target = parse_atoms("p(a), p(b)")
        hom = find_homomorphism(source, target, partial=Substitution({X: b}))
        assert hom is not None and hom[X] == b

    def test_partial_can_make_unsatisfiable(self):
        source = parse_atoms("p(X)")
        target = parse_atoms("p(a)")
        assert (
            find_homomorphism(source, target, partial=Substitution({X: b})) is None
        )

    def test_forbidden_images(self):
        source = parse_atoms("p(X)")
        target = parse_atoms("p(a), p(b)")
        hom = find_homomorphism(source, target, forbidden_images=[a])
        assert hom is not None and hom[X] == b

    def test_forbidden_images_can_block_everything(self):
        source = parse_atoms("p(X)")
        target = parse_atoms("p(a)")
        assert find_homomorphism(source, target, forbidden_images=[a]) is None

    def test_forbidden_applies_to_partial_too(self):
        source = parse_atoms("p(X)")
        target = parse_atoms("p(a)")
        assert (
            find_homomorphism(
                source, target, partial=Substitution({X: a}), forbidden_images=[a]
            )
            is None
        )

    def test_injective_search(self):
        source = parse_atoms("p(X), p(Y)")
        target_one = parse_atoms("p(a)")
        target_two = parse_atoms("p(a), p(b)")
        assert find_homomorphism(source, target_one, injective=True) is None
        assert find_homomorphism(source, target_two, injective=True) is not None


class TestSemanticHelpers:
    def test_maps_into(self):
        assert maps_into(parse_atoms("e(X, Y)"), parse_atoms("e(a, a)"))
        assert not maps_into(parse_atoms("e(X, X)"), parse_atoms("e(a, b)"))

    def test_hom_equivalence_of_path_and_fold(self):
        path = parse_atoms("e(X, Y), e(Y, Z)")
        edge = parse_atoms("e(U, V), e(V, W)")
        assert homomorphically_equivalent(path, edge)

    def test_hom_equivalence_fails_on_direction(self):
        loop = parse_atoms("e(X, X)")
        edge = parse_atoms("e(U, V)")
        # edge maps into loop, but loop does not map into edge
        assert maps_into(edge, loop)
        assert not maps_into(loop, edge)
        assert not homomorphically_equivalent(edge, loop)

    def test_witness_is_a_homomorphism(self):
        source = parse_atoms("e(X, Y), e(Y, Z), q(Z)")
        target = parse_atoms("e(a, b), e(b, c), q(c), e(c, a)")
        hom = find_homomorphism(source, target)
        assert hom is not None
        assert hom.is_homomorphism(source, target)

"""The bidirectional symbol table of the compiled kernel.

Predicates and terms are interned to dense small ints; the table keeps
the reverse arrays so every compiled result decodes back to the original
:class:`~repro.logic.atoms.Predicate` / :class:`~repro.logic.terms.Term`
objects.  Codes are keyed *by value* (terms hash by kind and name,
predicates by name and arity), which gives the two properties the rest
of the kernel leans on:

* **Kind-distinguished codes.**  ``Variable("a")`` and ``Constant("a")``
  are distinct dictionary keys, so a null and a constant sharing a name
  — legal, and easy to produce by merging KBs — never collide on a
  code (the interning edge-case tests pin this down).
* **Round-trip stability.**  Re-parsing the same text, merging KBs, or
  reloading a chase snapshot (:mod:`repro.service.snapshots` serializes
  atoms as text) interns every symbol back to the code it already has;
  derived compiled state survives save/load without translation.

The table is process-global (like the switches in
:mod:`repro.logic.indexing` and the observer in :mod:`repro.obs`): codes
are only ever compared against codes from the same process, and the
engine's derived structures are rebuilt rather than shipped across
process boundaries.  Assignment of new codes takes a lock (mirroring the
variable-rank counter in :mod:`repro.logic.terms`); lookups are plain
dict reads.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..atoms import Atom, Predicate
from ..terms import Term, Variable

__all__ = ["SymbolTable", "symbol_table", "reset_symbol_table"]


class SymbolTable:
    """Bidirectional ``Predicate``/``Term`` ↔ int maps.

    ``is_variable_code`` and ``term_sort_keys`` are dense lists indexed
    by term code — the evaluator's per-argument kind test and the
    candidate-order key (``(is_variable, name)``, the exact per-term
    component of :meth:`repro.logic.atoms.Atom.sort_key`) without
    touching a ``Term`` object.
    """

    __slots__ = (
        "_lock",
        "_term_codes",
        "_terms",
        "is_variable_code",
        "term_sort_keys",
        "_pred_codes",
        "_preds",
        "generation",
    )

    #: Distinguishes tables across :func:`reset_symbol_table` calls so
    #: per-atom encoding caches from a retired table are never trusted.
    _generations = 0

    def __init__(self) -> None:
        SymbolTable._generations += 1
        self.generation = SymbolTable._generations
        self._lock = threading.Lock()
        self._term_codes: dict[Term, int] = {}
        self._terms: list[Term] = []
        self.is_variable_code: list[bool] = []
        self.term_sort_keys: list[tuple[bool, str]] = []
        self._pred_codes: dict[Predicate, int] = {}
        self._preds: list[Predicate] = []

    # ------------------------------------------------------------------
    # terms
    # ------------------------------------------------------------------

    def encode_term(self, term: Term) -> int:
        """The code of *term*, assigning a fresh one on first sight."""
        code = self._term_codes.get(term)
        if code is not None:
            return code
        with self._lock:
            code = self._term_codes.get(term)
            if code is None:
                code = len(self._terms)
                self._terms.append(term)
                is_var = isinstance(term, Variable)
                self.is_variable_code.append(is_var)
                self.term_sort_keys.append((is_var, term.name))
                self._term_codes[term] = code
        return code

    def decode_term(self, code: int) -> Term:
        """The term object *code* was assigned to."""
        return self._terms[code]

    def encode_terms(self, terms: Iterable[Term]) -> tuple[int, ...]:
        encode = self.encode_term
        return tuple(encode(t) for t in terms)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------

    def encode_predicate(self, predicate: Predicate) -> int:
        code = self._pred_codes.get(predicate)
        if code is not None:
            return code
        with self._lock:
            code = self._pred_codes.get(predicate)
            if code is None:
                code = len(self._preds)
                self._preds.append(predicate)
                self._pred_codes[predicate] = code
        return code

    def decode_predicate(self, code: int) -> Predicate:
        return self._preds[code]

    # ------------------------------------------------------------------
    # atoms
    # ------------------------------------------------------------------

    def encode_atom(self, at: Atom) -> tuple[int, int, tuple[int, ...]]:
        """``(generation, predicate code, argument codes)`` for *at*,
        cached on the (immutable) atom — re-encoding the same atom
        object is one slot read.  The leading table generation lets an
        atom that outlives a :func:`reset_symbol_table` re-encode
        cleanly; hot-path callers index past it."""
        enc = at._enc
        if enc is None or enc[0] != self.generation:
            enc = (
                self.generation,
                self.encode_predicate(at.predicate),
                self.encode_terms(at.args),
            )
            object.__setattr__(at, "_enc", enc)
        return enc

    def __len__(self) -> int:
        return len(self._terms)

    def __repr__(self) -> str:
        return (
            f"SymbolTable({len(self._terms)} terms, "
            f"{len(self._preds)} predicates)"
        )


#: The process-global table every compiled structure encodes against.
_TABLE = SymbolTable()


def symbol_table() -> SymbolTable:
    """The process-global symbol table."""
    return _TABLE


def reset_symbol_table() -> SymbolTable:
    """Install a fresh table (tests only: cached ``Atom._enc`` encodings
    in *live* atoms are not invalidated, so callers must not mix atoms
    encoded against the old table into compiled searches afterwards).
    """
    global _TABLE
    _TABLE = SymbolTable()
    return _TABLE

"""Tests for repro.chase.aggregation (Definitions 14–16, Prop. 10–12)."""

from repro.chase import RobustSequence, core_chase, restricted_chase, robust_aggregation
from repro.kbs.witnesses import bts_not_fes_kb, fes_not_bts_kb
from repro.logic.homomorphism import maps_into
from repro.logic.isomorphism import isomorphic
from repro.logic.terms import Variable


class TestRobustSequenceInvariants:
    def test_g_i_isomorphic_to_f_i(self):
        """Definition 15: every G_i is isomorphic to F_i (via ρ_i)."""
        result = core_chase(fes_not_bts_kb(), max_steps=50)
        sequence = RobustSequence(result.derivation)
        for index, step in enumerate(result.derivation.steps):
            assert isomorphic(sequence.instances[index], step.instance), index

    def test_rho_is_the_witnessing_isomorphism(self):
        result = core_chase(fes_not_bts_kb(), max_steps=50)
        sequence = RobustSequence(result.derivation)
        for index, step in enumerate(result.derivation.steps):
            image = sequence.rho[index].apply(step.instance)
            assert image == sequence.instances[index], index

    def test_tau_maps_g_prev_into_g_next(self):
        """τ_i maps G_{i-1} into G_i (Definition 15's last remark)."""
        result = core_chase(fes_not_bts_kb(), max_steps=50)
        sequence = RobustSequence(result.derivation)
        for index in range(1, len(sequence)):
            previous = sequence.instances[index - 1]
            current = sequence.instances[index]
            assert sequence.tau[index].is_homomorphism(previous, current), index

    def test_tau_between_composes(self):
        result = core_chase(fes_not_bts_kb(), max_steps=50)
        sequence = RobustSequence(result.derivation)
        last = len(sequence) - 1
        composed = sequence.tau_between(0, last)
        assert composed.is_homomorphism(
            sequence.instances[0], sequence.instances[last]
        )

    def test_renaming_never_increases_rank(self):
        """Definition 14: ρ_σ(X) is the <-smallest of the fiber, so
        composite images never exceed the original variable."""
        result = core_chase(bts_not_fes_kb(), max_steps=12)
        sequence = RobustSequence(result.derivation)
        last = len(sequence) - 1
        for var in sequence.instances[0].variables():
            image = sequence.tau_between(0, last).apply_term(var)
            if isinstance(image, Variable):
                assert image.rank <= var.rank

    def test_monotonic_run_has_trivial_renaming(self):
        result = restricted_chase(bts_not_fes_kb(), max_steps=10)
        sequence = RobustSequence(result.derivation)
        assert sequence.last == result.derivation.last_instance


class TestStability:
    def test_stable_since_monotone_terms_never_reset(self):
        result = restricted_chase(bts_not_fes_kb(), max_steps=10)
        sequence = RobustSequence(result.derivation)
        # in a monotonic run, a term is stable from its creation step
        for term, since in sequence.stable_since.items():
            assert 0 <= since < len(sequence)

    def test_stable_part_subset_of_aggregate(self):
        result = core_chase(bts_not_fes_kb(), max_steps=12)
        sequence = RobustSequence(result.derivation)
        assert sequence.stable_part(2).issubset(sequence.aggregate())

    def test_larger_patience_smaller_part(self):
        result = core_chase(bts_not_fes_kb(), max_steps=12)
        sequence = RobustSequence(result.derivation)
        small = sequence.stable_part(patience=6)
        large = sequence.stable_part(patience=1)
        assert small.issubset(large)

    def test_stabilization_report_keys(self):
        result = core_chase(bts_not_fes_kb(), max_steps=8)
        report = RobustSequence(result.derivation).stabilization_report()
        assert set(report) == {
            "steps",
            "terms_in_G_S",
            "atoms_in_G_S",
            "terms_stable_half_run",
            "atoms_stable_part",
        }


class TestSemantics:
    def test_robust_aggregation_of_terminating_run_is_model(self):
        """Proposition 11(2) on a terminating run: D⊛ is a model."""
        kb = fes_not_bts_kb()
        result = core_chase(kb, max_steps=100)
        assert result.terminated
        aggregate = RobustSequence(result.derivation).aggregate()
        assert kb.is_model(aggregate)

    def test_robust_aggregation_prefix_is_universal(self):
        """Proposition 11(1) on prefixes: the stable part maps into every
        model of the KB (here: the terminating chase result itself)."""
        kb = bts_not_fes_kb()
        infinite = core_chase(kb, max_steps=12)
        stable = robust_aggregation(infinite.derivation, patience=2)
        # build a finite model of the KB: close the chain into a cycle
        from repro.logic.parser import parse_atoms

        model = parse_atoms("r(a, b), r(b, b)")
        assert kb.is_model(model)
        assert maps_into(stable, model)

    def test_chain_robust_aggregation_is_chain(self):
        """On the monotone chain KB the robust aggregation is just the
        chain — no renaming happens."""
        result = core_chase(bts_not_fes_kb(), max_steps=10)
        sequence = RobustSequence(result.derivation)
        stable = sequence.stable_part(1)
        assert maps_into(stable, sequence.last)

    def test_custom_variable_order_changes_names_not_shape(self):
        from repro.util.orders import name_order

        result = core_chase(fes_not_bts_kb(), max_steps=50)
        default_sequence = RobustSequence(result.derivation)
        named_sequence = RobustSequence(result.derivation, variable_key=name_order)
        assert isomorphic(default_sequence.last, named_sequence.last)

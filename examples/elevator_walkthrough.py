"""The inflating elevator, end to end (Section 7 of the paper).

Run with::

    python examples/elevator_walkthrough.py

Demonstrates the converse counterexample: ``K_v`` **has** a universal
model of treewidth 1 (the diagonal ``I^v_*``), yet every core chase
sequence is forced through the core family ``I^v_n`` whose treewidth
grows without bound (Proposition 8, Corollary 1).
"""

from repro import core_chase, is_core, maps_into, treewidth
from repro.kbs import elevator as el
from repro.treewidth import grid_from_coordinates, treewidth_bounds
from repro.util import Table, banner, render_coordinates


def main() -> None:
    kb = el.elevator_kb()
    print(banner("The inflating elevator K_v (Definition 9)"))
    print(kb)

    print(banner("The universal model I^v (Definition 10), first columns"))
    window = el.universal_model_window(4)
    print(render_coordinates(window, el.coordinates(window)))
    print(f"({len(window)} atoms on {len(window.terms())} nulls)")

    print(banner("The treewidth-1 universal model I^v_* (Prop. 7)"))
    diagonal = el.diagonal_model(5)
    print(f"I^v_* prefix: {len(diagonal)} atoms, treewidth {treewidth(diagonal)}")
    print(f"maps into I^v via the identity: {maps_into(diagonal, window)}")

    print(banner("The core family I^v_n (Definition 12, Prop. 8)"))
    table = Table(
        ["n", "atoms", "is core", "grid side", "tw lower", "tw upper"],
        title="I^v_n: cores of growing treewidth",
    )
    for n in range(0, 5):
        member = el.core_family_member(n)
        side = n // 3 + 1
        has_grid = (
            grid_from_coordinates(
                member, el.coordinates(member), side, origin=el.grid_block_origin(n)
            )
            if n > 0
            else True
        )
        low, high = treewidth_bounds(member)
        table.add_row(n, len(member), is_core(member), f"{side}x{side}:{has_grid}", low, high)
    table.print()

    print(banner("Core chase: treewidth grows anyway (Corollary 1)"))
    result = core_chase(kb, max_steps=35)
    table = Table(["step", "atoms", "treewidth"], title="core chase of K_v")
    widths = []
    for step in result.derivation:
        width = treewidth(step.instance)
        widths.append(width)
        if step.index % 5 == 0:
            table.add_row(step.index, len(step.instance), width)
    table.print()
    print(
        f"running max of per-step treewidth: start {widths[0]}, "
        f"end {max(widths)} — monotone growth, despite the treewidth-1 "
        f"universal model."
    )


if __name__ == "__main__":
    main()

"""Tests for repro.logic.isomorphism."""

from repro.logic.isomorphism import (
    automorphisms,
    canonical_form,
    find_isomorphism,
    invariant_fingerprint,
    isomorphic,
)
from repro.logic.parser import parse_atoms


class TestIsomorphism:
    def test_renamed_copies_are_isomorphic(self):
        left = parse_atoms("e(X, Y), e(Y, Z)")
        right = parse_atoms("e(U, V), e(V, W)")
        assert isomorphic(left, right)

    def test_shape_difference_detected(self):
        path = parse_atoms("e(X, Y), e(Y, Z)")
        fork = parse_atoms("e(U, V), e(U, W)")
        assert not isomorphic(path, fork)

    def test_constants_are_rigid(self):
        left = parse_atoms("p(a, X)")
        right = parse_atoms("p(b, Y)")
        assert not isomorphic(left, right)
        assert isomorphic(left, parse_atoms("p(a, Z)"))

    def test_extra_atom_breaks_isomorphism(self):
        left = parse_atoms("e(X, Y)")
        right = parse_atoms("e(U, V), e(V, U)")
        assert not isomorphic(left, right)

    def test_isomorphism_witness_is_invertible_hom(self):
        left = parse_atoms("e(X, Y), e(Y, X), q(X)")
        right = parse_atoms("e(U, V), e(V, U), q(V)")
        iso = find_isomorphism(left, right)
        assert iso is not None
        assert iso.apply(left) == right

    def test_self_isomorphic(self):
        atoms = parse_atoms("e(X, Y), e(Y, Z), e(Z, X)")
        assert isomorphic(atoms, atoms)


class TestAutomorphisms:
    def test_cycle_has_rotations(self):
        cycle = parse_atoms("e(X, Y), e(Y, Z), e(Z, X)")
        autos = list(automorphisms(cycle))
        assert len(autos) == 3  # the three rotations

    def test_rigid_structure_has_identity_only(self):
        rigid = parse_atoms("e(X, Y), q(X)")
        autos = list(automorphisms(rigid))
        assert len(autos) == 1


class TestFingerprintAndCanonical:
    def test_fingerprint_invariant(self):
        left = parse_atoms("e(X, Y), e(Y, Z)")
        right = parse_atoms("e(U, V), e(V, W)")
        assert invariant_fingerprint(left) == invariant_fingerprint(right)

    def test_fingerprint_separates_shapes(self):
        path = parse_atoms("e(X, Y), e(Y, Z)")
        fork = parse_atoms("e(U, V), e(U, W)")
        assert invariant_fingerprint(path) != invariant_fingerprint(fork)

    def test_canonical_form_equal_iff_isomorphic(self):
        left = parse_atoms("e(X, Y), e(Y, Z), q(Z)")
        right = parse_atoms("e(A, B), e(B, C), q(C)")
        other = parse_atoms("e(A, B), e(B, C), q(A)")
        assert canonical_form(left) == canonical_form(right)
        assert canonical_form(left) != canonical_form(other)

    def test_canonical_form_of_ground_atoms(self):
        atoms = parse_atoms("p(a, b)")
        assert canonical_form(atoms) == canonical_form(parse_atoms("p(a, b)"))
        assert canonical_form(atoms) != canonical_form(parse_atoms("p(b, a)"))

    def test_canonical_form_hashable(self):
        hash(canonical_form(parse_atoms("e(X, Y)")))

"""Perf table for the query service: cold vs warm-started jobs.

For each workload the table times the same ``JobRequest`` twice against
a fresh snapshot store: the cold run pays the full chase, the warm run
resumes from the snapshot the cold run saved.  A repeated identical
entailment request must come back with **zero** new rule applications
(the warm-snapshot-hit path), so its row doubles as a correctness gate.

``bench_perf_service_table`` archives ``results/perf_service.json`` —
the artifact the CI ``service-smoke`` job publishes alongside the live
server replay.
"""

import tempfile
import time

from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import layered_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import transitive_closure_kb
from repro.logic.homcache import get_cache
from repro.logic.serialization import dump_kb
from repro.service.jobs import JobRequest, execute_job
from repro.service.snapshots import SnapshotStore
from repro.util import Table

from conftest import save_table

#: (workload, request factory) — each request is answered cold then warm.
SERVICE_ROWS = (
    (
        "staircase-entail",
        lambda: JobRequest(
            op="entail",
            kb_text=dump_kb(staircase_kb()),
            query="v(X, Y), v(Y, Z)",
            max_steps=45,
        ),
    ),
    (
        "staircase-core-chase",
        lambda: JobRequest(
            op="chase",
            kb_text=dump_kb(staircase_kb()),
            variant="core",
            max_steps=30,
        ),
    ),
    (
        "elevator-core-chase",
        lambda: JobRequest(
            op="chase",
            kb_text=dump_kb(elevator_kb()),
            variant="core",
            max_steps=25,
        ),
    ),
    (
        "layered-6x2-entail",
        lambda: JobRequest(
            op="entail",
            kb_text=dump_kb(layered_kb(6, fanout=2)),
            query="nosuch(X)",
            max_steps=200,
        ),
    ),
    (
        "transitive-5-entail",
        lambda: JobRequest(
            op="entail",
            kb_text=dump_kb(transitive_closure_kb(5)),
            query="e(v0, v5)",
            max_steps=300,
        ),
    ),
)


def _timed_job(request, store):
    get_cache().clear()
    started = time.perf_counter()
    result = execute_job(request, store)
    seconds = time.perf_counter() - started
    assert result.ok, result.error
    return seconds, result


def bench_perf_service_table():
    """Archive the cold-vs-warm timing table for the service job layer."""
    table = Table(
        [
            "workload",
            "op",
            "cold_apps",
            "warm_apps",
            "cold_seconds",
            "warm_seconds",
            "speedup",
        ],
        title="perf: service jobs, cold vs snapshot warm start",
    )
    for workload, make_request in SERVICE_ROWS:
        with tempfile.TemporaryDirectory(prefix="repro-bench-snap-") as scratch:
            store = SnapshotStore(scratch)
            cold_seconds, cold = _timed_job(make_request(), store)
            warm_seconds, warm = _timed_job(make_request(), store)
        assert warm.warm, f"{workload}: second identical job did not warm-start"
        assert warm.applications == 0, (
            f"{workload}: warm job re-applied {warm.applications} rules"
        )
        assert warm.total_applications == cold.total_applications
        if cold.op == "entail":
            assert warm.entailed == cold.entailed
        else:
            assert warm.instance == cold.instance
        table.add_row(
            workload,
            cold.op,
            cold.applications,
            warm.applications,
            round(cold_seconds, 4),
            round(warm_seconds, 4),
            round(cold_seconds / max(warm_seconds, 1e-9), 1),
        )
    save_table(
        "perf_service",
        table,
        "warm rows resume from the cold run's snapshot: zero new rule "
        "applications by construction (the warm-snapshot-hit guarantee).",
    )

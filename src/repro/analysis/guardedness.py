"""Guardedness — the classical sufficient conditions for bts membership.

The paper's introduction recalls that the practically relevant
treewidth-based fragments are "mostly based on varying notions of
guardedness, which impose syntactic restrictions ensuring
treewidth-boundedness for all chase sequences" [1, 2, 7, 16].  We
implement the two standard ones:

* a rule is **guarded** if some body atom contains *all* body variables;
* a rule is **frontier-guarded** if some body atom contains all
  *frontier* variables (strictly more general).

Guarded ⊆ frontier-guarded ⊆ bts: every restricted chase sequence of a
frontier-guarded rule set is treewidth-bounded (by a function of the rule
set), so CQ entailment is decidable (Definition 6 / Proposition 2).
"""

from __future__ import annotations

from ..logic.rules import ExistentialRule, RuleSet

__all__ = [
    "is_guarded_rule",
    "is_frontier_guarded_rule",
    "is_guarded",
    "is_frontier_guarded",
    "guard_atom",
]


def guard_atom(rule: ExistentialRule, frontier_only: bool = False):
    """The first body atom (in deterministic order) containing all body
    variables (or all frontier variables when ``frontier_only``), or
    None."""
    wanted = rule.frontier if frontier_only else rule.body.variables()
    for at in rule.body.sorted_atoms():
        if wanted <= at.variables():
            return at
    return None


def is_guarded_rule(rule: ExistentialRule) -> bool:
    """True iff some body atom guards all body variables."""
    return guard_atom(rule, frontier_only=False) is not None


def is_frontier_guarded_rule(rule: ExistentialRule) -> bool:
    """True iff some body atom guards all frontier variables."""
    return guard_atom(rule, frontier_only=True) is not None


def is_guarded(rules: RuleSet) -> bool:
    """True iff every rule of the set is guarded (sufficient for bts)."""
    return all(is_guarded_rule(rule) for rule in rules)


def is_frontier_guarded(rules: RuleSet) -> bool:
    """True iff every rule of the set is frontier-guarded (sufficient for
    bts; strictly subsumes guardedness)."""
    return all(is_frontier_guarded_rule(rule) for rule in rules)

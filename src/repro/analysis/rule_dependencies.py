"""Rule dependencies and acyclicity — a coarse but useful termination
criterion complementary to weak acyclicity.

Rule ``R2`` *depends on* rule ``R1`` when an application of ``R1`` can
enable a new application of ``R2`` — here approximated positionally:
some head atom of ``R1`` unifies (predicate-wise, with compatible
constants) with some body atom of ``R2``.  If the dependency graph is
acyclic, every chase run performs at most one "wave" per stratum and
terminates on every instance; the strata also give a useful static
execution order for terminating KBs.

This is the classical "chase graph" criterion (Fagin et al. / the
acyclic case of rule precedence analysis); it is strictly coarser than
weak acyclicity (any recursive datalog program is cyclic here yet weakly
acyclic) and is exposed mainly for workload analysis and the engine
benches.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..logic.atoms import Atom
from ..logic.rules import ExistentialRule, RuleSet
from ..logic.terms import Constant

__all__ = [
    "atoms_may_unify",
    "rule_depends_on",
    "rule_dependency_edges",
    "is_rule_acyclic",
    "rule_strata",
]


def atoms_may_unify(head_atom: Atom, body_atom: Atom) -> bool:
    """A cheap unification test: same predicate, and wherever both atoms
    carry constants, the constants agree (variables unify with
    anything)."""
    if head_atom.predicate != body_atom.predicate:
        return False
    for produced, required in zip(head_atom.args, body_atom.args):
        if (
            isinstance(produced, Constant)
            and isinstance(required, Constant)
            and produced != required
        ):
            return False
    return True


def rule_depends_on(later: ExistentialRule, earlier: ExistentialRule) -> bool:
    """True iff an application of *earlier* may enable *later*."""
    return any(
        atoms_may_unify(head_atom, body_atom)
        for head_atom in earlier.head
        for body_atom in later.body
    )


def rule_dependency_edges(
    rules: RuleSet,
) -> Iterator[tuple[ExistentialRule, ExistentialRule]]:
    """All dependency edges ``(earlier, later)`` of the rule set."""
    for earlier in rules:
        for later in rules:
            if rule_depends_on(later, earlier):
                yield (earlier, later)


def is_rule_acyclic(rules: RuleSet) -> bool:
    """True iff the rule dependency graph is acyclic — a sufficient
    condition for chase termination under every variant."""
    return rule_strata(rules) is not None


def rule_strata(rules: RuleSet) -> Optional[list[list[str]]]:
    """Topological strata of the dependency graph (rule names grouped by
    longest-path depth), or None when the graph has a cycle."""
    names = rules.names()
    successors: dict[str, set[str]] = {name: set() for name in names}
    indegree: dict[str, int] = {name: 0 for name in names}
    for earlier, later in rule_dependency_edges(rules):
        if later.name not in successors[earlier.name]:
            successors[earlier.name].add(later.name)  # type: ignore[index]
            indegree[later.name] += 1  # type: ignore[index]
    depth: dict[str, int] = {}
    frontier = [name for name in names if indegree[name] == 0]
    for name in frontier:
        depth[name] = 0
    processed = 0
    queue = list(frontier)
    while queue:
        name = queue.pop(0)
        processed += 1
        for successor in sorted(successors[name]):
            indegree[successor] -= 1
            depth[successor] = max(depth.get(successor, 0), depth[name] + 1)
            if indegree[successor] == 0:
                queue.append(successor)
    if processed != len(names):
        return None  # a cycle survived
    strata: dict[int, list[str]] = {}
    for name in names:
        strata.setdefault(depth[name], []).append(name)
    return [strata[level] for level in sorted(strata)]

"""Variable orders for the robust renaming (Section 8).

Definition 14 fixes an arbitrary bijection ``rank`` of the variables with
``N`` and orders variables by rank.  The *choice* of order never affects
the correctness results (Propositions 10–12 hold for any order), but it
decides which concrete names survive the renaming — the paper's
Section 8 walkthrough of the staircase uses an order in which lower rows
come first so that the robust aggregation literally materializes the
infinite column with the expected names.

Orders are represented as sort keys on variables (smaller key = smaller
variable), the format :class:`repro.chase.aggregation.RobustSequence`
accepts.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..logic.terms import Term, Variable

__all__ = ["creation_rank_order", "coordinate_row_major_order", "name_order"]

VariableKey = Callable[[Variable], tuple]


def creation_rank_order(var: Variable) -> tuple:
    """The default order: global creation rank (older variables are
    smaller, so renamings drift toward the oldest ancestor of a row)."""
    return (var.rank, var.name)


def name_order(var: Variable) -> tuple:
    """Plain lexicographic order on names — useful to make small tests
    readable."""
    return (var.name,)


def coordinate_row_major_order(
    coordinates: Mapping[Term, tuple[int, int]],
) -> VariableKey:
    """The staircase walkthrough's order: sort by row first, then column
    (``j < k ⇒ X^i_j <_X X^i_k``, and within a row earlier columns are
    smaller).  Variables without coordinates sort after all coordinated
    ones, by creation rank."""

    def key(var: Variable) -> tuple:
        coordinate = coordinates.get(var)
        if coordinate is None:
            return (1, 0, 0, var.rank, var.name)
        column, row = coordinate
        return (0, row, column, var.rank, var.name)

    return key

"""Exact treewidth by iterative-deepening elimination search.

The solver answers the decision question "does the graph admit an
elimination ordering of width ≤ k?" by depth-first search over
eliminations restricted to vertices of current degree ≤ k, with

* greedy *simplicial* eliminations (always safe: a simplicial vertex can
  be eliminated first in some optimal ordering) — this alone dissolves
  the ladder-shaped staircase structures of Section 6 almost entirely;
* memoization of failed remaining-vertex sets (sound for a fixed k);
* per-component decomposition (treewidth is the max over connected
  components);
* a state budget that raises :class:`SearchBudgetExceeded` instead of
  silently returning a wrong answer — callers fall back to
  (lower bound, upper bound) brackets.

Exact treewidth then climbs k from the MMD lower bound to the min-fill
upper bound.  This is exponential in the worst case (treewidth is
NP-hard) but comfortably handles the per-step chase structures measured
in the experiments (≲ 60 vertices, widths ≤ ~8).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..obs import observer as _observer_state
from .elimination import treewidth_upper_bound
from .graph import Graph
from .lowerbounds import mmd_lower_bound

__all__ = ["treewidth_exact", "has_width_at_most", "SearchBudgetExceeded"]

Vertex = Hashable

DEFAULT_STATE_BUDGET = 2_000_000


class SearchBudgetExceeded(RuntimeError):
    """The exact solver ran out of its state budget.

    Callers should fall back to the (lower, upper) bracket from
    :func:`repro.treewidth.lowerbounds.mmd_lower_bound` and
    :func:`repro.treewidth.elimination.treewidth_upper_bound` — or use
    the attributes below, which report what the interrupted search had
    already established.

    Attributes
    ----------
    k:
        The width being decided when the budget ran out.
    consumed:
        Search states consumed (equals the configured budget).
    lower / upper:
        Best treewidth bracket certain at interruption time (None when
        the raising call had no bracket in hand, e.g. a bare
        :func:`has_width_at_most`).
    """

    def __init__(
        self,
        message: str,
        *,
        k: Optional[int] = None,
        consumed: Optional[int] = None,
        lower: Optional[int] = None,
        upper: Optional[int] = None,
    ):
        super().__init__(message)
        self.k = k
        self.consumed = consumed
        self.lower = lower
        self.upper = upper


def has_width_at_most(
    graph: Graph, k: int, state_budget: int = DEFAULT_STATE_BUDGET
) -> bool:
    """Decide whether *graph* has an elimination ordering of width ≤ k."""
    if k < 0:
        return len(graph) == 0
    budget = [state_budget]
    failed: set[frozenset] = set()
    observer = _observer_state.current
    try:
        verdict = _search(graph.copy(), k, failed, budget)
    except SearchBudgetExceeded as exc:
        if observer is not None:
            observer.treewidth_search(
                k=k, verdict=None, budget_consumed=state_budget
            )
        raise SearchBudgetExceeded(
            f"exact treewidth search exhausted its state budget "
            f"({state_budget} states consumed) deciding width <= {k}",
            k=k,
            consumed=state_budget,
        ) from exc
    if observer is not None:
        observer.treewidth_search(
            k=k, verdict=verdict, budget_consumed=state_budget - budget[0]
        )
    return verdict


def _greedy_safe_eliminations(graph: Graph, k: int) -> bool:
    """Eliminate simplicial vertices (and vertices of degree ≤ 1) while
    possible.  Returns False if a simplicial vertex of degree > k is
    found, in which case no ordering of width ≤ k exists (its clique
    neighborhood of size > k survives into every decomposition)."""
    progress = True
    while progress and len(graph):
        progress = False
        for v in list(graph.vertices()):
            degree = graph.degree(v)
            if degree <= 1 or graph.is_clique(graph.neighbors(v)):
                if degree > k:
                    return False
                graph.eliminate(v)
                progress = True
    return True


def _search(graph: Graph, k: int, failed: set[frozenset], budget: list[int]) -> bool:
    if budget[0] <= 0:
        raise SearchBudgetExceeded(
            f"exact treewidth search exceeded its state budget at k={k}"
        )
    budget[0] -= 1
    if not _greedy_safe_eliminations(graph, k):
        return False
    if len(graph) <= k + 1:
        return True
    state = graph.vertex_set()
    if state in failed:
        return False
    candidates = sorted(
        (v for v in graph.vertices() if graph.degree(v) <= k),
        key=lambda v: (graph.fill_in_count(v), graph.degree(v), repr(v)),
    )
    for v in candidates:
        branch = graph.copy()
        branch.eliminate(v)
        if _search(branch, k, failed, budget):
            return True
    failed.add(state)
    return False


def treewidth_exact(
    graph: Graph,
    state_budget: int = DEFAULT_STATE_BUDGET,
    lower_hint: Optional[int] = None,
    upper_hint: Optional[int] = None,
) -> int:
    """The exact treewidth of *graph*.

    Raises :class:`SearchBudgetExceeded` when the search state budget is
    exhausted before an answer is certain.
    """
    if len(graph) == 0:
        return -1
    components = graph.connected_components()
    if len(components) > 1:
        return max(
            treewidth_exact(
                graph.subgraph(component),
                state_budget=state_budget,
                lower_hint=lower_hint,
                upper_hint=upper_hint,
            )
            for component in components
        )
    lower = lower_hint if lower_hint is not None else mmd_lower_bound(graph)
    upper = (
        upper_hint
        if upper_hint is not None
        else treewidth_upper_bound(graph, "min_fill")[0]
    )
    lower = max(lower, 0)
    for k in range(lower, upper):
        try:
            if has_width_at_most(graph, k, state_budget=state_budget):
                return k
        except SearchBudgetExceeded as exc:
            # Every k' < k already failed, so tw > k-1 is certain; the
            # min-fill upper bound still holds.  Report the bracket.
            raise SearchBudgetExceeded(
                f"exact treewidth search exhausted its state budget "
                f"({exc.consumed} states consumed) at k={k}; "
                f"best bounds so far: treewidth in [{k}, {upper}]",
                k=k,
                consumed=exc.consumed,
                lower=k,
                upper=upper,
            ) from exc
    return upper

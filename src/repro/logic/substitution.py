"""Substitutions, homomorphism objects, and retraction predicates.

A *substitution* of a set of variables ``Y`` is a mapping from ``Y`` to
terms (Section 2).  Applying a substitution to an atom applies the
extension ``σ+`` that is the identity outside ``Y``.  Composition follows
the paper's convention: ``(σ' ∘ σ)(Y) = σ'+(σ+(Y))`` — first ``σ``, then
``σ'``.

Substitutions are the uniform currency for homomorphisms, endomorphisms,
retractions, and the robust renamings of Section 8, so the class carries
the corresponding predicates (:meth:`Substitution.is_homomorphism`,
:meth:`is_retraction_of`, ...) and utilities (fibers, inverse, folding to
idempotence) used throughout the chase machinery.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union

from .atoms import Atom
from .atomset import AtomSet
from .terms import Term, Variable

__all__ = ["Substitution"]

AtomsLike = Union[AtomSet, Iterable[Atom]]


def _iter_atoms(atoms: AtomsLike) -> Iterable[Atom]:
    return atoms


class Substitution:
    """An immutable mapping from variables to terms.

    Only *variables* may be remapped (constants are rigid under the unique
    name assumption); attempting to bind a constant raises.
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None):
        clean: dict[Variable, Term] = {}
        if mapping:
            for var, term in mapping.items():
                if not isinstance(var, Variable):
                    raise TypeError(f"substitution keys must be variables: {var!r}")
                if not isinstance(term, Term):
                    raise TypeError(f"substitution values must be terms: {term!r}")
                clean[var] = term
        object.__setattr__(self, "_map", clean)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Substitution is immutable")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls) -> "Substitution":
        """The empty substitution (identity on every term)."""
        return cls()

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """A new substitution with one extra (or overridden) binding."""
        updated = dict(self._map)
        updated[var] = term
        return Substitution(updated)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """The restriction of the substitution to the given variables."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v in keep})

    def without(self, variables: Iterable[Variable]) -> "Substitution":
        """Drop bindings for the given variables."""
        drop = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v not in drop})

    def drop_trivial(self) -> "Substitution":
        """Drop bindings of the form ``X ↦ X``."""
        return Substitution({v: t for v, t in self._map.items() if t != v})

    # ------------------------------------------------------------------
    # mapping protocol
    # ------------------------------------------------------------------

    def __contains__(self, var: object) -> bool:
        return var in self._map

    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def get(self, var: Variable, default: Optional[Term] = None) -> Optional[Term]:
        return self._map.get(var, default)

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._map)

    def items(self):
        return self._map.items()

    def domain(self) -> frozenset[Variable]:
        """The set of variables with an explicit binding."""
        return frozenset(self._map)

    def image(self) -> frozenset[Term]:
        """The set of terms in the image of the explicit bindings."""
        return frozenset(self._map.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._map == other._map

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Cached: substitutions key the homomorphism memo and the escape
        # scan's pin dedup, where the same (immutable) object is hashed
        # over and over.
        h = self._hash
        if h is None:
            h = hash(frozenset(self._map.items()))
            object.__setattr__(self, "_hash", h)
        return h

    # ------------------------------------------------------------------
    # application (the σ+ extension)
    # ------------------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """``σ+(t)``: the bound value for a bound variable, else ``t``."""
        if isinstance(term, Variable):
            return self._map.get(term, term)
        return term

    def apply_atom(self, at: Atom) -> Atom:
        """``σ(at)``."""
        new_args = tuple(self.apply_term(t) for t in at.args)
        if new_args == at.args:
            return at
        return Atom(at.predicate, new_args)

    def apply(self, atoms: AtomsLike) -> AtomSet:
        """``σ(A)`` for an atomset (returns a new :class:`AtomSet`).

        The identity substitution short-circuits to :meth:`AtomSet.copy`
        — the chase applies a per-step retraction that is usually the
        identity, and a copy preserves the set's indexes (and compiled
        view) instead of rebuilding them."""
        if not self._map and isinstance(atoms, AtomSet):
            return atoms.copy()
        return AtomSet(self.apply_atom(at) for at in _iter_atoms(atoms))

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def compose(self, first: "Substitution") -> "Substitution":
        """``self ∘ first``: apply *first*, then *self* (paper convention
        ``σ' • σ : Y ↦ σ'+(σ+(Y))`` with ``σ' = self`` and ``σ = first``).

        The domain of the result is the union of both domains.
        """
        combined: dict[Variable, Term] = {}
        for var, term in first._map.items():
            combined[var] = self.apply_term(term)
        for var, term in self._map.items():
            if var not in combined:
                combined[var] = term
        return Substitution(combined)

    def then(self, second: "Substitution") -> "Substitution":
        """``second ∘ self`` — often more readable at call sites."""
        return second.compose(self)

    def compatible_with(self, other: "Substitution") -> bool:
        """Two substitutions are compatible if they agree on the shared
        variables (Section 2)."""
        small, large = (
            (self._map, other._map)
            if len(self._map) <= len(other._map)
            else (other._map, self._map)
        )
        return all(large.get(v, t) == t for v, t in small.items())

    def merge(self, other: "Substitution") -> "Substitution":
        """Union of two *compatible* substitutions; raises otherwise."""
        if not self.compatible_with(other):
            raise ValueError("cannot merge incompatible substitutions")
        merged = dict(self._map)
        merged.update(other._map)
        return Substitution(merged)

    def fibers(self) -> dict[Term, set[Variable]]:
        """``σ⁻¹``: map each image term to the set of variables landing on
        it.  Every *bound* variable contributes; additionally any image
        term that is itself an unbound variable is in its own fiber (since
        ``σ+`` fixes it).  This is the fiber notion required by the robust
        renaming (Definition 14), where ``ρ_σ(X)`` is the ``<_X``-smallest
        variable of ``σ⁻¹(X)``.
        """
        fibers: dict[Term, set[Variable]] = {}
        for var, term in self._map.items():
            fibers.setdefault(term, set()).add(var)
        for term in list(fibers):
            if isinstance(term, Variable) and term not in self._map:
                fibers[term].add(term)
        return fibers

    def is_injective_on(self, variables: Iterable[Variable]) -> bool:
        """True iff ``σ+`` restricted to *variables* is injective."""
        seen: set[Term] = set()
        for var in variables:
            value = self.apply_term(var)
            if value in seen:
                return False
            seen.add(value)
        return True

    def inverse_on(self, variables: Iterable[Variable]) -> "Substitution":
        """The inverse of an injective variable-to-variable mapping,
        restricted to *variables*.  Raises if not invertible there."""
        inverse: dict[Variable, Term] = {}
        for var in variables:
            value = self.apply_term(var)
            if not isinstance(value, Variable):
                raise ValueError(f"{var} maps to constant {value}; not invertible")
            if value in inverse:
                raise ValueError(f"mapping is not injective at {value}")
            inverse[value] = var
        return Substitution(inverse)

    # ------------------------------------------------------------------
    # semantic predicates
    # ------------------------------------------------------------------

    def is_homomorphism(self, source: AtomsLike, target: AtomSet) -> bool:
        """True iff ``σ(source) ⊆ target``."""
        target_atoms = target if isinstance(target, AtomSet) else AtomSet(target)
        return all(
            self.apply_atom(at) in target_atoms for at in _iter_atoms(source)
        )

    def is_endomorphism_of(self, atoms: AtomSet) -> bool:
        """True iff the substitution maps *atoms* into itself."""
        return self.is_homomorphism(atoms, atoms)

    def is_retraction_of(self, atoms: AtomSet) -> bool:
        """True iff this is a retraction of *atoms*: an endomorphism whose
        restriction to the terms of its image is the identity
        (Section 2)."""
        if not self.is_endomorphism_of(atoms):
            return False
        image = self.apply(atoms)
        return all(
            self.apply_term(t) == t
            for t in image.terms()
            if isinstance(t, Variable)
        )

    def is_identity_on(self, terms: Iterable[Term]) -> bool:
        """True iff ``σ+`` fixes every given term."""
        return all(self.apply_term(t) == t for t in terms)

    def fold_to_retraction(self, atoms: AtomSet) -> "Substitution":
        """Fold an endomorphism of *atoms* into a retraction with the same
        eventual image structure.

        Iterating a finite endomorphism eventually permutes a stable term
        set; composing with the right power of that permutation yields an
        idempotent endomorphism, i.e. a retraction.  This is how the core
        machinery (and Lemma-2-style constructions) turn "some
        endomorphism that shrinks the instance" into the *simplification*
        retractions Definition 1 demands.
        """
        if not self.is_endomorphism_of(atoms):
            raise ValueError("fold_to_retraction requires an endomorphism")
        current = self
        # Iterate until the variable support stops shrinking.  At most
        # |vars| iterations are needed for the image terms to stabilize.
        for _ in range(len(atoms.variables()) + 1):
            if current.is_retraction_of(atoms):
                return current.drop_trivial()
            current = current.compose(current)
        # current now has a stable image on which it acts as a permutation
        # of finite order; exponentiate to the identity on the image.
        image_vars = [
            t for t in current.apply(atoms).terms() if isinstance(t, Variable)
        ]
        result = current
        for _ in range(_permutation_order_bound(current, image_vars)):
            if result.is_retraction_of(atoms):
                return result.drop_trivial()
            result = current.compose(result)
        raise RuntimeError("failed to fold endomorphism to a retraction")

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{v} -> {t}" for v, t in sorted(self._map.items(), key=lambda x: x[0].name)
        )
        return f"Substitution({{{inner}}})"


def _permutation_order_bound(mapping: Substitution, variables: list[Variable]) -> int:
    """An upper bound on the order of *mapping* seen as a permutation of
    *variables* (product of cycle lengths is a crude but safe bound)."""
    seen: set[Variable] = set()
    bound = 1
    for var in variables:
        if var in seen:
            continue
        length = 0
        cursor: Term = var
        while isinstance(cursor, Variable) and cursor not in seen:
            seen.add(cursor)
            cursor = mapping.apply_term(cursor)
            length += 1
        bound *= max(length, 1)
    return bound + 1

"""Perf table for planner-routed serving vs. one global chase config.

A mixed fleet of knowledge bases — datalog closure, weakly acyclic
existential layers, guarded/linear infinite-chase witnesses, and the
steepening staircase — is answered twice per query:

* **baseline** — the single conservative global config an operator
  without the analyzer would deploy fleet-wide (``core`` chase, core
  cadence 1, 200 steps, countermodel budget 6): sound everywhere, but
  it pays the core-retraction tax on every terminating workload;
* **planner** — ``JobRequest(planner=True)``: the analyzer classifies
  each ruleset once (verdicts cached by ruleset fingerprint in the
  process-wide planner), and the strategy ladder routes each job to the
  cheapest sound configuration.

The planner side is charged its full cost: the first job per ruleset
pays the analysis probes, later jobs hit the verdict cache.  Every row
asserts the two modes return the **identical entailment answer** (the
planner must never trade soundness for speed), and the table asserts
the fleet-aggregate wall-clock speedup stays above
:data:`MIN_FLEET_SPEEDUP` — the headline claim that routed serving
beats any single global config on a heterogeneous fleet.

``bench_perf_analyze_table`` archives ``results/perf_analyze.json``;
the CI ``analyzer-gate`` job diffs it against the committed baseline
with ``compare_results.py`` (strategy names, entailment answers, and
application counts form row identity, so a routing or semantics drift
fails the gate even when timings pass).
"""

import time

from repro.kbs.generators import layered_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import (
    guarded_chain_kb,
    manager_kb,
    transitive_closure_kb,
)
from repro.logic.homcache import get_cache
from repro.logic.serialization import dump_kb
from repro.service.jobs import JobRequest, execute_job
from repro.analysis.planner import default_planner
from repro.util import Table

from conftest import save_table

#: The one-size-fits-all config the planner competes against.
GLOBAL_CONFIG = dict(variant="core", core_every=1, max_steps=200, model_budget=6)

#: Fleet-aggregate wall-clock floor: planner-routed serving must finish
#: the whole fleet at least this many times faster than the global
#: config.  Asserted in-bench so the table is self-gating even without
#: the CI diff.
MIN_FLEET_SPEEDUP = 1.5

#: (workload, kb factory, query, strategy the planner must pick).
#: Repeated rulesets are deliberate — later rows per ruleset hit the
#: verdict cache, amortising the analysis probes exactly as a serving
#: fleet would.  Staircase rows use entailed-only queries: on a
#: non-entailed staircase query the two modes would answer through
#: different machinery (core fixpoint vs. countermodel search), and
#: this table only compares configurations that agree by construction.
FLEET_ROWS = (
    ("transitive-9", lambda: transitive_closure_kb(9), "e(v0, v8)", "terminating-fast"),
    ("transitive-9", lambda: transitive_closure_kb(9), "e(v8, v0)", "terminating-fast"),
    ("layered-6x2", lambda: layered_kb(6, fanout=2), "l6(X)", "rewrite-first"),
    ("layered-6x2", lambda: layered_kb(6, fanout=2), "nosuch(X)", "rewrite-first"),
    ("guarded-chain", guarded_chain_kb, "q(X, Y)", "rewrite-first"),
    ("managers", manager_kb, "mgr(ann, Y)", "rewrite-first"),
    ("managers", manager_kb, "emp(X)", "rewrite-first"),
    ("staircase", staircase_kb, "v(X, Y)", "frontier-race"),
    ("staircase", staircase_kb, "v(X, Y), v(Y, Z)", "frontier-race"),
)


def _timed_job(request):
    get_cache().clear()
    started = time.perf_counter()
    result = execute_job(request, None)
    seconds = time.perf_counter() - started
    assert result.ok, result.error
    return seconds, result


def bench_perf_analyze_table():
    """Archive the planner-routed vs. global-config fleet table."""
    # A cold verdict cache charges the planner side the full analysis
    # cost for the first job of every ruleset (no store is passed, so
    # nothing is pre-served from a snapshot catalog either).
    default_planner().cache_clear()
    table = Table(
        [
            "workload",
            "query",
            "strategy",
            "entailed",
            "baseline_apps",
            "planner_apps",
            "baseline_seconds",
            "planner_seconds",
            "speedup",
        ],
        title="perf: planner-routed fleet vs one global chase config",
    )
    baseline_total = 0.0
    planner_total = 0.0
    for workload, make_kb, query, expected_strategy in FLEET_ROWS:
        kb_text = dump_kb(make_kb())
        baseline_seconds, baseline = _timed_job(
            JobRequest(op="entail", kb_text=kb_text, query=query, **GLOBAL_CONFIG)
        )
        planner_seconds, routed = _timed_job(
            JobRequest(op="entail", kb_text=kb_text, query=query, planner=True)
        )
        assert routed.strategy == expected_strategy, (
            f"{workload}/{query}: routed to {routed.strategy}, "
            f"expected {expected_strategy}"
        )
        assert routed.entailed == baseline.entailed, (
            f"{workload}/{query}: planner answered {routed.entailed}, "
            f"global config answered {baseline.entailed}"
        )
        baseline_total += baseline_seconds
        planner_total += planner_seconds
        table.add_row(
            workload,
            query,
            routed.strategy,
            baseline.entailed,
            baseline.applications,
            routed.applications,
            round(baseline_seconds, 4),
            round(planner_seconds, 4),
            round(baseline_seconds / max(planner_seconds, 1e-9), 1),
        )
    fleet_speedup = baseline_total / max(planner_total, 1e-9)
    assert fleet_speedup >= MIN_FLEET_SPEEDUP, (
        f"planner-routed fleet only {fleet_speedup:.2f}x faster than the "
        f"global config (floor: {MIN_FLEET_SPEEDUP}x)"
    )
    save_table(
        "perf_analyze",
        table,
        f"fleet aggregate: baseline {baseline_total:.3f}s vs planner-routed "
        f"{planner_total:.3f}s ({fleet_speedup:.1f}x; in-bench floor "
        f"{MIN_FLEET_SPEEDUP}x).  Planner timings include the analysis "
        "probes for the first job of each ruleset; identical entailment "
        "answers per row are asserted, not assumed.",
    )

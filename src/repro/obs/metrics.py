"""A dependency-free metrics registry.

Four instrument kinds cover everything the chase telemetry needs:

========== =====================================================
counter    monotone count (events, retractions, backtracks)
gauge      last-written value (current atom count, budget left)
timer      count + total/min/max of durations, in seconds
histogram  count/total/min/max plus geometric bucket counts
========== =====================================================

Instruments are handed out by a :class:`MetricsRegistry`; a process-global
default registry (:func:`get_registry` / :func:`set_registry`) backs the
CLI ``--metrics`` flag.  A registry can be *disabled*, in which case it
hands out shared no-op instruments — callers keep their unconditional
``inc()`` / ``observe()`` calls and pay only a dict lookup at
instrument-creation time, nothing per update.

Metric names are dotted paths (``chase.steps``, ``hom.backtracks``);
:meth:`MetricsRegistry.snapshot` returns plain dicts ready for
``json.dumps`` or a :class:`repro.util.reporting.Table`.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, snap: dict) -> None:
        """Fold another counter's snapshot into this one (sum)."""
        self.value += snap["value"]

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, snap: dict) -> None:
        """Fold another gauge's snapshot into this one (last write wins)."""
        self.value = snap["value"]

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Accumulated durations in seconds.

    Use either :meth:`record` with a measured duration or the instance as
    a context manager::

        with registry.timer("core.retraction"):
            core_retraction(atoms)
    """

    __slots__ = ("name", "count", "total", "min", "max", "_started")

    kind = "timer"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._started: Optional[float] = None

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.record(time.perf_counter() - self._started)
            self._started = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, snap: dict) -> None:
        """Fold another timer's snapshot into this one (count/total sum,
        min/max widened).  Empty snapshots merge as no-ops."""
        if not snap["count"]:
            return
        self.count += snap["count"]
        self.total += snap["total"]
        if snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] > self.max:
            self.max = snap["max"]

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Timer({self.name}: {self.count} x, {self.total:.6f}s)"


#: Default histogram bucket upper bounds: 1-2-5 decades, wide enough for
#: both "atoms retracted per step" and "backtracks per search".
DEFAULT_BOUNDS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 10000)


class Histogram:
    """Count/total/min/max plus cumulative-style bucket counts.

    ``buckets[i]`` counts observations ``<= bounds[i]``; one overflow
    bucket counts the rest.  Bounds are fixed at creation.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile from the bucket counts.

        Reports the upper bound of the bucket holding the nearest-rank
        observation — the resolution the bounds give us, which is the
        point: bucket counts *merge across processes*, so the parent can
        report true cross-worker percentiles instead of means.  The
        overflow bucket reports the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket in enumerate(self.buckets[:-1]):
            cumulative += bucket
            if cumulative >= rank:
                return float(self.bounds[index])
        return float(self.max)

    def merge(self, snap: dict) -> None:
        """Fold another histogram's snapshot into this one (bucketwise
        sum).  The bucket bounds must agree; empty snapshots merge as
        no-ops."""
        if not snap["count"]:
            return
        if tuple(snap["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshot with "
                f"bounds {snap['bounds']} into bounds {list(self.bounds)}"
            )
        self.count += snap["count"]
        self.total += snap["total"]
        if snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] > self.max:
            self.max = snap["max"]
        for index, bucket in enumerate(snap["buckets"]):
            self.buckets[index] += bucket

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0,
            "max": self.max if self.count else 0,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: {self.count} x, mean={self.mean:.3f})"


class _NullInstrument:
    """Shared do-nothing instrument handed out by disabled registries."""

    __slots__ = ()

    kind = "null"
    name = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, seconds: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def merge(self, snap: dict) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def snapshot(self) -> dict:
        return {"kind": self.kind}


_NULL = _NullInstrument()


class MetricsRegistry:
    """A named collection of instruments.

    Parameters
    ----------
    enabled:
        When False the registry hands out a shared no-op instrument, so
        instrumented code needs no conditional around its updates.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    # -- instrument accessors (create-on-first-use) --------------------

    def _get(self, name: str, factory, *args):
        if not self.enabled:
            return _NULL
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {factory.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop handing out live instruments (existing ones keep working
        for whoever cached them) and drop the recorded values."""
        self.enabled = False
        self._instruments.clear()

    def reset(self) -> None:
        """Drop all instruments (names and values)."""
        self._instruments.clear()

    # -- cross-process aggregation -------------------------------------

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` produced elsewhere into this registry.

        This is the parent half of the fork/spawn-safe worker protocol
        (:mod:`repro.service.executor`): each worker process installs a
        *fresh* registry (never a handle onto the parent's — under
        ``spawn`` that handle would not exist, under ``fork`` it would
        be a dead copy the parent never sees), records into it for the
        duration of one job, and ships ``registry.snapshot()`` back with
        the job result; the parent merges it here.  Counters and
        timers/histograms accumulate, gauges take the incoming value,
        unknown kinds are skipped.  Merging into a disabled registry is
        a no-op (the null instrument absorbs everything).
        """
        for name, payload in snapshot.items():
            kind = payload.get("kind")
            if kind == "counter":
                self.counter(name).merge(payload)
            elif kind == "gauge":
                self.gauge(name).merge(payload)
            elif kind == "timer":
                self.timer(name).merge(payload)
            elif kind == "histogram":
                self.histogram(name, tuple(payload["bounds"])).merge(payload)
            # "null" / unknown kinds carry no data worth keeping

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain nested dicts, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }


#: The process-global default registry.  Disabled out of the box: the
#: telemetry layer is opt-in (CLI ``--metrics``, benchmark harness).
_default_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous

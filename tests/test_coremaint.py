"""Differential and unit tests for the incremental core maintainer.

The maintainer (:mod:`repro.logic.coremaint`) must be a pure
acceleration of :func:`repro.logic.cores.core_retraction`: for every
growth sequence its per-step result is a genuine idempotent retraction
(``σ∘σ = σ``, identity on its image) whose image is isomorphic to the
naive core.  The unit tests pin the load-bearing cases: the escape-scan
lemma (a delta can make an *untouched* old variable removable — naive
neighborhood-fingerprint skipping would be unsound), wholesale
certification on already-core steps, and the regression where a
certificate must be invalidated by a *retraction* rather than an
addition.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.engine import ChaseVariant, run_chase
from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import random_kb
from repro.kbs.staircase import staircase_kb
from repro.logic.coremaint import (
    PAIR_ENUM_CAP,
    CoreMaintainer,
    _neighborhood_fingerprint,
)
from repro.logic.cores import core_of, core_retraction, is_core
from repro.logic.homcache import get_cache
from repro.logic.isomorphism import isomorphic
from repro.logic.parser import parse_atoms

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def variable(atoms, name):
    (var,) = [v for v in atoms.variables() if v.name == name]
    return var


def assert_valid_simplification(sigma, pre_instance):
    """σ is an idempotent retraction of *pre_instance* whose image is a
    core isomorphic to the naive one."""
    assert sigma.is_retraction_of(pre_instance)
    assert sigma.compose(sigma).drop_trivial() == sigma.drop_trivial()
    image = sigma.apply(pre_instance)
    assert sigma.is_identity_on(image.terms())
    assert is_core(image)
    assert isomorphic(image, core_of(pre_instance))


class TestMaintainerDifferential:
    """Maintainer vs naive ``core_retraction``, step by step."""

    def _check_run(self, kb, max_steps):
        get_cache().clear()
        steps = []
        result = run_chase(
            kb,
            variant=ChaseVariant.CORE,
            max_steps=max_steps,
            on_step=steps.append,
        )
        assert steps, "the run recorded no steps"
        for step in steps:
            assert_valid_simplification(step.simplification, step.pre_instance)
        return result

    def test_staircase_steps(self):
        self._check_run(staircase_kb(), max_steps=12)

    def test_elevator_steps(self):
        self._check_run(elevator_kb(), max_steps=10)

    @given(
        kb=st.builds(
            random_kb,
            rule_count=st.integers(min_value=1, max_value=4),
            fact_count=st.integers(min_value=2, max_value=8),
            term_pool=st.integers(min_value=2, max_value=5),
            seed=st.integers(min_value=0, max_value=10_000),
        )
    )
    @SETTINGS
    def test_random_kbs(self, kb):
        self._check_run(kb, max_steps=8)

    @given(
        kb=st.builds(
            random_kb,
            rule_count=st.integers(min_value=1, max_value=3),
            fact_count=st.integers(min_value=2, max_value=6),
            term_pool=st.integers(min_value=2, max_value=4),
            seed=st.integers(min_value=0, max_value=10_000),
        )
    )
    @SETTINGS
    def test_random_kbs_match_naive_engine(self, kb):
        """Whole-run equivalence: same rule sequence and isomorphic
        per-step instances as the fully naive engine."""
        get_cache().clear()
        fast = run_chase(kb, variant=ChaseVariant.CORE, max_steps=6)
        slow = run_chase(
            kb, variant=ChaseVariant.CORE, max_steps=6, use_index=False
        )
        assert fast.applications == slow.applications
        assert fast.retractions == slow.retractions
        fast_rules = [
            s.trigger.rule.name
            for s in fast.derivation.steps
            if s.trigger is not None
        ]
        slow_rules = [
            s.trigger.rule.name
            for s in slow.derivation.steps
            if s.trigger is not None
        ]
        assert fast_rules == slow_rules
        for fast_step, slow_step in zip(
            fast.derivation.steps, slow.derivation.steps
        ):
            assert isomorphic(fast_step.instance, slow_step.instance)


class TestMaintainerUnit:
    def test_cold_start_is_a_full_retraction(self):
        atoms = parse_atoms(
            "e(hub, R0), e(hub, R1), e(hub, R2), e(hub, c)"
        )
        maintainer = CoreMaintainer()
        sigma = maintainer.retract(atoms)
        assert_valid_simplification(sigma, atoms)
        assert maintainer.core == sigma.apply(atoms)
        assert maintainer.last_stats["mode"] == "full"

    def test_certificates_match_the_stored_core(self):
        atoms = parse_atoms("p(a, V1), q(V1, V2), r(V2, b)")
        maintainer = CoreMaintainer()
        maintainer.retract(atoms)
        core = maintainer.core
        assert set(maintainer.certificates) == set(core.variables())
        for var, cert in maintainer.certificates.items():
            assert cert == _neighborhood_fingerprint(core, var)

    def test_already_core_step_certifies_wholesale(self):
        """The common core-chase step: the delta keeps the instance a
        core; the escape scan certifies every old variable without a
        single per-variable search on them."""
        atoms = parse_atoms("p(a, V1), q(V1, V2), r(V2, b)")
        maintainer = CoreMaintainer()
        maintainer.retract(atoms)
        delta = parse_atoms("s(b, c)").sorted_atoms()
        pre = maintainer.core.copy()
        for at in delta:
            pre.add(at)
        sigma = maintainer.retract(pre, delta)
        assert not sigma.drop_trivial()  # identity: pre is already a core
        assert maintainer.last_stats["mode"] == "incremental"
        # V2 (adjacent to the delta through b) gets a cheap probe; V1 is
        # skipped outright on the scan's wholesale certificate.
        assert maintainer.last_stats["skip_hits"] == 1
        assert maintainer.last_stats["candidates_tried"] == 1
        assert not maintainer.last_stats["clean_broken"]

    def test_escape_through_the_delta_folds_untouched_variables(self):
        """The (L2) soundness case: ``{e(X, Y)}`` is a core and the
        delta ``{e(a, b)}`` shares no term with it, yet it makes *both*
        old variables removable.  A skip-list keyed on neighborhood
        fingerprints alone would wrongly skip them; the escape scan must
        find the fold."""
        atoms = parse_atoms("e(X, Y)")
        maintainer = CoreMaintainer()
        sigma0 = maintainer.retract(atoms)
        assert not sigma0.drop_trivial()
        delta = parse_atoms("e(a, b)").sorted_atoms()
        pre = maintainer.core.copy()
        for at in delta:
            pre.add(at)
        sigma = maintainer.retract(pre, delta)
        assert_valid_simplification(sigma, pre)
        assert maintainer.core == parse_atoms("e(a, b)")
        assert maintainer.last_stats["mode"] == "incremental"
        assert maintainer.last_stats["pairs_checked"] >= 1
        assert maintainer.last_stats["clean_broken"]

    def test_certificate_invalidated_by_a_retraction(self):
        """Regression: a fold can change the neighborhood of a variable
        *no delta atom touches*.  Here the delta ``{g(U)}`` only touches
        ``U``, but the resulting fold ``V2 ↦ U`` erases ``q(V1, V2)``
        from ``V1``'s neighborhood — ``V1``'s certificate must be
        reissued, not transported."""
        atoms = parse_atoms(
            "p(a, V1), q(V1, V2), q(V1, U), r(V2, b), r(U, b), g(V2), s(U)"
        )
        maintainer = CoreMaintainer()
        sigma0 = maintainer.retract(atoms)
        assert not sigma0.drop_trivial()  # the seed instance is a core
        v1 = variable(atoms, "V1")
        cert_before = maintainer.certificates[v1]

        delta = parse_atoms("g(U)").sorted_atoms()
        pre = maintainer.core.copy()
        for at in delta:
            pre.add(at)
        sigma = maintainer.retract(pre, delta)
        assert_valid_simplification(sigma, pre)
        # V2 folded onto U; V1 survived with a smaller neighborhood.
        assert variable(atoms, "V2") not in maintainer.core.variables()
        cert_after = maintainer.certificates[v1]
        assert cert_after != cert_before
        assert cert_after == _neighborhood_fingerprint(maintainer.core, v1)
        # And the certificates as a whole still describe the new core.
        for var, cert in maintainer.certificates.items():
            assert cert == _neighborhood_fingerprint(maintainer.core, var)

    def test_mismatched_delta_falls_back_to_the_full_pass(self):
        atoms = parse_atoms("p(a, V1), q(V1, V2), r(V2, b)")
        maintainer = CoreMaintainer()
        maintainer.retract(atoms)
        unrelated = parse_atoms("e(hub, R0), e(hub, c)")
        sigma = maintainer.retract(
            unrelated, delta=parse_atoms("e(hub, R0)").sorted_atoms()
        )
        assert maintainer.last_stats["mode"] == "full"
        assert_valid_simplification(sigma, unrelated)

    def test_growth_sequence_keeps_certificates_exact(self):
        """Drive one maintainer along a random growth sequence and
        check, after every step, the invariant everything rests on:
        the stored core is a core and every certificate equals the
        fingerprint of its variable's current neighborhood."""
        import random

        rng = random.Random(7)
        maintainer = CoreMaintainer()
        atoms = parse_atoms("e(c0, V0), p(V0, V1)")
        maintainer.retract(atoms)
        predicates = ("e", "p", "q")
        next_null = [2]
        for _ in range(12):
            pre = maintainer.core.copy()
            terms = sorted(
                (str(t) for t in pre.terms()),
                key=str,
            )
            delta = []
            for _ in range(rng.randint(1, 2)):
                pred = rng.choice(predicates)
                left = rng.choice(terms)
                if rng.random() < 0.5:
                    right = f"V{next_null[0]}"
                    next_null[0] += 1
                else:
                    right = rng.choice(terms + [f"c{next_null[0]}"])
                atom = parse_atoms(f"{pred}({left}, {right})").sorted_atoms()[0]
                if pre.add(atom):
                    delta.append(atom)
            if not delta:
                continue
            sigma = maintainer.retract(pre, delta)
            assert_valid_simplification(sigma, pre)
            assert is_core(maintainer.core)
            for var, cert in maintainer.certificates.items():
                assert cert == _neighborhood_fingerprint(maintainer.core, var)

    def test_pair_enum_cap_is_positive(self):
        assert PAIR_ENUM_CAP >= 1

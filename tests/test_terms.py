"""Tests for repro.logic.terms."""

import pytest

from repro.logic.terms import (
    Constant,
    FreshVariableSource,
    Term,
    Variable,
    is_constant,
    is_variable,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")

    def test_inequality_different_names(self):
        assert Variable("X") != Variable("Y")

    def test_not_equal_to_constant_with_same_name(self):
        assert Variable("X") != Constant("X")

    def test_hash_consistent_with_equality(self):
        assert hash(Variable("X")) == hash(Variable("X"))

    def test_hash_distinct_from_same_named_constant(self):
        assert hash(Variable("a")) != hash(Constant("a"))

    def test_rank_stable_across_recreation(self):
        first = Variable("RankStable")
        second = Variable("RankStable")
        assert first.rank == second.rank

    def test_rank_orders_by_creation(self):
        older = Variable("RankOlder_unique_1")
        newer = Variable("RankNewer_unique_2")
        assert older.rank < newer.rank
        assert older < newer

    def test_str_is_name(self):
        assert str(Variable("X")) == "X"

    def test_repr_mentions_class(self):
        assert "Variable" in repr(Variable("X"))

    def test_immutable(self):
        var = Variable("X")
        with pytest.raises(AttributeError):
            var.name = "Y"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Variable(42)  # type: ignore[arg-type]


class TestConstant:
    def test_equality_by_name(self):
        assert Constant("a") == Constant("a")

    def test_inequality(self):
        assert Constant("a") != Constant("b")

    def test_ordering_lexicographic(self):
        assert Constant("a") < Constant("b")

    def test_is_a_term(self):
        assert isinstance(Constant("a"), Term)

    def test_immutable(self):
        const = Constant("a")
        with pytest.raises(AttributeError):
            const.name = "b"


class TestPredicates:
    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("a"))

    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("X"))


class TestFreshVariableSource:
    def test_fresh_variables_are_distinct(self):
        source = FreshVariableSource()
        names = {source.fresh().name for _ in range(50)}
        assert len(names) == 50

    def test_fresh_count_tracks(self):
        source = FreshVariableSource()
        source.fresh()
        source.fresh()
        assert source.count == 2

    def test_hint_appears_in_name(self):
        source = FreshVariableSource()
        var = source.fresh(hint=Variable("Z"))
        assert "Z" in var.name

    def test_prefix_respected(self):
        source = FreshVariableSource(prefix="_xyz")
        assert source.fresh().name.startswith("_xyz")

    def test_fresh_is_a_variable(self):
        assert is_variable(FreshVariableSource().fresh())

    def test_two_sources_with_same_prefix_collide_by_design(self):
        # Same prefix + same counter means same names: callers must use
        # one source per chase run, which the engine does.
        a = FreshVariableSource(prefix="_p")
        b = FreshVariableSource(prefix="_p")
        assert a.fresh().name == b.fresh().name

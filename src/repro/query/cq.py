"""Conjunctive queries.

A Boolean CQ is a finite atomset read as the existential closure of the
conjunction of its atoms (Section 2); ``K ⊨ Q`` iff ``Q`` maps into some
(equivalently, every) universal model of ``K``, and by Proposition 9 a
*finitely universal* model works just as well.

:class:`ConjunctiveQuery` additionally supports distinguished (answer)
variables, evaluated by enumerating homomorphisms — the standard notion
of certain-answer candidates over a single instance.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.homomorphism import find_homomorphism, homomorphisms
from ..logic.parser import parse_atoms
from ..logic.substitution import Substitution
from ..logic.terms import Term, Variable

__all__ = ["ConjunctiveQuery", "boolean_cq"]


class ConjunctiveQuery:
    """A conjunctive query with optional answer variables.

    Parameters
    ----------
    atoms:
        The query body (a finite atomset, or DSL text).
    answer_variables:
        Distinguished variables, in output order; empty means Boolean.
    name:
        Optional label for experiment logs.
    """

    __slots__ = ("atoms", "answer_variables", "name")

    def __init__(
        self,
        atoms: Union[AtomSet, Iterable[Atom], str],
        answer_variables: Sequence[Variable] = (),
        name: Optional[str] = None,
    ):
        if isinstance(atoms, str):
            atoms = parse_atoms(atoms)
        atom_set = atoms if isinstance(atoms, AtomSet) else AtomSet(atoms)
        if not atom_set:
            raise ValueError("a conjunctive query needs at least one atom")
        for var in answer_variables:
            if var not in atom_set.variables():
                raise ValueError(f"answer variable {var} does not occur in the query")
        object.__setattr__(self, "atoms", atom_set.copy())
        object.__setattr__(self, "answer_variables", tuple(answer_variables))
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("ConjunctiveQuery is immutable")

    @property
    def is_boolean(self) -> bool:
        return not self.answer_variables

    # ------------------------------------------------------------------
    # evaluation over a single instance
    # ------------------------------------------------------------------

    def holds_in(self, instance: AtomSet) -> bool:
        """``instance ⊨ Q`` (Boolean reading: some homomorphism exists)."""
        return find_homomorphism(self.atoms, instance) is not None

    def answers(self, instance: AtomSet) -> Iterator[tuple[Term, ...]]:
        """Enumerate the distinct answer tuples over *instance*."""
        seen: set[tuple[Term, ...]] = set()
        for hom in homomorphisms(self.atoms, instance):
            answer = tuple(hom.apply_term(var) for var in self.answer_variables)
            if answer not in seen:
                seen.add(answer)
                yield answer

    def witness(self, instance: AtomSet) -> Optional[Substitution]:
        """One homomorphism witnessing ``instance ⊨ Q``, or None."""
        return find_homomorphism(self.atoms, instance)

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        answer = (
            "(" + ", ".join(v.name for v in self.answer_variables) + ") "
            if self.answer_variables
            else ""
        )
        return f"CQ({label}{answer}{self.atoms})"


def boolean_cq(text: str, name: Optional[str] = None) -> ConjunctiveQuery:
    """Parse a Boolean CQ from DSL text: ``boolean_cq("f(X), c(X)")``."""
    return ConjunctiveQuery(text, name=name)

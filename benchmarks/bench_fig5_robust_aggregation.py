"""E7 — Figures 5–6 / Definitions 14–16, Propositions 10–11: the robust
sequence and robust aggregation of the staircase core chase.

Regenerates the Section 8 walkthrough:

* every ``G_i`` of the robust sequence is isomorphic to ``F_i``
  (Definition 15);
* variables stabilize (Proposition 10): the stable-term count grows while
  the chase keeps renaming the frontier;
* the stable part of ``D⊛`` is **isomorphic to the infinite-column model
  Ĩ^h** — the paper's exact description of the staircase's robust
  aggregation — and is a finitely-universal structure (maps into the
  capped finite models).
"""

from repro import isomorphic, maps_into
from repro.chase import RobustSequence
from repro.kbs import staircase as sc
from repro.util import Table

from conftest import save_table


def bench_fig5_robust_aggregation(benchmark, staircase_core_run):
    robust = benchmark.pedantic(
        lambda: RobustSequence(staircase_core_run.derivation),
        rounds=1,
        iterations=1,
    )

    table = Table(
        ["step", "|G_i| atoms", "stable terms so far"],
        title="Defs. 14-16 — robust sequence of the staircase core chase",
    )
    last = len(robust) - 1
    for index in range(0, last + 1, 5):
        stable_count = sum(
            1 for since in robust.stable_since.values() if since <= index
        )
        table.add_row(index, len(robust.instances[index]), stable_count)

    # Definition 15: G_i ≅ F_i, spot-checked along the run.
    for index in (0, last // 2, last):
        assert isomorphic(
            robust.instances[index],
            staircase_core_run.derivation.instance(index),
        ), index

    # Proposition 10 in action + the Section 8 walkthrough: the stable
    # part is an infinite-column prefix.
    stable = robust.stable_part(patience=last // 2)
    matches = [
        h for h in range(1, 10) if isomorphic(stable, sc.infinite_column_model(h))
    ]
    assert len(matches) == 1, "stable part must be a column prefix"

    # Proposition 11(1) on prefixes: the stable part is universal, so it
    # maps into the capped finite models of K_h.
    assert maps_into(stable, sc.capped_model(2))

    extra = (
        f"stable part ISOMORPHIC to Ĩ^h truncated at height {matches[0]};\n"
        "it maps into every (capped) finite model — finite universality\n"
        "(Prop. 11) in executable form."
    )
    save_table("fig5_robust_aggregation", table, extra)

"""Delta snapshots and incremental re-serving (repro.service.snapshots).

Three load-bearing suites:

* the **delta algebra** — ``diff_chase_states`` / ``apply_chase_state_delta``
  round-trip every checkpoint field, so a chain of delta records replays
  to exactly the state a full blob would have stored;
* the **ancestor differential** — on terminating grow-by-k workloads, a
  chase resumed from the nearest ancestor snapshot plus the missing
  facts reaches the *same fixpoint* as a cold chase of the grown KB
  (atom-for-atom equal, same application count), which is what makes
  incremental re-serving sound to ship;
* the **chaos path** — a corrupt mid-chain record is classified broken
  (``snapshot.chain_broken``), dropped once, and the store falls back
  to a clean cold save, never a crash.

The non-terminating paper families (staircase, elevator) appear in the
delta-chain tests — their checkpoints are the realistic payloads — but
the differential only asserts fixpoint equality on terminating KBs: two
fair schedules of an unbounded chase share no common final instance to
compare.
"""

import json

import pytest

from repro import elevator_kb, staircase_kb
from repro.chase.engine import (
    ChaseEngine,
    apply_chase_state_delta,
    diff_chase_states,
    merge_facts_into_state,
    run_chase,
)
from repro.kbs.witnesses import transitive_closure_kb, weakly_acyclic_kb
from repro.logic.atoms import Atom
from repro.logic.isomorphism import isomorphic
from repro.logic.kb import KnowledgeBase
from repro.logic.serialization import dump_kb, load_kb
from repro.logic.terms import Variable
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, observing
from repro.obs.tracer import MetricsObserver
from repro.service.snapshots import (
    SNAPSHOT_SCHEMA,
    SnapshotStore,
    chase_state_to_obj,
    kb_fingerprint,
    state_delta_from_obj,
    state_delta_to_obj,
)


def grow(kb, extra_fact_lines):
    """The KB with *extra_fact_lines* appended to its facts section."""
    text = dump_kb(kb)
    return load_kb(
        text.replace("[facts]", "[facts]\n" + "\n".join(extra_fact_lines), 1)
    )


def _states_equal(a, b):
    assert a.variant == b.variant
    assert a.core_every == b.core_every
    assert a.fresh_prefix == b.fresh_prefix
    assert a.fresh_count == b.fresh_count
    assert a.instance == b.instance
    assert a.applied_keys == b.applied_keys
    assert a.ages == b.ages
    assert a.terminated == b.terminated
    assert a.applications == b.applications
    assert a.applications_since_core == b.applications_since_core
    assert a.delta_since_core == b.delta_since_core


DELTA_FAMILIES = [
    ("staircase", staircase_kb, "core", 6, 12),
    ("staircase", staircase_kb, "restricted", 6, 12),
    ("elevator", elevator_kb, "core", 5, 10),
    ("tclosure", lambda: transitive_closure_kb(4), "restricted", 3, 9),
]


class TestStateDelta:
    @pytest.mark.parametrize(
        "label, make_kb, variant, cut, total",
        DELTA_FAMILIES,
        ids=[f"{f[0]}-{f[2]}" for f in DELTA_FAMILIES],
    )
    def test_diff_apply_round_trip(self, label, make_kb, variant, cut, total):
        engine = ChaseEngine(make_kb(), variant=variant)
        engine.run(cut)
        parent = engine.export_state()
        engine.resume(total - cut)
        child = engine.export_state()
        delta = diff_chase_states(parent, child)
        _states_equal(apply_chase_state_delta(parent, delta), child)

    def test_delta_survives_json(self):
        engine = ChaseEngine(staircase_kb(), variant="core")
        engine.run(5)
        parent = engine.export_state()
        engine.resume(4)
        child = engine.export_state()
        delta = diff_chase_states(parent, child)
        obj = json.loads(json.dumps(state_delta_to_obj(delta)))
        back = state_delta_from_obj(obj)
        _states_equal(apply_chase_state_delta(parent, back), child)

    def test_apply_does_not_mutate_parent(self):
        engine = ChaseEngine(staircase_kb(), variant="restricted")
        engine.run(4)
        parent = engine.export_state()
        atoms_before = parent.instance.copy()
        engine.resume(4)
        delta = diff_chase_states(parent, engine.export_state())
        apply_chase_state_delta(parent, delta)
        assert parent.instance == atoms_before
        assert parent.applications == 4

    def test_config_mismatch_rejected(self):
        a = ChaseEngine(staircase_kb(), variant="restricted")
        a.run(3)
        b = ChaseEngine(staircase_kb(), variant="core")
        b.run(3)
        with pytest.raises(ValueError):
            diff_chase_states(a.export_state(), b.export_state())


class TestMergeFacts:
    def test_merge_injects_only_novel_atoms(self):
        kb = transitive_closure_kb(4)
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(3)
        state = engine.export_state()
        grown = grow(kb, ["e(v4, v5)"])
        novel = [at for at in grown.facts if at not in state.instance]
        merged = merge_facts_into_state(state, grown.facts.sorted_atoms())
        assert set(novel) <= set(merged.instance)
        assert len(merged.instance) == len(state.instance) + len(novel)
        assert merged.applications == state.applications
        # the injected facts join the pending core-maintenance delta …
        assert set(novel) <= set(merged.delta_since_core)
        # … and un-terminate a finished chase (new triggers may exist)
        assert not merged.terminated or not novel

    def test_merge_of_known_atoms_is_identity_shaped(self):
        kb = transitive_closure_kb(3)
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(200)
        state = engine.export_state()
        assert state.terminated
        merged = merge_facts_into_state(state, kb.facts.sorted_atoms())
        assert merged.instance == state.instance
        assert merged.terminated  # nothing new: still a fixpoint


class TestDeltaChains:
    def _advance(self, store, kb, variant, steps, parent=None):
        engine = ChaseEngine(kb, variant=variant)
        if parent is not None:
            engine.restore_state(parent.state)
            engine.resume(steps)
        else:
            engine.run(steps)
        store.save(kb, engine.export_state(), parent=parent)
        return store.load_entry(kb, variant, 1)

    def test_resumed_save_appends_delta_record(self, tmp_path):
        kb = staircase_kb()
        store = SnapshotStore(tmp_path)
        entry = self._advance(store, kb, "core", 5)
        assert entry.chain_depth == 1
        entry = self._advance(store, kb, "core", 3, parent=entry)
        assert entry.chain_depth == 2
        head = json.loads(store.path_for(entry.key).read_text())
        assert head["kind"] == "delta"
        # the replayed chain equals an uninterrupted export
        straight = ChaseEngine(kb, variant="core")
        straight.run(8)
        _states_equal(entry.state, straight.export_state())

    def test_chain_recheckpoints_at_depth_budget(self, tmp_path):
        kb = staircase_kb()
        store = SnapshotStore(tmp_path, max_chain_depth=3)
        entry = self._advance(store, kb, "core", 4)
        depths = [entry.chain_depth]
        for _ in range(4):
            entry = self._advance(store, kb, "core", 2, parent=entry)
            depths.append(entry.chain_depth)
        # grows to the budget, then re-checkpoints to a fresh base
        assert depths[:3] == [1, 2, 3]
        assert 1 in depths[3:]
        assert max(depths) <= 3

    def test_delta_saves_report_bytes_saved(self, tmp_path):
        events = []

        class Spy(Observer):
            def snapshot_access(self, **kw):
                events.append(kw)

        kb = staircase_kb()
        store = SnapshotStore(tmp_path)
        with observing(Spy()):
            entry = self._advance(store, kb, "core", 5)
            self._advance(store, kb, "core", 2, parent=entry)
        saves = [e for e in events if e["op"] == "save"]
        assert saves[0]["bytes_saved"] == 0  # base record
        assert saves[1]["bytes_saved"] > 0  # delta: smaller than a full blob
        assert saves[1]["chain_depth"] == 2

    def test_evicting_one_chain_leaves_siblings_loadable(self, tmp_path):
        store = SnapshotStore(tmp_path, max_entries=1)
        kb1 = staircase_kb()
        entry = self._advance(store, kb1, "core", 4)
        self._advance(store, kb1, "core", 2, parent=entry)
        kb2 = elevator_kb()
        self._advance(store, kb2, "core", 4)
        assert store.load(kb1, "core", 1) is None  # evicted, whole chain
        assert store.load(kb2, "core", 1) is not None
        assert store.entry_count() == 1
        # no orphaned record blobs survive the evicted chain
        live_records = len(list(store.objects.glob("*.json")))
        assert live_records == store.entry_count() or live_records == 1


#: Terminating grow-by-k families: (label, base KB, new fact lines,
#: variant, prefix steps to snapshot, generous fixpoint budget).
GROW_FAMILIES = [
    (
        "tclosure",
        lambda: transitive_closure_kb(5),
        ["e(v5, v6)"],
        "restricted",
        4,
        200,
    ),
    (
        "tclosure-core",
        lambda: transitive_closure_kb(5),
        ["e(v5, v6)"],
        "core",
        4,
        200,
    ),
    (
        "weak-acyclic",
        weakly_acyclic_kb,
        ["person(carol)"],
        "restricted",
        2,
        200,
    ),
    (
        "weak-acyclic-core",
        weakly_acyclic_kb,
        ["person(carol)"],
        "core",
        2,
        200,
    ),
]


class TestAncestorResolution:
    def _snapshot(self, store, kb, variant, steps):
        engine = ChaseEngine(kb, variant=variant)
        engine.run(steps)
        store.save(kb, engine.export_state())

    def test_grown_kb_resolves_to_ancestor(self, tmp_path):
        kb = transitive_closure_kb(5)
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb, "restricted", 4)
        grown = grow(kb, ["e(v5, v6)"])
        assert store.load(grown, "restricted", 1) is None  # exact miss
        entry = store.resolve_ancestor(grown, "restricted", 1)
        assert entry is not None and entry.ancestor
        assert sorted(map(str, entry.missing_atoms)) == ["e(v5, v6)"]
        assert entry.state.applications == 4

    def test_nearest_ancestor_wins(self, tmp_path):
        kb4 = transitive_closure_kb(4)
        kb5 = transitive_closure_kb(5)
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb4, "restricted", 2)
        self._snapshot(store, kb5, "restricted", 4)
        grown = grow(kb5, ["e(v5, v6)"])
        entry = store.resolve_ancestor(grown, "restricted", 1)
        assert entry is not None
        # kb5 shares more facts than kb4: one missing atom, not two
        assert sorted(map(str, entry.missing_atoms)) == ["e(v5, v6)"]

    def test_different_rules_never_match(self, tmp_path):
        kb = transitive_closure_kb(5)
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb, "restricted", 4)
        grown_text = dump_kb(grow(kb, ["e(v5, v6)"]))
        grown = load_kb(grown_text + "[Extra] e(X, Y) -> e(Y, X)\n")
        assert store.resolve_ancestor(grown, "restricted", 1) is None

    def test_config_participates(self, tmp_path):
        kb = transitive_closure_kb(5)
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb, "restricted", 4)
        grown = grow(kb, ["e(v5, v6)"])
        assert store.resolve_ancestor(grown, "core", 1) is None
        assert store.resolve_ancestor(grown, "restricted", 2) is None

    def test_budget_gate_filters_deep_prefixes(self, tmp_path):
        kb = transitive_closure_kb(5)
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb, "restricted", 10)
        grown = grow(kb, ["e(v5, v6)"])
        assert (
            store.resolve_ancestor(grown, "restricted", 1, max_applications=3)
            is None
        )
        assert (
            store.resolve_ancestor(grown, "restricted", 1, max_applications=50)
            is not None
        )

    def test_superset_snapshot_is_not_an_ancestor(self, tmp_path):
        # The grown KB's snapshot must never serve the *base* KB: its
        # derivation saw facts the smaller KB does not have.
        kb = transitive_closure_kb(5)
        grown = grow(kb, ["e(v5, v6)"])
        store = SnapshotStore(tmp_path)
        self._snapshot(store, grown, "restricted", 4)
        assert store.resolve_ancestor(kb, "restricted", 1) is None

    def test_shared_input_nulls_rejected(self, tmp_path):
        # Staircase facts carry nulls (uppercase terms); a new fact
        # mentioning one of them could have been decoupled by the
        # ancestor's core simplifications, so the candidate must be
        # rejected, not resumed.
        kb = staircase_kb()
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb, "core", 5)
        grown = grow(kb, ["f(Xh_0_0)", "c(Xh_0_0)"])
        # the new fact c(Xh_0_0) shares the null Xh_0_0 with f/h facts
        assert store.resolve_ancestor(grown, "core", 1) is None

    def test_disjoint_constants_accepted(self, tmp_path):
        # The common serving case: new ground facts about new entities.
        kb = staircase_kb()
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb, "core", 5)
        grown = grow(kb, ["f(s9)", "h(s9, s9)"])
        entry = store.resolve_ancestor(grown, "core", 1)
        assert entry is not None
        assert sorted(map(str, entry.missing_atoms)) == [
            "f(s9)",
            "h(s9, s9)",
        ]

    def test_fresh_prefix_collision_rejected(self, tmp_path):
        # A delta fact whose null uses the engine's fresh prefix could
        # conflate with an invented null of the resumed derivation.
        kb = transitive_closure_kb(4)
        store = SnapshotStore(tmp_path)
        self._snapshot(store, kb, "restricted", 3)
        probe = next(iter(kb.facts))
        hostile = Atom(
            probe.predicate, (Variable("_n0"),) + probe.args[1:]
        )
        grown = KnowledgeBase(
            list(kb.facts) + [hostile], kb.rules, name="hostile"
        )
        assert store.resolve_ancestor(grown, "restricted", 1) is None


class TestAncestorColdDifferential:
    """Ancestor-incremental re-serving equals a cold chase of the grown
    KB: same fixpoint (atom-for-atom), same application count."""

    @pytest.mark.parametrize(
        "label, make_kb, extra, variant, cut, budget",
        GROW_FAMILIES,
        ids=[f[0] for f in GROW_FAMILIES],
    )
    def test_incremental_equals_cold(
        self, tmp_path, label, make_kb, extra, variant, cut, budget
    ):
        kb = make_kb()
        grown = grow(kb, extra)
        cold = run_chase(grown, variant=variant, max_steps=budget)
        assert cold.terminated

        store = SnapshotStore(tmp_path)
        prefix = ChaseEngine(kb, variant=variant)
        prefix.run(cut)
        store.save(kb, prefix.export_state())

        entry = store.resolve_ancestor(grown, variant, 1)
        assert entry is not None and entry.ancestor
        engine = ChaseEngine(grown, variant=variant)
        engine.restore_state(
            merge_facts_into_state(entry.state, entry.missing_atoms)
        )
        result = engine.resume(budget - entry.state.applications)

        assert result.terminated
        assert engine.current_instance == cold.final_instance
        assert isomorphic(engine.current_instance, cold.final_instance)
        assert (
            entry.state.applications + result.applications
            == cold.applications
        )

    def test_incremental_chain_of_growths(self, tmp_path):
        # Grow twice: the second request's nearest ancestor is the
        # *first grown* KB's snapshot, and its save chains on it.
        kb = transitive_closure_kb(4)
        store = SnapshotStore(tmp_path)
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(200)
        assert engine.export_state().terminated
        store.save(kb, engine.export_state())

        grown1 = grow(kb, ["e(v4, v5)"])
        entry1 = store.resolve_ancestor(grown1, "restricted", 1)
        assert entry1 is not None
        eng1 = ChaseEngine(grown1, variant="restricted")
        eng1.restore_state(
            merge_facts_into_state(entry1.state, entry1.missing_atoms)
        )
        eng1.resume(200)
        store.save(grown1, eng1.export_state(), parent=entry1)
        cold1 = run_chase(grown1, variant="restricted", max_steps=200)
        assert eng1.current_instance == cold1.final_instance

        grown2 = grow(grown1, ["e(v5, v6)"])
        entry2 = store.resolve_ancestor(grown2, "restricted", 1)
        assert entry2 is not None
        assert sorted(map(str, entry2.missing_atoms)) == ["e(v5, v6)"]
        eng2 = ChaseEngine(grown2, variant="restricted")
        eng2.restore_state(
            merge_facts_into_state(entry2.state, entry2.missing_atoms)
        )
        eng2.resume(200)
        cold2 = run_chase(grown2, variant="restricted", max_steps=200)
        assert eng2.current_instance == cold2.final_instance


class TestV1Migration:
    def _v1_file(self, root, kb, variant="restricted", steps=3):
        engine = ChaseEngine(kb, variant=variant)
        engine.run(steps)
        state_obj = chase_state_to_obj(engine.export_state())
        payload = {
            "schema": 1,
            "kb_fingerprint": kb_fingerprint(kb),
            "state": state_obj,
        }
        path = root / "legacy-entry.json"
        path.write_text(json.dumps(payload))
        return path

    def test_v1_snapshot_loads_after_migration(self, tmp_path):
        kb = staircase_kb()
        path = self._v1_file(tmp_path, kb)
        store = SnapshotStore(tmp_path)
        assert store.migrated >= 1
        assert not path.exists()  # consumed
        state = store.load(kb, "restricted", 1)
        assert state is not None
        assert state.applications == 3

    def test_corrupt_v1_file_discarded_quietly(self, tmp_path):
        (tmp_path / "junk.json").write_text("{ not a snapshot")
        store = SnapshotStore(tmp_path)
        assert store.migrated >= 1
        assert not (tmp_path / "junk.json").exists()
        assert store.entry_count() == 0

    def test_migrated_entry_is_not_an_ancestor_candidate(self, tmp_path):
        # v1 payloads carry no KB text, so no facts manifest can be
        # recomputed: exact hits work, ancestor candidacy returns only
        # after the entry's next (v2) save.
        kb = transitive_closure_kb(5)
        self._v1_file(tmp_path, kb, steps=4)
        store = SnapshotStore(tmp_path)
        assert store.load(kb, "restricted", 1) is not None
        grown = grow(kb, ["e(v5, v6)"])
        assert store.resolve_ancestor(grown, "restricted", 1) is None
        # a fresh save fills the manifest in
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(4)
        store.save(kb, engine.export_state())
        assert store.resolve_ancestor(grown, "restricted", 1) is not None


class TestChainCorruptionChaos:
    def _chained(self, store, kb, variant="core"):
        engine = ChaseEngine(kb, variant=variant)
        engine.run(5)
        store.save(kb, engine.export_state())
        entry = store.load_entry(kb, variant, 1)
        engine.resume(3)
        store.save(kb, engine.export_state(), parent=entry)
        return store.load_entry(kb, variant, 1)

    def test_corrupt_mid_chain_record_falls_back_cold(self, tmp_path):
        kb = staircase_kb()
        store = SnapshotStore(tmp_path)
        entry = self._chained(store, kb)
        assert entry.chain_depth == 2
        head = json.loads(store.path_for(entry.key).read_text())
        base_blob = store._object_path(head["parent"])
        base_blob.write_text("\x00 torn base record \x00")

        registry = MetricsRegistry()
        with observing(MetricsObserver(registry)):
            assert store.load(kb, "core", 1) is None  # broken chain: miss
        assert registry.counter("snapshot.chain_broken").value == 1
        assert registry.counter("snapshot.corrupt").value == 1
        assert store.entry_count() == 0  # dropped transactionally

        # the store recovers: a cold save works and loads cleanly
        engine = ChaseEngine(kb, variant="core")
        engine.run(4)
        store.save(kb, engine.export_state())
        assert store.load(kb, "core", 1) is not None

    def test_broken_ancestor_chain_skipped(self, tmp_path):
        kb = transitive_closure_kb(5)
        store = SnapshotStore(tmp_path)
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(4)
        store.save(kb, engine.export_state())
        key_path = store.path_for(
            store.load_entry(kb, "restricted", 1).key
        )
        key_path.write_text("garbage")
        grown = grow(kb, ["e(v5, v6)"])
        registry = MetricsRegistry()
        with observing(MetricsObserver(registry)):
            assert store.resolve_ancestor(grown, "restricted", 1) is None
        assert registry.counter("snapshot.chain_broken").value == 1
        assert store.entry_count() == 0


class TestDeltaSinceCoreAcrossSymbolReset:
    def test_mid_cadence_state_round_trips_after_interner_reset(
        self, tmp_path
    ):
        """A checkpoint cut mid-way through a core cadence carries a
        non-empty ``delta_since_core``; stored as a delta chain and
        restored after a symbol-table reset (a fresh process), it must
        resume to the same instance as an uninterrupted run."""
        from repro.logic.compiled.interner import reset_symbol_table
        from repro.logic.homcache import get_cache

        kb = staircase_kb()
        get_cache().clear()
        straight = run_chase(kb, variant="core", core_every=3, max_steps=10)

        get_cache().clear()
        engine = ChaseEngine(kb, variant="core", core_every=3)
        engine.run(5)
        store = SnapshotStore(tmp_path)
        store.save(kb, engine.export_state())
        entry = store.load_entry(kb, "core", 3)
        engine.resume(2)  # 7 applications: mid-cadence (7 % 3 != 0)
        cut_state = engine.export_state()
        assert cut_state.delta_since_core  # the satellite's premise
        store.save(kb, cut_state, parent=entry)

        # A fresh process: new interner codes, nothing shared.
        reset_symbol_table()
        get_cache().clear()
        restored = store.load(kb, "core", 3)
        assert restored is not None
        assert restored.delta_since_core == cut_state.delta_since_core
        assert restored.applications_since_core == (
            cut_state.applications_since_core
        )
        resumed = ChaseEngine(kb, variant="core", core_every=3)
        resumed.restore_state(restored)
        resumed.resume(3)
        assert resumed.current_instance == straight.final_instance


class TestSchemaConstant:
    def test_schema_is_two(self):
        # The content-addressed delta layout is schema 2; bumping it
        # orphans these chains by key, so it must be deliberate.
        assert SNAPSHOT_SCHEMA == 2

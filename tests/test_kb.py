"""Tests for repro.logic.kb."""

import pytest

from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atoms, parse_rules


def simple_kb() -> KnowledgeBase:
    return KnowledgeBase(
        parse_atoms("p(a)"),
        parse_rules("[Step] p(X) -> e(X, Y), p(Y)"),
    )


class TestConstruction:
    def test_empty_facts_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeBase([], parse_rules("[R] p(X) -> q(X)"))

    def test_facts_are_copied(self):
        facts = parse_atoms("p(a)")
        kb = KnowledgeBase(facts, parse_rules("[R] p(X) -> q(X)"))
        facts.add(next(iter(parse_atoms("p(b)"))))
        assert len(kb.facts) == 1

    def test_rules_coercible_from_iterable(self):
        from repro.logic.parser import parse_rule

        kb = KnowledgeBase(parse_atoms("p(a)"), [parse_rule("p(X) -> q(X)")])
        assert len(kb.rules) == 1

    def test_immutable(self):
        kb = simple_kb()
        with pytest.raises(AttributeError):
            kb.facts = parse_atoms("p(b)")


class TestModelhood:
    def test_facts_alone_are_not_a_model(self):
        kb = simple_kb()
        assert not kb.is_model(kb.facts)

    def test_saturated_instance_is_model(self):
        kb = simple_kb()
        model = parse_atoms("p(a), e(a, a)")
        assert kb.is_model(model)

    def test_model_must_embed_facts(self):
        kb = simple_kb()
        # satisfies the rule vacuously but has no p(a)
        assert not kb.is_model(parse_atoms("q(b)"))

    def test_rule_violations_enumerated(self):
        kb = simple_kb()
        violations = list(kb.rule_violations(kb.facts))
        assert len(violations) == 1
        rule, mapping = violations[0]
        assert rule.name == "Step"

    def test_no_violations_on_model(self):
        kb = simple_kb()
        assert list(kb.rule_violations(parse_atoms("p(a), e(a, a)"))) == []

    def test_homomorphic_fact_embedding_suffices(self):
        kb = KnowledgeBase(
            parse_atoms("p(X)"),  # a null fact
            parse_rules("[R] p(X) -> p(X)"),
        )
        assert kb.is_model(parse_atoms("p(b)"))

    def test_str_and_repr(self):
        kb = simple_kb()
        assert "Step" in str(kb)
        assert "1 facts" in repr(kb)

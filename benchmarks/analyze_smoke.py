"""End-to-end smoke test for planner routing (the CI ``analyzer-gate`` job).

Boots ``repro serve`` as a real subprocess — the planner is on by
default in the CLI — and replays the committed request script
(``analyze_smoke_requests.jsonl``: a mixed fleet of rulesets, ~a dozen
distinct queries each) sequentially over one connection, asserting:

* every request gets an ``ok`` response with its id echoed;
* every response carries the ``strategy`` the row's
  ``expected_strategy`` field pins down — the analyzer's routing is a
  committed contract, not an implementation detail (the extra field is
  ignored by the server's request parser and read only by this
  harness);
* the server-side verdict-cache hit ratio
  (``cache_hits / (cache_hits + verdicts)`` from the stats planner
  section) meets the floor (``--min-cache-ratio``, default 0.9): the
  fleet re-uses each ruleset, so all but the first job per ruleset
  must be served a cached verdict — through the snapshot catalog when
  another worker process computed it;
* the ``shutdown`` op stops the server cleanly (exit code 0).

Archives ``results/analyze_smoke.json`` in the bench-table schema.

Run from the repository root::

    python benchmarks/analyze_smoke.py
"""

import argparse
import asyncio
import json
import pathlib
import tempfile
import time

from service_smoke import (
    fetch_stats,
    request_shutdown,
    send_on_connection,
    start_server,
)

HERE = pathlib.Path(__file__).parent
REQUESTS_FILE = HERE / "analyze_smoke_requests.jsonl"
RESULTS_FILE = HERE / "results" / "analyze_smoke.json"

#: Matches benchmarks/conftest.py — the artifact checks key off it.
RESULTS_SCHEMA = 1


def load_requests():
    lines = []
    for raw in REQUESTS_FILE.read_text().splitlines():
        raw = raw.strip()
        if raw:
            lines.append(json.loads(raw))
    if not lines:
        raise SystemExit(f"{REQUESTS_FILE}: no request lines")
    return lines


async def replay_sequential(port, requests):
    """One connection, one request in flight at a time — so every
    verdict a job computes is persisted before the next job looks."""
    responses = []
    for line in requests:
        response = (await send_on_connection(port, [line], "route"))[0]
        responses.append(response)
    return responses


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-cache-ratio",
        type=float,
        default=0.9,
        help="minimum acceptable verdict-cache hit ratio (default 0.9)",
    )
    args = parser.parse_args()

    requests = load_requests()
    tally = {}
    with tempfile.TemporaryDirectory(prefix="repro-analyze-snap-") as scratch:
        process, port = start_server(scratch)
        try:
            started = time.perf_counter()
            responses = asyncio.run(replay_sequential(port, requests))
            seconds = time.perf_counter() - started
            for line, response in zip(requests, responses):
                assert response.get("id") == f"route:{line['id']}", (
                    f"{line['id']}: id mismatch in {response}"
                )
                assert response.get("ok"), f"{line['id']}: failed: {response}"
                expected = line["expected_strategy"]
                routed = response.get("strategy")
                assert routed == expected, (
                    f"{line['id']}: routed to {routed!r}, expected {expected!r}"
                )
                workload = line["id"].rsplit("-", 1)[0]
                entry = tally.setdefault(
                    workload, {"workload": workload, "strategy": routed, "requests": 0}
                )
                entry["requests"] += 1
            print(f"replayed {len(responses)} routed requests in {seconds:.3f}s")

            stats = asyncio.run(fetch_stats(port))
            planner = stats.get("planner", {})
            assert planner.get("enabled"), "serve did not enable the planner"
            verdicts = planner.get("verdicts", 0)
            cache_hits = planner.get("cache_hits", 0)
            decisions = verdicts + cache_hits
            assert decisions == len(requests), (
                f"{decisions} planner decisions for {len(requests)} requests"
            )
            ratio = cache_hits / decisions
            print(
                f"planner stats: {decisions} decisions, {verdicts} computed, "
                f"{cache_hits} cached (ratio {ratio:.3f}), "
                f"strategies {planner.get('strategies')}"
            )
            assert stats["errors"] == 0, "server reported job errors"
            assert ratio >= args.min_cache_ratio, (
                f"verdict-cache hit ratio {ratio:.3f} "
                f"below floor {args.min_cache_ratio}"
            )

            asyncio.run(request_shutdown(port))
            code = process.wait(timeout=30)
            assert code == 0, f"server exited with {code}"
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    rows = sorted(tally.values(), key=lambda row: row["workload"])
    RESULTS_FILE.parent.mkdir(exist_ok=True)
    RESULTS_FILE.write_text(
        json.dumps(
            {
                "schema": RESULTS_SCHEMA,
                "name": "analyze_smoke",
                "title": "analyzer smoke: planner routing over a live server",
                "headers": list(rows[0]),
                "rows": rows,
                "extra": (
                    f"{len(requests)} requests, {verdicts} verdicts computed, "
                    f"cache-hit ratio {ratio:.3f} "
                    f"(floor {args.min_cache_ratio}); total {seconds:.3f}s."
                ),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {RESULTS_FILE}")
    print("analyze smoke OK")


if __name__ == "__main__":
    main()

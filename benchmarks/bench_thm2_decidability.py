"""E9 — Theorems 1–2: decidable CQ entailment through the two-procedure
race, on all four protagonist KBs.

For each (KB, query, expected) case, the race must return the correct
verdict: the "yes" side is the fair-chase prefix test (sound by
Proposition 1/9), the "no" side the finite-countermodel search (the
executable stand-in for the Courcelle machinery — see DESIGN.md).
"""

from repro import boolean_cq, decide_entailment
from repro.kbs.elevator import elevator_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import bts_not_fes_kb, fes_not_bts_kb, manager_kb
from repro.util import Table

from conftest import save_table

CASES = [
    ("managers", manager_kb, "mgr(ann, X)", True),
    ("managers", manager_kb, "mgr(X, Y), mgr(Y, Z), mgr(Z, W)", True),
    ("managers", manager_kb, "mgr(X, ann)", False),
    ("bts-not-fes", bts_not_fes_kb, "r(X1, X2), r(X2, X3), r(X3, X4)", True),
    ("bts-not-fes", bts_not_fes_kb, "r(X, X)", False),
    ("fes-not-bts", fes_not_bts_kb, "r(X, X), r(X, Y)", True),
    ("fes-not-bts", fes_not_bts_kb, "r(c, a)", False),
    ("staircase", staircase_kb, "f(X), h(X, X)", True),
    ("staircase", staircase_kb, "h(X, X), v(X, Y), c(Y)", True),
    ("staircase", staircase_kb, "f(X), c(X)", False),
    ("elevator", elevator_kb, "c(X), h(X, Y), f(Y)", True),
    ("elevator", elevator_kb, "h(X, X)", False),
]


def run_all_cases() -> list[tuple]:
    rows = []
    for name, factory, text, expected in CASES:
        verdict = decide_entailment(
            factory(), boolean_cq(text), chase_budget=40, model_domain_budget=6
        )
        rows.append((name, text, expected, verdict.entailed, verdict.method))
    return rows


def bench_thm2_decidability(benchmark):
    rows = benchmark.pedantic(run_all_cases, rounds=1, iterations=1)
    table = Table(
        ["KB", "query", "expected", "verdict", "method"],
        title="Thm. 1/2 — CQ entailment decided by the two-procedure race",
    )
    correct = 0
    for name, text, expected, got, method in rows:
        table.add_row(name, text, expected, got, method)
        assert got is expected, (name, text)
        correct += 1
    extra = f"all {correct}/{len(rows)} verdicts correct; no case left undecided."
    save_table("thm2_decidability", table, extra)

"""Fault-injection smoke test for ``repro serve`` (the CI ``chaos-smoke`` job).

Boots the server as a real subprocess with a fault directory attached,
then walks it through a seeded chaos script:

* **baseline** — the four distinct queries run clean and their answers
  are recorded;
* **worker-kill** — a ``worker.kill_mid_job`` fuse is armed and the
  queries are replayed concurrently; whichever spawn worker picks the
  fuse up dies (``os._exit``), breaking the process pool.  Every
  request must still get exactly one correct response (pool rebuilt,
  jobs retried warm from the baseline snapshots);
* **slow** — a seeded subset of a request stream rides out injected
  worker stalls with no supervisor involvement;
* **corrupt** — a ``snapshot.corrupt_after_save`` fuse mangles the
  snapshot a job just saved; the replayed query must re-answer
  correctly from a cold start (the corrupt file is a miss, not a crash);
* **drop** — a ``server.drop_connection`` fuse aborts one connection
  mid-response; the harness observes the EOF and verifies the next
  connection is served normally.

Afterwards the server's stats op must show the recovery actually
happened (``service.pool_rebuilds`` ≥ 1, ``service.retries`` ≥ 1, zero
errors) and the ``shutdown`` op must stop it cleanly (exit code 0).

The run is traced end to end (``--trace-dir``): after shutdown the
per-process span files are merged into
``results/chaos_smoke_trace.jsonl`` (a CI artifact) and the harness
proves the tracing tentpole on it — the killed-and-retried request
reconstructs as **one** causal timeline (server request span, both
worker attempts, the pool rebuild, no orphaned spans), and the live
``stats`` op's rolling p50/p95/p99 equal the offline span-derived
percentiles over the same jobs.  The span-derived latency summary is
archived in ``results/chaos_smoke.json`` for the CI SLO gate
(``benchmarks/check_slo.py``).

The fault schedule derives from ``--seed`` (committed in CI), so a
failing run replays bit-for-bit.  Archives ``results/chaos_smoke.json``
in the same schema as the bench tables.

Run from the repository root::

    python benchmarks/chaos_smoke.py --seed 7464
"""

import argparse
import asyncio
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).parent
REPO_ROOT = HERE.parent
RESULTS_FILE = HERE / "results" / "chaos_smoke.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.faults import FaultPlan, schedule_fires  # noqa: E402

#: Matches benchmarks/conftest.py — the artifact checks key off it.
RESULTS_SCHEMA = 1

#: Distinct queries (no in-flight coalescing) over the staircase KB.
QUERIES = [
    "v(X, Y)",
    "v(X, Y), v(Y, Z)",
    "f(X), v(X, Y)",
    "h(X, X)",
]


def staircase_text():
    from repro import staircase_kb
    from repro.logic.serialization import dump_kb

    return dump_kb(staircase_kb())


def start_server(snapshot_dir, fault_dir, trace_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--max-retries",
            "3",
            "--snapshot-dir",
            str(snapshot_dir),
            "--fault-dir",
            str(fault_dir),
            "--trace-dir",
            str(trace_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 60
    banner = ""
    while time.monotonic() < deadline:
        banner = process.stdout.readline()
        if "listening on" in banner:
            port = int(banner.rsplit(":", 1)[1])
            return process, port
        if process.poll() is not None:
            break
    process.kill()
    raise SystemExit(f"server did not come up (last output: {banner!r})")


def entail_line(request_id, query, kb_text):
    return {
        "op": "entail",
        "kb_text": kb_text,
        "query": query,
        "max_steps": 60,
        "id": request_id,
    }


async def send_on_connection(port, lines):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for line in lines:
            writer.write((json.dumps(line) + "\n").encode())
        await writer.drain()
        return [
            json.loads(await asyncio.wait_for(reader.readline(), timeout=300))
            for _ in lines
        ]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def spread(port, lines):
    """One connection per line, all concurrent — multiple in-flight jobs."""
    batches = await asyncio.gather(
        *(send_on_connection(port, [line]) for line in lines)
    )
    return [batch[0] for batch in batches]


def check_phase(phase, lines, responses, baseline):
    expected = {line["id"] for line in lines}
    got = {response.get("id") for response in responses}
    assert got == expected, f"{phase}: id mismatch {expected ^ got}"
    bad = [r for r in responses if not r.get("ok")]
    assert not bad, f"{phase}: {len(bad)} failed responses: {bad[:2]}"
    if baseline:
        for line, response in zip(lines, responses):
            want = baseline[line["query"]]
            assert response.get("entailed") == want, (
                f"{phase}: answer drift for {line['query']!r}: "
                f"{response.get('entailed')} != baseline {want}"
            )


async def drop_phase(port):
    """Arm-side handled by the caller; observe the abort, then recover."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b'{"op": "ping", "id": "drop"}\n')
    await writer.drain()
    try:
        line = await asyncio.wait_for(reader.readline(), timeout=60)
    except (ConnectionError, OSError):
        line = b""
    writer.close()
    assert line == b"", f"drop: expected an aborted connection, got {line!r}"
    retry = (await send_on_connection(port, [{"op": "ping", "id": "drop2"}]))[0]
    assert retry.get("ok"), f"drop: recovery ping failed: {retry}"


async def fetch_stats(port):
    return (await send_on_connection(port, [{"op": "stats", "id": "stats"}]))[0]


async def request_shutdown(port):
    response = (
        await send_on_connection(port, [{"op": "shutdown", "id": "bye"}])
    )[0]
    assert response.get("ok"), f"shutdown refused: {response}"


def _span_names(tree):
    """Every span name in *tree*, roots-first (duplicates kept)."""
    names = []
    stack = list(tree.roots)
    while stack:
        node = stack.pop()
        names.append(node.name)
        stack.extend(node.children)
    return names


def _summaries_close(live, offline, tolerance=1e-6):
    """Structural equality of two latency summaries, numbers within
    *tolerance* (both derive from the same result.seconds floats, so
    only JSON round-tripping separates them)."""
    if isinstance(live, dict) and isinstance(offline, dict):
        return set(live) == set(offline) and all(
            _summaries_close(live[key], offline[key], tolerance)
            for key in live
        )
    if isinstance(live, (int, float)) and isinstance(offline, (int, float)):
        return abs(live - offline) <= tolerance
    return live == offline


def verify_traces(trace_dir, stats):
    """Merge the run's span files, archive them, and prove the tracing
    claims: the killed-and-retried request is one causal timeline, and
    live stats percentiles equal offline span-derived ones."""
    from repro.obs.spans import (
        build_trace,
        latency_summary,
        read_trace_dir,
        trace_ids,
    )

    events, skipped = read_trace_dir(trace_dir)
    assert events, f"no trace events under {trace_dir}"
    assert not skipped, f"{skipped} torn trace line(s) after clean shutdown"
    RESULTS_FILE.parent.mkdir(exist_ok=True)
    merged = RESULTS_FILE.parent / "chaos_smoke_trace.jsonl"
    with open(merged, "w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
    print(f"wrote {merged} ({len(events)} events from the run)")

    # The killed-and-retried request must reconstruct as ONE causal
    # timeline: request + job spans from the server, both worker
    # attempts, the pool rebuild — and no trace may have orphans.
    retried = None
    for trace_id in trace_ids(events):
        tree = build_trace(events, trace_id)
        assert not tree.orphans, (
            f"trace {trace_id}: {len(tree.orphans)} orphaned span(s)"
        )
        names = _span_names(tree)
        if names.count("job_attempt") >= 2 and "pool_rebuild" in names:
            retried = retried or tree
    assert retried is not None, (
        "no trace reconstructs a killed-and-retried request "
        "(>= 2 attempts + a pool rebuild)"
    )
    names = _span_names(retried)
    for needed in ("service_request", "service_job", "retry_backoff"):
        assert needed in names, f"retried trace is missing a {needed} span"
    assert not retried.unclosed, (
        f"retried trace left spans unclosed: "
        f"{[node.span_id for node in retried.unclosed]}"
    )
    print(
        f"killed-and-retried request reconstructed as trace "
        f"{retried.trace_id}: {retried.spans} spans, one timeline"
    )

    # Live (rolling window) vs offline (span replay) percentiles: both
    # summarize the same service_job completions, so they must agree.
    job_events = [e for e in events if e.get("kind") == "service_job"]
    offline = latency_summary(
        (e["op"], e["warm"], e["ok"], e["seconds"]) for e in job_events
    )
    live = stats.get("latency")
    assert _summaries_close(live, offline), (
        "live stats latency diverges from span-derived latency:\n"
        f"live={json.dumps(live, indent=2)}\n"
        f"offline={json.dumps(offline, indent=2)}"
    )
    print("live stats percentiles == offline span-derived percentiles")
    return offline


def save_results(rows, extra, latency=None):
    RESULTS_FILE.parent.mkdir(exist_ok=True)
    payload = {
        "schema": RESULTS_SCHEMA,
        "name": "chaos_smoke",
        "title": "chaos smoke: fault injection against a live repro serve",
        "headers": list(rows[0]),
        "rows": rows,
        "extra": extra,
        # Span-derived per-op latency quantiles (the SLO gate's input).
        "latency": latency or {},
    }
    RESULTS_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_FILE}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed",
        type=int,
        default=7464,
        help="fault-schedule seed (committed in CI; default 7464)",
    )
    args = parser.parse_args()

    kb_text = staircase_text()
    rows = []
    baseline = {}

    def run_phase(phase, lines, check_baseline=True):
        started = time.perf_counter()
        responses = asyncio.run(spread(port, lines))
        seconds = time.perf_counter() - started
        check_phase(phase, lines, responses, baseline if check_baseline else None)
        rows.append(
            {
                "phase": phase,
                "requests": len(responses),
                "warm": sum(1 for r in responses if r.get("warm")),
                "seconds": round(seconds, 4),
            }
        )
        print(
            f"phase {phase}: {len(responses)} ok, "
            f"{rows[-1]['warm']} warm, {seconds:.3f}s"
        )
        return responses

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        scratch = pathlib.Path(scratch)
        plan = FaultPlan(scratch / "faults")
        trace_dir = scratch / "trace"
        process, port = start_server(scratch / "snaps", plan.root, trace_dir)
        try:
            # baseline: clean answers, snapshots saved
            lines = [
                entail_line(f"base{i}", q, kb_text)
                for i, q in enumerate(QUERIES)
            ]
            for line, response in zip(lines, run_phase("baseline", lines, False)):
                baseline[line["query"]] = response.get("entailed")

            # worker-kill: break the pool under concurrent load
            plan.arm("worker.kill_mid_job")
            lines = [
                entail_line(f"kill{i}", q, kb_text)
                for i, q in enumerate(QUERIES)
            ]
            responses = run_phase("worker-kill", lines)
            assert plan.fired("worker.kill_mid_job") == 1, "kill fuse never fired"
            assert any(r.get("warm") for r in responses), (
                "worker-kill: no retried job warm-started from the baseline "
                "snapshot"
            )

            # slow: a seeded subset of a request stream stalls in the worker
            stream = 8
            stalls = schedule_fires(args.seed, stream, rate=0.25)
            if stalls:
                plan.arm(
                    "worker.slow_job",
                    times=len(stalls),
                    payload={"seconds": 0.1},
                )
            lines = [
                entail_line(f"slow{i}", QUERIES[i % len(QUERIES)], kb_text)
                for i in range(stream)
            ]
            run_phase("slow", lines)
            assert plan.armed("worker.slow_job") == 0, "slow fuses left armed"

            # corrupt: mangle the snapshot a job just saved, then re-ask
            plan.arm("snapshot.corrupt_after_save", payload={"mode": "garbage"})
            lines = [entail_line("corrupt0", QUERIES[0], kb_text)]
            run_phase("corrupt-save", lines)
            assert plan.fired("snapshot.corrupt_after_save") == 1
            lines = [entail_line("corrupt1", QUERIES[0], kb_text)]
            run_phase("corrupt-reask", lines)

            # drop: abort one connection mid-response, then recover
            plan.arm("server.drop_connection")
            started = time.perf_counter()
            asyncio.run(drop_phase(port))
            rows.append(
                {
                    "phase": "drop",
                    "requests": 2,
                    "warm": 0,
                    "seconds": round(time.perf_counter() - started, 4),
                }
            )
            print("phase drop: connection aborted once, recovery ping ok")

            stats = asyncio.run(fetch_stats(port))
            metrics = stats.get("metrics", {})
            rebuilds = metrics.get("service.pool_rebuilds", {}).get("value", 0)
            retries = metrics.get("service.retries", {}).get("value", 0)
            print(
                f"server stats: {stats['requests']} requests, "
                f"{stats['jobs']} jobs, {rebuilds} pool rebuilds, "
                f"{retries} retries, {stats['errors']} errors"
            )
            assert rebuilds >= 1, "pool was never rebuilt"
            assert retries >= 1, "no job was ever retried"
            assert stats["errors"] == 0, "server reported job errors"
            assert stats["pending"] == 0, "jobs left pending"

            asyncio.run(request_shutdown(port))
            code = process.wait(timeout=30)
            assert code == 0, f"server exited with {code}"
            # Only after a clean exit: every sink is flushed and closed,
            # so the merged trace is complete.
            latency = verify_traces(trace_dir, stats)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    save_results(
        rows,
        f"seed {args.seed}; {rebuilds} pool rebuilds, {retries} retries, "
        "0 errors; worker-kill, slow, corrupt-snapshot and "
        "dropped-connection faults all recovered; killed-and-retried "
        "request reconstructed as one trace.",
        latency=latency,
    )
    print("chaos smoke OK")


if __name__ == "__main__":
    main()

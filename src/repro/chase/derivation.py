"""Derivations (Definition 1) and their bookkeeping.

A derivation from ``K = (F, Σ)`` is a sequence ``((tr_i, σ_i, F_i))_i``
where ``F_0 = σ_0(F)`` and ``F_i = σ_i(α(F_{i-1}, tr_i))`` with ``tr_i`` a
trigger for ``F_{i-1}`` not satisfied in ``F_{i-1}``, and the
simplifications ``σ_i`` are retractions.

:class:`Derivation` records, for every step, the trigger, the
pre-simplification instance ``A_i = α(F_{i-1}, tr_i)``, the
simplification, and the instance ``F_i`` — everything downstream
machinery needs:

* the trace homomorphisms ``σ̄_i^j = σ_j ∘ ... ∘ σ_{i+1}`` (Definition 2)
  for transporting triggers and checking fairness (Definition 3);
* the natural aggregation ``D* = ⋃_i F_i`` (Section 3);
* the robust sequence/aggregation of Section 8 (built on top of this
  record in :mod:`repro.chase.aggregation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.substitution import Substitution
from .trigger import Trigger, triggers

__all__ = ["DerivationStep", "Derivation"]


@dataclass(frozen=True)
class DerivationStep:
    """One element of a derivation.

    Attributes
    ----------
    index:
        Step number ``i`` (0 is the initial simplification of the facts).
    trigger:
        The trigger ``tr_i`` applied to ``F_{i-1}`` (None at index 0).
    pre_instance:
        ``A_i = α(F_{i-1}, tr_i)`` — the instance before simplification
        (equals the raw fact set at index 0).
    simplification:
        The retraction ``σ_i`` with ``F_i = σ_i(A_i)``.
    instance:
        ``F_i``.
    """

    index: int
    trigger: Optional[Trigger]
    pre_instance: AtomSet
    simplification: Substitution
    instance: AtomSet

    def is_identity_step(self) -> bool:
        """True iff the simplification did nothing."""
        return len(self.simplification.drop_trivial()) == 0


class Derivation:
    """The recorded derivation; validation is optional but thorough."""

    def __init__(self, kb: KnowledgeBase, steps: Sequence[DerivationStep]):
        self.kb = kb
        self.steps: list[DerivationStep] = list(steps)
        if not self.steps:
            raise ValueError("a derivation has at least the initial step")
        if self.steps[0].index != 0 or self.steps[0].trigger is not None:
            raise ValueError("step 0 must be the initial simplification")
        for position, step in enumerate(self.steps):
            if step.index != position:
                raise ValueError("step indexes must be consecutive from 0")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[DerivationStep]:
        return iter(self.steps)

    def instance(self, index: int) -> AtomSet:
        """``F_index``."""
        return self.steps[index].instance

    @property
    def last_instance(self) -> AtomSet:
        """``F_k`` for the last recorded step — the result ``D+`` of a
        finite derivation."""
        return self.steps[-1].instance

    def instances(self) -> Iterator[AtomSet]:
        """Iterate over ``F_0, F_1, ...``."""
        for step in self.steps:
            yield step.instance

    def is_monotonic(self) -> bool:
        """True iff ``F_{i-1} ⊆ F_i`` for all recorded ``i``."""
        return all(
            self.steps[i - 1].instance.issubset(self.steps[i].instance)
            for i in range(1, len(self.steps))
        )

    # ------------------------------------------------------------------
    # trace homomorphisms (Definition 2)
    # ------------------------------------------------------------------

    def trace(self, start: int, end: int) -> Substitution:
        """``σ̄_start^end = σ_end ∘ ... ∘ σ_{start+1}`` — the homomorphism
        from ``F_start`` to ``F_end`` (identity when start == end)."""
        if not 0 <= start <= end < len(self.steps):
            raise IndexError(f"trace({start}, {end}) out of range")
        composed = Substitution.identity()
        for index in range(start + 1, end + 1):
            composed = self.steps[index].simplification.compose(composed)
        return composed

    def transport_trigger(self, trigger: Trigger, start: int, end: int) -> Trigger:
        """``σ̄_start^end(tr)`` — the trigger carried from ``F_start`` to
        ``F_end``."""
        return trigger.transport(self.trace(start, end))

    # ------------------------------------------------------------------
    # aggregation & fairness
    # ------------------------------------------------------------------

    def natural_aggregation(self, upto: Optional[int] = None) -> AtomSet:
        """``D* = ⋃_i F_i`` over the recorded prefix (Section 3).

        For monotonic derivations this equals the last instance; in
        general it may fail to be a model of the KB (the staircase makes
        this dramatic) but is always universal (Proposition 1)."""
        limit = len(self.steps) if upto is None else upto + 1
        result = AtomSet()
        for step in self.steps[:limit]:
            result.update(step.instance)
        return result

    def check_fairness_prefix(self, upto: Optional[int] = None) -> list[Trigger]:
        """Check Definition 3 on the recorded prefix.

        Returns the triggers of intermediate instances whose transport is
        *never* satisfied within the prefix — an empty list means the
        prefix is consistent with fairness (for terminating chases on the
        full record this is an exact fairness check, because a trigger
        unsatisfied at the fixpoint stays unsatisfied forever).
        """
        limit = len(self.steps) if upto is None else upto + 1
        offenders: list[Trigger] = []
        last = limit - 1
        for index in range(limit):
            instance = self.steps[index].instance
            for rule in self.kb.rules:
                for trigger in triggers(rule, instance):
                    transported = self.transport_trigger(trigger, index, last)
                    if not any(
                        self.transport_trigger(trigger, index, j).is_satisfied_in(
                            self.steps[j].instance
                        )
                        for j in range(index, limit)
                    ):
                        offenders.append(transported)
        return offenders

    def validate(self, require_active: bool = True) -> None:
        """Re-check the Definition 1 conditions on the whole record;
        raises ``AssertionError`` with a pinpointing message otherwise.

        ``require_active=False`` skips the "trigger not satisfied in
        F_{i-1}" condition: the oblivious and semi-oblivious variants
        deliberately apply satisfied triggers, so their records are
        derivations only in the relaxed sense.

        Intended for tests: O(steps × cost of homomorphism checks).
        """
        first = self.steps[0]
        assert first.simplification.is_retraction_of(first.pre_instance), (
            "σ_0 is not a retraction of F"
        )
        assert first.simplification.apply(first.pre_instance) == first.instance, (
            "F_0 != σ_0(F)"
        )
        for index in range(1, len(self.steps)):
            step = self.steps[index]
            previous = self.steps[index - 1].instance
            trigger = step.trigger
            assert trigger is not None, f"step {index} lacks a trigger"
            assert trigger.is_trigger_for(previous), (
                f"step {index}: not a trigger for F_{index - 1}"
            )
            if require_active:
                assert not trigger.is_satisfied_in(previous), (
                    f"step {index}: trigger already satisfied in F_{index - 1}"
                )
            assert previous.issubset(step.pre_instance), (
                f"step {index}: A_{index} does not extend F_{index - 1}"
            )
            assert step.simplification.is_retraction_of(step.pre_instance), (
                f"step {index}: σ_{index} is not a retraction of A_{index}"
            )
            assert step.simplification.apply(step.pre_instance) == step.instance, (
                f"step {index}: F_{index} != σ_{index}(A_{index})"
            )

    def __repr__(self) -> str:
        return (
            f"Derivation({len(self.steps)} steps, last instance "
            f"{len(self.last_instance)} atoms)"
        )

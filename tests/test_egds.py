"""Tests for the TGD+EGD standard chase (repro.chase.egds)."""

import pytest

from repro.chase.egds import EGD, parse_egd, parse_egds, standard_chase
from repro.logic.parser import ParseError, parse_atoms, parse_rules
from repro.logic.terms import Variable


FD_TEXT = "[Fd] dir(E, H1), dir(E, H2) -> H1 = H2"


class TestEgdParsing:
    def test_parse_with_label(self):
        egd = parse_egd(FD_TEXT)
        assert egd.name == "Fd"
        assert egd.left == Variable("H1")
        assert egd.right == Variable("H2")

    def test_parse_without_label(self):
        egd = parse_egd("p(X, Y) -> X = Y")
        assert egd.name is None

    def test_equated_variables_must_occur(self):
        with pytest.raises(ValueError):
            EGD(parse_atoms("p(X)"), Variable("X"), Variable("Z"))

    def test_malformed_head_rejected(self):
        with pytest.raises(ParseError):
            parse_egd("p(X, Y) -> q(X)")

    def test_parse_many(self):
        egds = parse_egds("# comment\n" + FD_TEXT + "\np(X, Y) -> X = Y\n")
        assert len(egds) == 2

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_egds("# nothing")


class TestViolations:
    def test_violations_found(self):
        egd = parse_egd(FD_TEXT)
        instance = parse_atoms("dir(ann, p1), dir(ann, p2)")
        assert any(True for _ in egd.violations(instance))

    def test_no_violation_when_functional(self):
        egd = parse_egd(FD_TEXT)
        instance = parse_atoms("dir(ann, p1), dir(bob, p2)")
        assert not any(True for _ in egd.violations(instance))

    def test_same_image_is_no_violation(self):
        egd = parse_egd("p(X, Y), p(X, Z) -> Y = Z")
        instance = parse_atoms("p(a, b)")
        assert not any(True for _ in egd.violations(instance))


class TestStandardChase:
    def test_null_merged_into_constant(self):
        facts = parse_atoms("works(ann, sales), phone(ann, p42)")
        tgds = parse_rules(
            """
            [Entry] works(E, D) -> dir(E, H)
            [Known] phone(E, P) -> dir(E, P)
            """
        )
        egds = parse_egds(FD_TEXT)
        result = standard_chase(facts, tgds, egds)
        assert result.terminated and not result.failed
        assert not result.instance.variables()  # the null got merged away
        assert parse_atoms("dir(ann, p42)").issubset(result.instance)

    def test_constant_clash_fails(self):
        facts = parse_atoms("dir(ann, p1), dir(ann, p2)")
        tgds = parse_rules("[Noop] dir(E, H) -> dir(E, H)")
        result = standard_chase(facts, tgds, parse_egds(FD_TEXT))
        assert result.failed

    def test_null_null_merge_keeps_older(self):
        facts = parse_atoms("dir(ann, N1), dir(ann, N2)")
        tgds = parse_rules("[Noop] dir(E, H) -> dir(E, H)")
        result = standard_chase(facts, tgds, parse_egds(FD_TEXT))
        assert not result.failed
        assert len(result.instance.variables()) == 1

    def test_pure_tgd_setting(self):
        facts = parse_atoms("e(a, b), e(b, c)")
        tgds = parse_rules("[T] e(X, Y), e(Y, Z) -> e(X, Z)")
        result = standard_chase(facts, tgds, [])
        assert result.terminated
        assert len(result.instance) == 3

    def test_budget_exhaustion_reported(self):
        facts = parse_atoms("r(a, b)")
        tgds = parse_rules("[Succ] r(X, Y) -> r(Y, Z)")
        result = standard_chase(facts, tgds, [], max_steps=5)
        assert not result.terminated and not result.failed
        assert result.tgd_applications == 5

    def test_egds_interleave_with_tgds(self):
        # the TGD invents a null, the key EGD folds it onto the known
        # value, and the chase terminates at a functional instance
        facts = parse_atoms("person(ann), knows(ann, p7)")
        tgds = parse_rules("[Ssn] person(X) -> knows(X, S)")
        egds = parse_egds("[Key] knows(X, S1), knows(X, S2) -> S1 = S2")
        result = standard_chase(facts, tgds, egds)
        assert result.terminated and not result.failed
        assert result.instance == parse_atoms("person(ann), knows(ann, p7)")

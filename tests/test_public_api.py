"""Public-API integrity checks: every ``__all__`` name resolves, the
top-level package re-exports what the README promises, and modules keep
their docstrings (the library's primary documentation)."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.logic",
    "repro.logic.terms",
    "repro.logic.atoms",
    "repro.logic.atomset",
    "repro.logic.substitution",
    "repro.logic.homomorphism",
    "repro.logic.isomorphism",
    "repro.logic.cores",
    "repro.logic.coremaint",
    "repro.logic.rules",
    "repro.logic.parser",
    "repro.logic.serialization",
    "repro.logic.kb",
    "repro.chase",
    "repro.chase.trigger",
    "repro.chase.derivation",
    "repro.chase.engine",
    "repro.chase.variants",
    "repro.chase.aggregation",
    "repro.chase.egds",
    "repro.treewidth",
    "repro.treewidth.graph",
    "repro.treewidth.gaifman",
    "repro.treewidth.decomposition",
    "repro.treewidth.elimination",
    "repro.treewidth.exact",
    "repro.treewidth.lowerbounds",
    "repro.treewidth.grids",
    "repro.treewidth.nice",
    "repro.treewidth.hypertree",
    "repro.analysis",
    "repro.analysis.positions",
    "repro.analysis.weak_acyclicity",
    "repro.analysis.guardedness",
    "repro.analysis.rule_dependencies",
    "repro.analysis.sticky",
    "repro.analysis.summary",
    "repro.analysis.classes",
    "repro.query",
    "repro.query.cq",
    "repro.query.entailment",
    "repro.query.modelfinder",
    "repro.query.decomposed",
    "repro.query.certain",
    "repro.query.ucq",
    "repro.kbs",
    "repro.kbs.staircase",
    "repro.kbs.elevator",
    "repro.kbs.witnesses",
    "repro.kbs.generators",
    "repro.kbs.ontology",
    "repro.util",
    "repro.util.orders",
    "repro.util.reporting",
    "repro.util.render",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.observer",
    "repro.obs.tracer",
    "repro.obs.spans",
    "repro.obs.stats",
    "repro.datalog",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_top_level_covers_readme_quickstart():
    import repro

    for name in (
        "KnowledgeBase",
        "parse_atoms",
        "parse_rules",
        "core_chase",
        "restricted_chase",
        "frugal_chase",
        "boolean_cq",
        "decide_entailment",
        "treewidth",
        "staircase_kb",
        "elevator_kb",
        "RobustSequence",
    ):
        assert hasattr(repro, name), name


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_public_callables_have_docstrings():
    import repro

    undocumented = [
        name
        for name in repro.__all__
        if callable(getattr(repro, name)) and not getattr(repro, name).__doc__
    ]
    assert undocumented == []

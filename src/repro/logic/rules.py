"""Existential rules (tuple-generating dependencies) and rule sets.

An existential rule ``R = B → H`` has nonempty finite atomsets as body and
head; its variables split into *frontier* (shared), *nonfrontier
universal* (body only) and *existential* (head only) — Section 2.  Rule
application is defined in :mod:`repro.chase.trigger`; this module is the
static side: well-formedness, variable classification, renaming-apart,
and the :class:`RuleSet` container the chase engine consumes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

from .atoms import Atom
from .atomset import AtomSet
from .substitution import Substitution
from .terms import Constant, Variable

__all__ = ["ExistentialRule", "RuleSet"]


class ExistentialRule:
    """An existential rule ``B → H``.

    Parameters
    ----------
    body, head:
        Nonempty collections of atoms.
    name:
        Optional label (the paper's ``R^h_1`` etc.); auto-assigned inside
        a :class:`RuleSet` when omitted.
    """

    __slots__ = ("body", "head", "name", "_frontier", "_existential", "_universal")

    def __init__(
        self,
        body: Union[AtomSet, Iterable[Atom]],
        head: Union[AtomSet, Iterable[Atom]],
        name: Optional[str] = None,
    ):
        body_set = body if isinstance(body, AtomSet) else AtomSet(body)
        head_set = head if isinstance(head, AtomSet) else AtomSet(head)
        if not body_set:
            raise ValueError("rule body must be nonempty")
        if not head_set:
            raise ValueError("rule head must be nonempty")
        object.__setattr__(self, "body", body_set.copy())
        object.__setattr__(self, "head", head_set.copy())
        object.__setattr__(self, "name", name)
        body_vars = self.body.variables()
        head_vars = self.head.variables()
        object.__setattr__(self, "_frontier", frozenset(body_vars & head_vars))
        object.__setattr__(self, "_existential", frozenset(head_vars - body_vars))
        object.__setattr__(self, "_universal", frozenset(body_vars))

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("ExistentialRule is immutable")

    # ------------------------------------------------------------------
    # variable classification (Section 2)
    # ------------------------------------------------------------------

    @property
    def frontier(self) -> frozenset[Variable]:
        """Variables occurring in both body and head."""
        return self._frontier

    @property
    def existential(self) -> frozenset[Variable]:
        """Variables occurring only in the head."""
        return self._existential

    @property
    def universal(self) -> frozenset[Variable]:
        """All body variables (frontier + nonfrontier universal)."""
        return self._universal

    @property
    def nonfrontier_universal(self) -> frozenset[Variable]:
        """Body-only variables."""
        return frozenset(self._universal - self._frontier)

    def has_existential(self) -> bool:
        """True iff the rule invents nulls when applied."""
        return bool(self._existential)

    def is_datalog(self) -> bool:
        """True iff the rule has no existential variable."""
        return not self._existential

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def predicates(self) -> frozenset:
        """All predicates mentioned by the rule."""
        return self.body.predicates() | self.head.predicates()

    def constants(self) -> frozenset[Constant]:
        """All constants mentioned by the rule."""
        return self.body.constants() | self.head.constants()

    def rename_apart(self, suffix: str) -> "ExistentialRule":
        """A variant of the rule with every variable renamed by *suffix*.

        Used to keep rule variables disjoint from instance nulls when the
        same symbol names happen to be reused across inputs.
        """
        renaming = Substitution(
            {
                v: Variable(f"{v.name}{suffix}")
                for v in self.body.variables() | self.head.variables()
            }
        )
        return ExistentialRule(
            renaming.apply(self.body), renaming.apply(self.head), name=self.name
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExistentialRule)
            and other.body == self.body
            and other.head == self.head
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((self.body.atoms(), self.head.atoms()))

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"Rule({label}{self!s})"

    def __str__(self) -> str:
        body_text = ", ".join(str(a) for a in self.body.sorted_atoms())
        head_text = ", ".join(str(a) for a in self.head.sorted_atoms())
        return f"{body_text} -> {head_text}"


class RuleSet:
    """An ordered, name-indexed collection of existential rules.

    Rule order matters operationally (the chase engine breaks ties in
    rule order), so insertion order is preserved; duplicate rule names are
    rejected to keep experiment logs unambiguous.
    """

    __slots__ = ("_rules", "_by_name")

    def __init__(self, rules: Iterable[ExistentialRule] = ()):
        self._rules: list[ExistentialRule] = []
        self._by_name: dict[str, ExistentialRule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: ExistentialRule) -> ExistentialRule:
        """Append a rule; assign a positional name if it has none."""
        if not isinstance(rule, ExistentialRule):
            raise TypeError(f"expected ExistentialRule, got {rule!r}")
        if rule.name is None:
            rule = ExistentialRule(rule.body, rule.head, name=f"R{len(self._rules) + 1}")
        if rule.name in self._by_name:
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        self._by_name[rule.name] = rule
        return rule

    def __iter__(self) -> Iterator[ExistentialRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __getitem__(self, key: Union[int, str]) -> ExistentialRule:
        if isinstance(key, int):
            return self._rules[key]
        return self._by_name[key]

    def __contains__(self, key: object) -> bool:
        if isinstance(key, str):
            return key in self._by_name
        return key in self._rules

    def names(self) -> list[str]:
        """Rule names in insertion order."""
        return [rule.name for rule in self._rules]  # type: ignore[misc]

    def predicates(self) -> frozenset:
        """All predicates mentioned by any rule."""
        result: frozenset = frozenset()
        for rule in self._rules:
            result |= rule.predicates()
        return result

    def datalog_rules(self) -> list[ExistentialRule]:
        """The rules without existential variables."""
        return [rule for rule in self._rules if rule.is_datalog()]

    def existential_rules(self) -> list[ExistentialRule]:
        """The rules with at least one existential variable."""
        return [rule for rule in self._rules if rule.has_existential()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RuleSet):
            return NotImplemented
        return self._rules == other._rules

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"RuleSet({self.names()})"

    def __str__(self) -> str:
        return "\n".join(f"{rule.name}: {rule}" for rule in self._rules)

"""A long-lived query-answering service over the chase engine.

The library's one-shot entry points (:func:`repro.chase.engine.run_chase`,
:func:`repro.query.decide_entailment`) re-derive everything from the
facts on every call.  This package turns them into a serving system:

* :mod:`repro.service.deadline` — monotonic-clock deadlines usable as
  the engine's ``should_stop`` callback;
* :mod:`repro.service.snapshots` — a content-addressed store of
  resumable :class:`~repro.chase.engine.ChaseState` checkpoints keyed by
  a canonical KB fingerprint, so repeated queries against the same KB
  warm-start instead of re-chasing;
* :mod:`repro.service.jobs` — the :class:`JobRequest` /
  :class:`JobResult` wire dataclasses and :func:`execute_job`, the
  single worker-side entry point (warm start, per-job deadline,
  graceful degradation to sound partial answers);
* :mod:`repro.service.executor` — a supervised process-pool
  :class:`JobExecutor` (broken pools rebuilt, transient failures
  retried with capped backoff + jitter) with fork/spawn-safe per-worker
  metrics registries merged back into the parent;
* :mod:`repro.service.server` — the asyncio JSONL-over-TCP front end
  with request batching, in-flight dedup, and a guaranteed-response
  contract, exposed as ``repro serve``;
* :mod:`repro.service.faults` — deterministic, seedable fault
  injection (worker kill, slow job, snapshot corruption, dropped
  connection) driving the chaos suite and the CI ``chaos-smoke`` job.

Everything is standard library only, like the rest of the package.
"""

from .deadline import Deadline
from .executor import JobExecutor, RetryPolicy
from .faults import FaultPlan
from .jobs import JobRequest, JobResult, execute_job
from .snapshots import SnapshotStore, kb_fingerprint, snapshot_key

__all__ = [
    "Deadline",
    "FaultPlan",
    "JobExecutor",
    "JobRequest",
    "JobResult",
    "RetryPolicy",
    "SnapshotStore",
    "execute_job",
    "kb_fingerprint",
    "snapshot_key",
]

"""Aggregations of derivations: natural (Section 3) and robust (Section 8).

The *natural aggregation* ``D* = ⋃_i F_i`` is always universal but may
fail to be a model for non-monotonic derivations (Proposition 1; the
steepening staircase makes the failure quantitative: ``D*`` regrows the
grids the core chase kept pruning).  The *robust aggregation* ``D⊛``
(Definitions 14–16) fixes this by combining the *collapsed* versions of
the instances, with a renaming discipline that forces variables to
stabilize (Proposition 10): it yields a model that is finitely universal
(Proposition 11) and inherits recurring treewidth bounds
(Proposition 12).

Implementation notes
--------------------
:class:`RobustSequence` replays a recorded derivation and maintains, per
step ``i`` (following Definition 15 and Figure 5/6 of the paper):

* ``G_i`` — the robustly renamed instance, isomorphic to ``F_i``;
* ``ρ_i`` — the isomorphism ``F_i → G_i``;
* ``τ_i = ρ_{σ'_i} ∘ σ'_i`` — the homomorphism ``A'_i → G_i`` that in
  particular maps ``G_{i-1}`` into ``G_i``.

On a *finite* prefix ending at step ``S`` the increasing union
``⋃_{i≤S} τ^S_i(G_i)`` collapses to ``G_S`` itself (every earlier image
is carried into ``G_S``), so the informative object is the *stable part*:
the atoms of ``G_S`` all of whose terms have not been renamed for a
chosen number of trailing steps.  Proposition 10 guarantees each variable
is renamed only finitely often, so the stable part converges to ``D⊛``
as the prefix grows; the staircase experiment watches exactly this
convergence (the stable part materializes the infinite column ``Ĩ^h``).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..logic.atomset import AtomSet
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Term, Variable
from ..obs import observer as _observer_state
from ..obs.observer import Observer
from .derivation import Derivation

__all__ = ["RobustSequence", "robust_aggregation", "default_variable_key"]

VariableKey = Callable[[Variable], tuple]


def default_variable_key(var: Variable) -> tuple:
    """The default total order ``<_X``: global creation rank."""
    return (var.rank, var.name)


class RobustSequence:
    """The robust sequence ``(G_i)`` associated with a derivation
    (Definition 15), with stabilization tracking (Proposition 10).

    Parameters
    ----------
    derivation:
        A recorded derivation.
    variable_key:
        The order ``<_X`` as a sort key on variables.  Section 8's
        staircase walkthrough needs a custom order; experiments pass one
        built from coordinates (:mod:`repro.util.orders`).
    observer:
        Telemetry sink for per-step ``robust_step`` events (renaming
        churn, stable-term counts); defaults to the process-global
        observer (:mod:`repro.obs`).
    """

    def __init__(
        self,
        derivation: Derivation,
        variable_key: Optional[VariableKey] = None,
        observer: Optional[Observer] = None,
    ):
        self.derivation = derivation
        self._key = variable_key or default_variable_key
        self._observer = (
            observer if observer is not None else _observer_state.current
        )
        self.instances: list[AtomSet] = []  # G_i
        self.rho: list[Substitution] = []  # ρ_i : F_i → G_i (isomorphism)
        self.tau: list[Substitution] = []  # τ_i : A'_i → G_i (τ_0 : F → G_0)
        # stable_since[t] = first step index from which term t has existed
        # in every G_j unchanged (constants are stable from their first
        # appearance; the dict only tracks terms currently in G_S).
        self.stable_since: dict[Term, int] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction (Definition 15)
    # ------------------------------------------------------------------

    def _robust_renaming(
        self, retraction: Substitution, pre_instance: AtomSet
    ) -> Substitution:
        """``ρ_σ`` (Definition 14): map each variable ``X`` of the image
        of *retraction* to the ``<_X``-smallest variable of the fiber
        ``σ⁻¹(X)`` within the variables of *pre_instance*."""
        fibers: dict[Term, list[Variable]] = {}
        for var in pre_instance.variables():
            image = retraction.apply_term(var)
            fibers.setdefault(image, []).append(var)
        renaming: dict[Variable, Term] = {}
        for image, fiber in fibers.items():
            if not isinstance(image, Variable):
                continue  # constants are never renamed
            smallest = min(fiber, key=self._key)
            if smallest != image:
                renaming[image] = smallest
        return Substitution(renaming)

    def _build(self) -> None:
        steps = self.derivation.steps
        # --- step 0: G_0 = ρ_{σ_0}(F_0)
        first = steps[0]
        renaming0 = self._robust_renaming(first.simplification, first.pre_instance)
        tau0 = renaming0.compose(first.simplification)
        g0 = renaming0.apply(first.instance)
        rho0 = tau0.restrict(first.instance.variables())
        self.instances.append(g0)
        self.rho.append(rho0)
        self.tau.append(tau0)
        for term in g0.terms():
            self.stable_since[term] = 0
        if self._observer is not None:
            self._observer.robust_step(
                step=0,
                renamed=len(renaming0.drop_trivial()),
                atoms=len(g0),
                stable_terms=len(self.stable_since),
            )

        for index in range(1, len(steps)):
            step = steps[index]
            rho_prev = self.rho[index - 1]
            f_prev = steps[index - 1].instance
            # A'_i = ρ_{i-1}(A_i); fresh variables are untouched.
            a_primed = rho_prev.apply(step.pre_instance)
            # σ'_i = ρ_{i-1} ∘ σ_i ∘ ρ_{i-1}⁻¹, built pointwise on vars(A'_i).
            rho_prev_inverse = rho_prev.inverse_on(f_prev.variables())
            sigma_primed_map: dict[Variable, Term] = {}
            for var in a_primed.variables():
                origin = rho_prev_inverse.apply_term(var)
                sigma_primed_map[var] = rho_prev.apply_term(
                    step.simplification.apply_term(origin)
                )
            sigma_primed = Substitution(sigma_primed_map).drop_trivial()
            f_primed = sigma_primed.apply(a_primed)
            # ρ_{σ'_i} and the new G_i, ρ_i, τ_i.
            renaming = self._robust_renaming(sigma_primed, a_primed)
            g_i = renaming.apply(f_primed)
            tau_i = renaming.compose(sigma_primed)
            rho_i = tau_i.compose(rho_prev).restrict(step.instance.variables())
            self.instances.append(g_i)
            self.rho.append(rho_i)
            self.tau.append(tau_i)
            # stability bookkeeping
            new_stable: dict[Term, int] = {}
            for term in g_i.terms():
                if (
                    term in self.stable_since
                    and tau_i.apply_term(term) == term
                ):
                    new_stable[term] = self.stable_since[term]
                else:
                    new_stable[term] = index
            # constants are stable from the start
            for term in list(new_stable):
                if isinstance(term, Constant):
                    new_stable[term] = min(new_stable[term], 0)
            self.stable_since = new_stable
            if self._observer is not None:
                self._observer.robust_step(
                    step=index,
                    renamed=len(renaming.drop_trivial()),
                    atoms=len(g_i),
                    stable_terms=sum(
                        1
                        for since in new_stable.values()
                        if since < index
                    ),
                )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instances)

    @property
    def last(self) -> AtomSet:
        """``G_S`` for the last recorded step."""
        return self.instances[-1]

    def tau_between(self, start: int, end: int) -> Substitution:
        """``τ^end_start = τ_end ∘ ... ∘ τ_{start+1}`` — the homomorphism
        from ``G_start`` to ``G_end`` (Proposition 10's composites)."""
        if not 0 <= start <= end < len(self.instances):
            raise IndexError(f"tau_between({start}, {end}) out of range")
        composed = Substitution.identity()
        for index in range(start + 1, end + 1):
            composed = self.tau[index].compose(composed)
        return composed

    # ------------------------------------------------------------------
    # aggregation (Definition 16, finite-prefix reading)
    # ------------------------------------------------------------------

    def aggregate(self) -> AtomSet:
        """The finite-prefix robust aggregation ``⋃_{i≤S} τ^S_i(G_i)``.

        Because every ``τ_j`` maps ``G_{j-1}`` into ``G_j``, this union
        equals ``G_S``; it is returned as a copy.  Use
        :meth:`stable_part` for the portion already guaranteed to belong
        to the limit ``D⊛``.
        """
        return self.last.copy()

    def stable_part(self, patience: int = 1) -> AtomSet:
        """The atoms of ``G_S`` all of whose terms have been stable for at
        least *patience* trailing steps.

        A term is stable since step ``j`` when it has been present and
        fixed by every ``τ_i`` with ``i > j``.  By Proposition 10 every
        variable of the limit ``D⊛`` becomes permanently stable, so for a
        convergent derivation the stable part is a monotonically growing
        under-approximation of ``D⊛``.
        """
        cutoff = len(self.instances) - 1 - patience
        stable_terms = {
            term for term, since in self.stable_since.items() if since <= cutoff
        }
        return AtomSet(
            at
            for at in self.last
            if all(t in stable_terms for t in at.term_set())
        )

    def stabilization_report(self) -> dict[str, int]:
        """Summary counts for experiment logs."""
        last_index = len(self.instances) - 1
        horizon = max(last_index, 1)
        stable_half = sum(
            1 for since in self.stable_since.values() if since <= horizon // 2
        )
        return {
            "steps": last_index,
            "terms_in_G_S": len(self.last.terms()),
            "atoms_in_G_S": len(self.last),
            "terms_stable_half_run": stable_half,
            "atoms_stable_part": len(self.stable_part()),
        }


def robust_aggregation(
    derivation: Derivation,
    variable_key: Optional[VariableKey] = None,
    patience: int = 1,
) -> AtomSet:
    """The stable part of the robust aggregation of a recorded derivation
    prefix — the executable counterpart of ``D⊛`` (Definition 16)."""
    return RobustSequence(derivation, variable_key=variable_key).stable_part(
        patience=patience
    )

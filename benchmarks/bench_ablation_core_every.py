"""Ablation A2 — core-retraction frequency.

Section 3 allows the core chase to retract "after each (or a finite
number of) rule applications".  This ablation varies ``core_every`` on
the steepening staircase and checks the design claim behind
Proposition 4: the uniform treewidth bound 2 is robust to the retraction
period (any finite period is a legitimate core chase), while the maximum
intermediate instance size grows with the period — the cost of laziness.
"""

from repro import core_chase, treewidth
from repro.kbs.staircase import staircase_kb
from repro.util import Table

from conftest import save_table

PERIODS = (1, 2, 4)
STEPS = 24


def sweep() -> list[tuple]:
    rows = []
    for period in PERIODS:
        result = core_chase(staircase_kb(), max_steps=STEPS, core_every=period)
        sizes = [len(step.instance) for step in result.derivation]
        widths = [treewidth(step.instance) for step in result.derivation]
        rows.append((period, max(sizes), max(widths), result.applications))
    return rows


def bench_ablation_core_every(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["core_every", "max |F_i|", "max tw(F_i)", "applications"],
        title="Ablation — core retraction period on K_h",
    )
    max_sizes = []
    for period, max_size, max_width, applications in rows:
        table.add_row(period, max_size, max_width, applications)
        max_sizes.append(max_size)
        # tw bound degrades gracefully: unretracted prefixes can carry at
        # most a bounded amount of extra structure per period step
        assert max_width <= 2 + (period - 1), period
    assert max_sizes == sorted(max_sizes), "laziness should not shrink peaks"
    extra = (
        "shape: the treewidth bound is robust to the retraction period\n"
        "(any finite period is a valid core chase, Section 3), while peak\n"
        "instance sizes grow with laziness."
    )
    save_table("ablation_core_every", table, extra)

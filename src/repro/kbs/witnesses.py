"""Witness rule sets for the class landscape of Figure 1 / Proposition 13.

The proof of Proposition 13 exhibits two singleton rule sets showing
that fes and bts are incomparable:

* :func:`bts_not_fes_kb` — ``r(X,Y) → ∃Z. r(Y,Z)``: every restricted
  chase builds a simple path (treewidth 1, so bts), but the core chase
  never terminates (no finite universal model, so not fes);
* :func:`fes_not_bts_kb` — ``r(X,Y) ∧ r(Y,Z) → ∃V. r(X,X) ∧ r(X,Z) ∧
  r(Z,V)``: the core chase terminates quickly (fes), while restricted
  chase sequences keep inventing fresh tails.

Both are core-bts (Proposition 13: core-bts subsumes fes and bts), as is
the steepening staircase ``K_h`` (uniformly treewidth-2 core chase,
Proposition 4); the inflating elevator ``K_v`` is in none of the chase-
based classes yet has a treewidth-1 universal model (Section 7).

The module also ships assorted small KBs used across tests and examples:
weakly acyclic, guarded, datalog-only, and plain terminating fixtures.
"""

from __future__ import annotations

from ..logic.kb import KnowledgeBase
from ..logic.parser import parse_atoms, parse_rules

__all__ = [
    "bts_not_fes_kb",
    "fes_not_bts_kb",
    "transitive_closure_kb",
    "guarded_chain_kb",
    "weakly_acyclic_kb",
    "manager_kb",
]


def bts_not_fes_kb() -> KnowledgeBase:
    """``{r(X,Y) → ∃Z. r(Y,Z)}`` on ``r(a,b)`` — bts but not fes
    (Proposition 13's first witness)."""
    return KnowledgeBase(
        parse_atoms("r(a,b)"),
        parse_rules("[Succ] r(X,Y) -> r(Y,Z)"),
        name="bts-not-fes",
    )


def fes_not_bts_kb() -> KnowledgeBase:
    """``{r(X,Y) ∧ r(Y,Z) → ∃V. r(X,X) ∧ r(X,Z) ∧ r(Z,V)}`` on
    ``r(a,b), r(b,c)`` — fes but not bts (Proposition 13's second
    witness)."""
    return KnowledgeBase(
        parse_atoms("r(a,b), r(b,c)"),
        parse_rules("[Fold] r(X,Y), r(Y,Z) -> r(X,X), r(X,Z), r(Z,V)"),
        name="fes-not-bts",
    )


def transitive_closure_kb(chain_length: int = 4) -> KnowledgeBase:
    """Datalog transitive closure over a chain — terminating under every
    variant, weakly acyclic, guarded-free baseline."""
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    facts = ", ".join(f"e(v{i}, v{i + 1})" for i in range(chain_length))
    return KnowledgeBase(
        parse_atoms(facts),
        parse_rules("[Trans] e(X,Y), e(Y,Z) -> e(X,Z)"),
        name=f"transitive-closure-{chain_length}",
    )


def guarded_chain_kb() -> KnowledgeBase:
    """A guarded rule set (every body is a single atom) generating an
    infinite chain of alternating predicates — bts via guardedness."""
    return KnowledgeBase(
        parse_atoms("p(a,b)"),
        parse_rules(
            """
            [PtoQ] p(X,Y) -> q(Y,Z)
            [QtoP] q(X,Y) -> p(Y,Z)
            """
        ),
        name="guarded-chain",
    )


def weakly_acyclic_kb() -> KnowledgeBase:
    """A weakly acyclic set: existential edges never feed back into their
    own creating positions, so every chase variant terminates."""
    return KnowledgeBase(
        parse_atoms("person(alice), person(bob)"),
        parse_rules(
            """
            [HasId] person(X) -> id(X,I)
            [IdRec] id(X,I) -> recorded(I)
            """
        ),
        name="weakly-acyclic",
    )


def manager_kb() -> KnowledgeBase:
    """The folklore "every employee has a manager who is an employee"
    KB: non-terminating restricted chase of treewidth 1 (bts, not fes) —
    a friendlier cousin of :func:`bts_not_fes_kb` for the examples."""
    return KnowledgeBase(
        parse_atoms("emp(ann)"),
        parse_rules("[Mgr] emp(X) -> mgr(X,Y), emp(Y)"),
        name="managers",
    )

"""E5 — Figures 3–4 / Propositions 6–7: the elevator's model family.

Regenerates the model-side picture of Section 7:

* the restricted chase of K_v builds I^v (Prop. 6): the measured prefix
  maps into the capped I^v window;
* the diagonal I^v_* is a universal model of treewidth **1** (Prop. 7):
  it maps into I^v via the identity, and every chase prefix (universal!)
  maps into its capped companions;
* there is no finite universal model (the core chase never terminates).
"""

from repro import maps_into, restricted_chase, treewidth
from repro.kbs import elevator as el
from repro.util import Table

from conftest import save_table


def bench_fig3_elevator_models(benchmark, elevator_restricted_run):
    result = benchmark.pedantic(
        lambda: restricted_chase(el.elevator_kb(), max_steps=20),
        rounds=1,
        iterations=1,
    )
    long_run = elevator_restricted_run

    table = Table(
        ["structure", "atoms", "terms", "treewidth"],
        title="Props. 6-7 — the elevator's model family",
    )
    for length in (2, 4, 6):
        diagonal = el.diagonal_model(length)
        table.add_row(
            f"I^v_* prefix (len {length})",
            len(diagonal),
            len(diagonal.terms()),
            treewidth(diagonal),
        )
    for k in (2, 3, 4):
        window = el.universal_model_window(k)
        table.add_row(
            f"I^v window (cols {k})",
            len(window),
            len(window.terms()),
            "-",
        )

    # Prop. 7: the diagonal is a treewidth-1 universal model.
    assert treewidth(el.diagonal_model(6)) == 1
    assert maps_into(el.diagonal_model(4), el.universal_model_window(4))
    # Prop. 6: the chase prefix embeds into the capped I^v window.
    assert maps_into(long_run.final_instance, el.capped_model(5))
    assert long_run.derivation.is_monotonic()
    assert not long_run.terminated
    assert not result.terminated

    extra = (
        "shape: tw(I^v_*) = 1 at every length; the restricted chase prefix\n"
        "maps into the capped I^v window; no finite universal model exists\n"
        "(the chase never reaches a fixpoint)."
    )
    save_table("fig3_elevator_models", table, extra)
